"""Setuptools shim; metadata lives in pyproject.toml.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs (which build a wheel) fail; this shim enables the legacy
``setup.py develop`` path used by ``pip install -e . --no-use-pep517``.
"""

from setuptools import setup

setup()
