"""Table 4: SDIS vs UDIS identifier overhead across the grid."""

from __future__ import annotations

import pytest

from repro.experiments.common import DEFAULT_SEED, run_document
from repro.workloads.corpus import LATEX_DOCUMENTS

_GRID = [
    (cadence, balanced, mode)
    for cadence in (None, 8, 2)
    for balanced in (False, True)
    for mode in ("sdis", "udis")
]


@pytest.mark.parametrize(
    "cadence,balanced,mode",
    _GRID,
    ids=[
        f"flatten_{c or 'no'}-{'bal' if b else 'unbal'}-{m}"
        for c, b, m in _GRID
    ],
)
def bench_table4_cell(benchmark, report_sink, cadence, balanced, mode):
    rows = report_sink("table4", _render_grid)

    def replay_latex_corpus():
        overheads, sizes = [], []
        for spec in LATEX_DOCUMENTS:
            run = run_document(
                spec, mode=mode, balanced=balanced,
                flatten_every=cadence, seed=DEFAULT_SEED, with_disk=False,
            )
            overheads.append(run.stats.overhead_per_atom_bits)
            sizes.append(run.stats.avg_posid_bits)
        n = len(LATEX_DOCUMENTS)
        return (sum(overheads) / n, sum(sizes) / n)

    overhead, avg_size = benchmark.pedantic(replay_latex_corpus, rounds=1,
                                            iterations=1)
    rows.append((cadence, balanced, mode, overhead, avg_size))
    benchmark.extra_info["overhead_per_atom_bits"] = round(overhead, 1)
    benchmark.extra_info["avg_posid_bits"] = round(avg_size, 1)


def _render_grid(rows) -> str:
    from repro.metrics.report import Table

    cells = {(c, b, m): (o, s) for c, b, m, o, s in rows}
    table = Table(
        "Table 4. SDIS vs UDIS, bits (LaTeX documents)",
        ("", "metric", "SDIS (unbal)", "UDIS (unbal)",
         "SDIS (bal)", "UDIS (bal)"),
    )
    nan = (float("nan"), float("nan"))
    for cadence in (None, 8, 2):
        label = "no-flatten" if cadence is None else f"flatten-{cadence}"
        table.add_row(
            label, "overhead/atom",
            cells.get((cadence, False, "sdis"), nan)[0],
            cells.get((cadence, False, "udis"), nan)[0],
            cells.get((cadence, True, "sdis"), nan)[0],
            cells.get((cadence, True, "udis"), nan)[0],
        )
        table.add_row(
            "", "avg PosID size",
            cells.get((cadence, False, "sdis"), nan)[1],
            cells.get((cadence, False, "udis"), nan)[1],
            cells.get((cadence, True, "sdis"), nan)[1],
            cells.get((cadence, True, "udis"), nan)[1],
        )
    return table.render()
