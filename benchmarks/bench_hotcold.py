"""Hot/cold sustained-edit benchmark: steady-state mixed-workload cost.

Measures what the segment cache, partial explode and re-collapse
hysteresis (DESIGN.md section 12) are for: a document with a large cold
body and a small hot window being edited continuously.

1. **Edit latency vs cold size** — the document's cold region grows
   10x while the hot window (and the edit trace over it) stays fixed;
   per-edit p50/p99 must stay flat, which they only do when edits
   splice the live-snapshot cache instead of dropping it and explode
   O(edit) of a touched leaf instead of the whole region.
2. **Cache stability** — ``cache_drops`` counted over the steady-state
   trace (the acceptance bar asks for ~0: every edit path splices).
3. **Steady-state resident bytes** — gc-reachability size of the tree
   at the largest cold size, after the trace (cold region still
   collapsed thanks to hysteresis re-collapse, hot window in tree
   form).
4. **Sweep cost** — the ``collapse_every`` auto-pass before/after:
   a full cold-region survey vs the incremental sweep off the
   touch-stamp log, on identical states.

Writes ``BENCH_hotcold.json`` (checked into the repo root; CI refreshes
it as an artifact and checks it against ``HOTCOLD_BUDGET.json``) and
prints a units-labelled summary. Run::

    PYTHONPATH=src python benchmarks/bench_hotcold.py [--quick]
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import random
import sys
import time
from pathlib import Path
from typing import List

from repro.core.path import ROOT
from repro.core.treedoc import Treedoc

#: Cold-region multipliers for the scaling sweep (the acceptance bar
#: names the 10x point).
SCALES = (1, 2, 5, 10)


def build_doc(cold_lines: int, hot_lines: int, *, collapse_every=None,
              min_atoms: int = 8) -> Treedoc:
    """A quiescent document: ``cold_lines`` collapsed into array leaves,
    ``hot_lines`` appended at the end as the editing window."""
    doc = Treedoc(site=1, mode="sdis", collapse_every=collapse_every,
                  collapse_min_atoms=min_atoms)
    chunk = 200
    written = 0
    while written < cold_lines:
        run = ["cold %d %s" % (written + k, "x" * 24)
               for k in range(min(chunk, cold_lines - written))]
        written += len(run)
        doc.insert_text(len(doc), run)
    doc.insert_text(len(doc), ["hot %d" % k for k in range(hot_lines)])
    doc.note_revision()
    doc.flatten_local(ROOT)
    for _ in range(3):
        doc.note_revision()
    doc.collapse_cold()
    return doc


def run_trace(doc: Treedoc, hot_lines: int, edits: int, warmup: int,
              seed: int = 7) -> dict:
    """The steady-state trace: alternating insert/delete confined to the
    hot window, revision boundaries every 8 edits, a snapshot read every
    16 (all off the live cache). Latencies cover the edit call only;
    boundary sweeps are totalled separately."""
    rng = random.Random(seed)
    tree = doc.tree

    def one_edit(step: int) -> None:
        pos = len(doc) - 1 - rng.randrange(hot_lines // 2)
        if step % 2 == 0:
            doc.insert_text(pos, ["hot edit %d" % step])
        else:
            doc.delete_range(pos, pos + 1)

    for step in range(warmup):
        one_edit(step)
        if step % 8 == 7:
            doc.note_revision()
    doc.text()  # steady state: the live cache is built and stays spliced

    base = (tree.cache_drops, tree.cache_splices,
            tree.explodes, tree.partial_explodes)
    durations: List[float] = []
    sweep_seconds = 0.0
    for step in range(edits):
        started = time.perf_counter()
        one_edit(step + 1)  # offset keeps the insert/delete balance
        durations.append(time.perf_counter() - started)
        if step % 8 == 7:
            started = time.perf_counter()
            doc.note_revision()
            sweep_seconds += time.perf_counter() - started
        if step % 16 == 15:
            doc.text()
    durations.sort()
    return {
        "edits": edits,
        "p50_ns": durations[len(durations) // 2] * 1e9,
        "p99_ns": durations[min(len(durations) - 1,
                                int(len(durations) * 0.99))] * 1e9,
        "boundary_seconds": sweep_seconds,
        "cache_drops": tree.cache_drops - base[0],
        "cache_splices": tree.cache_splices - base[1],
        "explodes": tree.explodes - base[2],
        "partial_explodes": tree.partial_explodes - base[3],
    }


def resident_bytes(root_obj, exclude_ids) -> int:
    seen = set()
    total = 0
    stack = [root_obj]
    while stack:
        obj = stack.pop()
        key = id(obj)
        if key in seen or key in exclude_ids:
            continue
        seen.add(key)
        if obj is None or isinstance(obj, type):
            continue
        total += sys.getsizeof(obj)
        stack.extend(gc.get_referents(obj))
    return total


def measure_scaling(cfg: dict) -> List[dict]:
    rows = []
    for scale in SCALES:
        cold = cfg["base_cold"] * scale
        doc = build_doc(cold, cfg["hot_lines"],
                        collapse_every=cfg["collapse_every"],
                        min_atoms=cfg["min_atoms"])
        trace = run_trace(doc, cfg["hot_lines"], cfg["edits"],
                          cfg["warmup"])
        row = {
            "scale": scale,
            "cold_lines": cold,
            "atoms": len(doc),
            "array_leaves": doc.array_leaf_count,
            **trace,
        }
        if scale == SCALES[-1]:
            atom_ids = set(map(id, doc.atoms()))
            row["resident_bytes"] = resident_bytes(doc.tree, atom_ids)
        rows.append(row)
    return rows


def measure_cold_touch(cfg: dict, repeats: int) -> List[dict]:
    """First edit into the interior of a big collapsed leaf: the edit
    path partial-explodes (leaf / exploded core / leaf around the touch
    point) vs wholesale explosion of a comparable leaf — the pre-PR
    cost of any interior touch. Leaves below the partial-explode
    threshold (small scales in --quick) explode fully; the row records
    which path ran."""
    rows = []
    for scale in SCALES:
        cold = cfg["base_cold"] * scale
        touch_seconds = explode_seconds = float("inf")
        partial = False
        explode_atoms = 0
        for _ in range(repeats):
            doc = build_doc(cold, cfg["hot_lines"],
                            min_atoms=cfg["min_atoms"])
            doc.text()
            before = doc.tree.partial_explodes
            started = time.perf_counter()
            doc.insert_text(len(doc) // 2, ["probe"])
            touch_seconds = min(touch_seconds,
                                time.perf_counter() - started)
            partial = doc.tree.partial_explodes > before
            doc = build_doc(cold, cfg["hot_lines"],
                            min_atoms=cfg["min_atoms"])
            doc.text()
            leaf = max(doc.tree.array_leaves(), key=lambda l: l.id_count)
            explode_atoms = leaf.id_count
            started = time.perf_counter()
            leaf.explode()
            explode_seconds = min(explode_seconds,
                                  time.perf_counter() - started)
        rows.append({
            "scale": scale,
            "cold_lines": cold,
            "partial": partial,
            "first_touch_ns": touch_seconds * 1e9,
            "full_explode_ns": explode_seconds * 1e9,
            "full_explode_atoms": explode_atoms,
            "touch_speedup": explode_seconds / touch_seconds,
        })
    return rows


def measure_sweeps(cfg: dict, repeats: int) -> dict:
    """Full survey vs incremental sweep on identical touched states.

    Both docs get the same post-collapse hot edits; the full pass then
    re-surveys the whole tree (the pre-PR auto-collapse cost), while
    the incremental pass only visits the regions the touch-stamp log
    queued — what ``collapse_every`` boundaries now run."""
    cold = cfg["base_cold"] * SCALES[-1]
    touches = 24
    full_seconds = incremental_seconds = float("inf")
    for _ in range(repeats):
        for incremental in (False, True):
            doc = build_doc(cold, cfg["hot_lines"],
                            min_atoms=cfg["min_atoms"])
            doc.collapse_every = 1  # queue touches from here on
            rng = random.Random(3)
            for step in range(touches):
                pos = len(doc) - 1 - rng.randrange(cfg["hot_lines"] // 2)
                doc.insert_text(pos, ["touch %d" % step])
            started = time.perf_counter()
            if incremental:
                doc._collapse_cold_incremental()
                incremental_seconds = min(
                    incremental_seconds, time.perf_counter() - started)
            else:
                doc.collapse_cold()
                full_seconds = min(
                    full_seconds, time.perf_counter() - started)
    return {
        "touched_edits": touches,
        "cold_lines": cold,
        "full_pass_seconds": full_seconds,
        "incremental_seconds": incremental_seconds,
        "sweep_speedup": full_seconds / incremental_seconds,
    }


def _fmt_ns(nanos: float) -> str:
    for unit, scale in (("ns", 1), ("µs", 1e3), ("ms", 1e6), ("s", 1e9)):
        if nanos < 1000 * scale or unit == "s":
            return f"{nanos / scale:,.1f} {unit}"
    return f"{nanos / 1e9:.3f} s"  # pragma: no cover


def _render(results: dict) -> str:
    lines = [
        "Hot/cold sustained-edit benchmark "
        "(fixed hot window, growing cold body)",
        "",
        "  scale   atoms  leaves   edit p50    edit p99"
        "   drops  splices  partial",
    ]
    for row in results["hot_cold"]:
        lines.append(
            f"  {row['scale']:>4d}x {row['atoms']:>7,d} "
            f"{row['array_leaves']:>7d} {_fmt_ns(row['p50_ns']):>10s} "
            f"{_fmt_ns(row['p99_ns']):>11s} {row['cache_drops']:>7d} "
            f"{row['cache_splices']:>8d} {row['partial_explodes']:>8d}"
        )
    largest = results["hot_cold"][-1]
    lines += [
        "",
        f"  edit p99 at 10x cold       {results['p99_ratio']:.2f}x the 1x "
        f"p99 (flat = O(edit), not O(document))",
        f"  steady-state cache drops   "
        f"{results['steady_cache_drops']} across "
        f"{sum(r['edits'] for r in results['hot_cold'])} edits",
        f"  resident tree bytes (10x)  {largest['resident_bytes']:,d} B "
        f"({largest['array_leaves']} leaves held collapsed)",
        "",
        "first touch into the cold leaf interior "
        "(partial explode vs wholesale):",
    ]
    for row in results["cold_touch"]:
        path = "partial" if row["partial"] else "full   "
        lines.append(
            f"  {row['scale']:>4d}x [{path}] "
            f"{_fmt_ns(row['first_touch_ns']):>10s} edit vs "
            f"{_fmt_ns(row['full_explode_ns']):>10s} wholesale "
            f"({row['full_explode_atoms']:,d} atoms)   "
            f"{row['touch_speedup']:.1f}x"
        )
    lines += [
        "",
        "collapse_every boundary sweep (same touched state):",
        f"  full survey pass           "
        f"{_fmt_ns(results['sweep']['full_pass_seconds'] * 1e9):>10s}",
        f"  incremental (stamp log)    "
        f"{_fmt_ns(results['sweep']['incremental_seconds'] * 1e9):>10s}"
        f"   {results['sweep']['sweep_speedup']:.1f}x faster",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizes (seconds, not minutes)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_hotcold.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)
    if args.quick:
        cfg = dict(base_cold=240, hot_lines=48, edits=240, warmup=64,
                   collapse_every=4, min_atoms=8)
        repeats = 2
    else:
        cfg = dict(base_cold=800, hot_lines=64, edits=800, warmup=128,
                   collapse_every=4, min_atoms=8)
        repeats = 3
    rows = measure_scaling(cfg)
    results = {
        "config": {
            "quick": args.quick,
            **cfg,
            "scales": list(SCALES),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "hot_cold": rows,
        "p99_ratio": rows[-1]["p99_ns"] / rows[0]["p99_ns"],
        "steady_cache_drops": max(row["cache_drops"] for row in rows),
        "cold_touch": measure_cold_touch(cfg, repeats),
        "sweep": measure_sweeps(cfg, repeats),
    }
    print(_render(results))
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
