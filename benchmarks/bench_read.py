"""Read-path benchmark: snapshot and replay throughput, all four CRDTs.

Measures the two workloads the incremental read subsystem targets:

1. **Repeated snapshot reads** — ``atoms()`` / ``text()`` on a built
   document, the read the editor, convergence checks and the experiment
   tables all hammer. For Treedoc this is measured twice: with the
   live-snapshot cache + edit finger on (the shipped configuration) and
   with both disabled (the pre-cache behavior: a full infix tree walk
   per read), giving an honest A/B speedup on identical code.
2. **Revision replay end-to-end** — ``replay_history`` over a synthetic
   history (the paper's section 5 procedure), whose per-revision
   convergence check reads the whole snapshot; cache on vs. off, plus
   ``replay_into`` throughput for the Logoot/WOOT/RGA baselines.

Writes ``BENCH_read.json`` (checked into the repo root; CI refreshes it
as an artifact) and prints a summary table. Run::

    PYTHONPATH=src python benchmarks/bench_read.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.baselines import LogootDoc, RgaDoc, TreedocAdapter, WootDoc
from repro.core.treedoc import Treedoc
from repro.workloads.corpus import DocumentSpec
from repro.workloads.editing import generate_history
from repro.workloads.replay import replay_history, replay_into

FACTORIES: Dict[str, Callable[[int], object]] = {
    "treedoc-udis": lambda site: TreedocAdapter(site, mode="udis"),
    "treedoc-sdis": lambda site: TreedocAdapter(site, mode="sdis"),
    "logoot": lambda site: LogootDoc(site, seed=7),
    "woot": WootDoc,
    "rga": RgaDoc,
}


def _best_of(repeats: int, run: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _build_document(factory: Callable[[int], object], atom_count: int):
    """A document with edit structure (bursts + trims), ``atom_count``
    atoms at the end."""
    doc = factory(1)
    chunk = 50
    tag = 0
    while len(doc) < atom_count:
        run = [f"w{tag}.{k}" for k in range(min(chunk, atom_count - len(doc)))]
        tag += 1
        doc.insert_text(len(doc) * 2 // 3, run)
        if len(doc) > 120 and tag % 4 == 0:
            doc.delete_range(len(doc) // 2, len(doc) // 2 + 10)
    return doc


def measure_snapshot(atom_count: int, reads: int, repeats: int) -> List[dict]:
    """Repeated-snapshot throughput per CRDT (atoms + text per read)."""
    rows: List[dict] = []
    for name, factory in FACTORIES.items():
        doc = _build_document(factory, atom_count)

        def read_all(doc=doc):
            for _ in range(reads):
                doc.atoms()
                doc.text()

        row = {
            "crdt": name,
            "atoms": len(doc),
            "reads": reads,
            "seconds": _best_of(repeats, read_all),
        }
        row["reads_per_second"] = reads / row["seconds"]
        if isinstance(doc, TreedocAdapter):
            tree = doc.doc.tree
            tree.configure_read_cache(snapshot=False, finger=False)
            row["seconds_uncached"] = _best_of(repeats, read_all)
            tree.configure_read_cache(snapshot=True, finger=True)
            row["speedup_vs_uncached"] = (
                row["seconds_uncached"] / row["seconds"]
            )
        rows.append(row)
    return rows


def _history(revisions: int, final_atoms: int, seed: int = 2009):
    spec = DocumentSpec(
        name=f"bench-read-{revisions}x{final_atoms}",
        kind="latex",
        final_atoms=final_atoms,
        final_bytes=final_atoms * 40,
        revisions=revisions,
        initial_atoms=max(9, final_atoms // 10),
    )
    return generate_history(spec, seed)


def measure_replay(revisions: int, final_atoms: int, repeats: int) -> List[dict]:
    """End-to-end revision replay, cache on vs. off, plus baselines."""
    history = _history(revisions, final_atoms)
    rows: List[dict] = []

    def treedoc_run(cache_on: bool) -> float:
        def run():
            doc = Treedoc(site=1, mode="sdis")
            if not cache_on:
                doc.tree.configure_read_cache(snapshot=False, finger=False)
            replay_history(doc, history, flatten_every=8)
        return _best_of(repeats, run)

    cached = treedoc_run(True)
    uncached = treedoc_run(False)
    rows.append({
        "crdt": "treedoc-sdis",
        "revisions": revisions,
        "seconds": cached,
        "seconds_uncached": uncached,
        "speedup_vs_uncached": uncached / cached,
        "revisions_per_second": revisions / cached,
    })
    for name in ("logoot", "woot", "rga"):
        seconds = _best_of(
            repeats, lambda name=name: replay_into(FACTORIES[name](1), history)
        )
        rows.append({
            "crdt": name,
            "revisions": revisions,
            "seconds": seconds,
            "revisions_per_second": revisions / seconds,
        })
    return rows


#: Self-contained measurement driver run in a subprocess against an
#: arbitrary source tree (PYTHONPATH selects the version); it only uses
#: APIs that exist both before and after this PR, so running it against
#: a pre-PR checkout gives the honest end-to-end before/after numbers.
_DRIVER = r"""
import json, sys, time
from repro.baselines import TreedocAdapter
from repro.core.treedoc import Treedoc
from repro.workloads.corpus import DocumentSpec
from repro.workloads.editing import generate_history
from repro.workloads.replay import replay_history

cfg = json.loads(sys.argv[1])

def best_of(repeats, run):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best

spec = DocumentSpec(
    name="bench-read-baseline", kind="latex",
    final_atoms=cfg["final_atoms"], final_bytes=cfg["final_atoms"] * 40,
    revisions=cfg["revisions"], initial_atoms=max(9, cfg["final_atoms"] // 10),
)
history = generate_history(spec, cfg["seed"])

def replay_run():
    replay_history(Treedoc(site=1, mode="sdis"), history, flatten_every=8)

# Replay is timed before the big snapshot document exists: a large
# live heap inflates GC cost inside the measured loop.
replay_seconds = best_of(cfg["repeats"], replay_run)

doc = TreedocAdapter(1, mode="sdis")
chunk, tag = 50, 0
while len(doc) < cfg["atom_count"]:
    run = ["w%d.%d" % (tag, k)
           for k in range(min(chunk, cfg["atom_count"] - len(doc)))]
    tag += 1
    doc.insert_text(len(doc) * 2 // 3, run)
    if len(doc) > 120 and tag % 4 == 0:
        doc.delete_range(len(doc) // 2, len(doc) // 2 + 10)

def snapshot_run():
    for _ in range(cfg["reads"]):
        doc.atoms()
        doc.text()

print(json.dumps({
    "replay_seconds": replay_seconds,
    "snapshot_seconds": best_of(cfg["repeats"], snapshot_run),
}))
"""


def _run_driver(src: Path, cfg: dict) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src)
    output = subprocess.run(
        [sys.executable, "-c", _DRIVER, json.dumps(cfg)],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(output.stdout)


def measure_vs_prepr(baseline_src: Path, snapshot_cfg: dict,
                   replay_cfg: dict) -> dict:
    """End-to-end before/after: the same driver against the pre-PR
    source tree and the current one."""
    cfg = {
        "seed": 2009,
        "revisions": replay_cfg["revisions"],
        "final_atoms": replay_cfg["final_atoms"],
        "atom_count": snapshot_cfg["atom_count"],
        "reads": snapshot_cfg["reads"],
        "repeats": max(snapshot_cfg["repeats"], replay_cfg["repeats"]),
    }
    current_src = Path(__file__).resolve().parent.parent / "src"
    current = _run_driver(current_src, cfg)
    baseline = _run_driver(baseline_src, cfg)
    return {
        "baseline_src": str(baseline_src),
        "config": cfg,
        "replay": {
            "seconds": current["replay_seconds"],
            "seconds_pre_pr": baseline["replay_seconds"],
            "speedup": baseline["replay_seconds"] / current["replay_seconds"],
        },
        "snapshot": {
            "seconds": current["snapshot_seconds"],
            "seconds_pre_pr": baseline["snapshot_seconds"],
            "speedup": (
                baseline["snapshot_seconds"] / current["snapshot_seconds"]
            ),
        },
    }


def _render(results: dict) -> str:
    lines = ["Read-path throughput (best of N)", ""]
    lines.append(f"{'snapshot reads':16s} {'atoms':>6s} {'reads/s':>10s} "
                 f"{'uncached reads/s':>17s} {'speedup':>8s}")
    for row in results["snapshot"]:
        uncached = row.get("seconds_uncached")
        lines.append(
            f"{row['crdt']:16s} {row['atoms']:6d} "
            f"{row['reads_per_second']:10.0f} "
            + (f"{row['reads'] / uncached:17.0f} "
               f"{row['speedup_vs_uncached']:7.1f}x"
               if uncached else f"{'—':>17s} {'—':>8s}")
        )
    lines.append("")
    lines.append(f"{'revision replay':16s} {'revs':>6s} {'revs/s':>10s} "
                 f"{'uncached revs/s':>17s} {'speedup':>8s}")
    for row in results["replay"]:
        uncached = row.get("seconds_uncached")
        lines.append(
            f"{row['crdt']:16s} {row['revisions']:6d} "
            f"{row['revisions_per_second']:10.1f} "
            + (f"{row['revisions'] / uncached:17.1f} "
               f"{row['speedup_vs_uncached']:7.2f}x"
               if uncached else f"{'—':>17s} {'—':>8s}")
        )
    prepr = results.get("vs_pre_pr")
    if prepr:
        lines.append("")
        lines.append("vs. pre-PR main (same driver, both source trees):")
        lines.append(
            f"  snapshot reads: {prepr['snapshot']['speedup']:.1f}x   "
            f"revision replay: {prepr['replay']['speedup']:.2f}x"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizes (seconds, not minutes)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_read.json",
                        help="where to write the JSON report")
    parser.add_argument("--baseline-src", type=Path, default=None,
                        help="path to a pre-PR checkout's src/ directory; "
                        "adds an end-to-end before/after comparison")
    args = parser.parse_args(argv)
    if args.quick:
        snapshot_cfg = dict(atom_count=2_000, reads=20, repeats=2)
        replay_cfg = dict(revisions=40, final_atoms=300, repeats=2)
    else:
        # Replay sized like the paper's largest LaTeX document (~1500
        # line atoms) so the per-revision snapshot reads matter the way
        # the motivation says they do.
        snapshot_cfg = dict(atom_count=20_000, reads=40, repeats=3)
        replay_cfg = dict(revisions=200, final_atoms=1_500, repeats=3)
    results = {
        "config": {
            "quick": args.quick,
            "snapshot": snapshot_cfg,
            "replay": replay_cfg,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "snapshot": measure_snapshot(**snapshot_cfg),
        "replay": measure_replay(**replay_cfg),
    }
    if args.baseline_src is not None:
        results["vs_pre_pr"] = measure_vs_prepr(
            args.baseline_src, snapshot_cfg, replay_cfg
        )
    print(_render(results))
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
