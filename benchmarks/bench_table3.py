"""Table 3: tombstone fraction across the flatten × balancing grid."""

from __future__ import annotations

import pytest

from repro.experiments import table3
from repro.experiments.common import DEFAULT_SEED, run_document
from repro.workloads.corpus import LATEX_DOCUMENTS

_GRID = [
    (cadence, balanced)
    for cadence in (None, 8, 2)
    for balanced in (False, True)
]


@pytest.mark.parametrize(
    "cadence,balanced",
    _GRID,
    ids=[
        f"flatten_{c or 'no'}-{'bal' if b else 'unbal'}" for c, b in _GRID
    ],
)
def bench_table3_cell(benchmark, report_sink, cadence, balanced):
    rows = report_sink("table3", _render_grid)

    def replay_latex_corpus():
        fractions = []
        for spec in LATEX_DOCUMENTS:
            run = run_document(
                spec, mode="sdis", balanced=balanced,
                flatten_every=cadence, seed=DEFAULT_SEED, with_disk=False,
            )
            fractions.append(run.stats.tombstone_fraction)
        return 100.0 * sum(fractions) / len(fractions)

    tombstone_pct = benchmark.pedantic(replay_latex_corpus, rounds=1,
                                       iterations=1)
    rows.append((cadence, balanced, tombstone_pct))
    benchmark.extra_info["tombstone_pct"] = round(tombstone_pct, 1)


def _render_grid(rows) -> str:
    from repro.metrics.report import Table

    cells = {(c, b): pct for c, b, pct in rows}
    table = Table(
        "Table 3. Fraction of tombstones, % (LaTeX documents, SDIS)",
        ("", "no balancing", "balancing"),
    )
    for cadence in (None, 8, 2):
        label = "no-flatten" if cadence is None else f"flatten-{cadence}"
        table.add_row(
            label,
            cells.get((cadence, False), float("nan")),
            cells.get((cadence, True), float("nan")),
        )
    return table.render()
