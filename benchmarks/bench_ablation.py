"""Ablations over the design choices DESIGN.md calls out.

Not paper tables, but the knobs behind them:

- flatten heuristic strength (``min_depth``): our largest-cold-subtree
  finder vs. the paper's weaker partial heuristic;
- balancing (section 4.1) on/off for append-heavy editing;
- the growth cap on balanced appends;
- Logoot's boundary parameter (what the Table 5 ratio is sensitive to).
"""

from __future__ import annotations

import pytest

from repro.baselines.logoot import LogootDoc
from repro.core.treedoc import Treedoc
from repro.experiments.common import DEFAULT_SEED, history_for
from repro.metrics.overhead import measure_tree
from repro.metrics.report import Table
from repro.workloads.corpus import document_spec
from repro.workloads.replay import replay_history, replay_into


@pytest.mark.parametrize("min_depth", [1, 2, 3],
                         ids=["ours", "weaker", "paper-like"])
def bench_flatten_heuristic_strength(benchmark, report_sink, min_depth):
    rows = report_sink("ablation-flatten", _render_flatten)

    def replay():
        doc = Treedoc(site=1, mode="sdis")
        history = history_for(document_spec("acf.tex"), DEFAULT_SEED)
        replay_history(doc, history, flatten_every=2,
                       flatten_min_depth=min_depth)
        return measure_tree(doc.tree, with_disk=False)

    stats = benchmark.pedantic(replay, rounds=1, iterations=1)
    rows.append((min_depth, 100 * stats.tombstone_fraction,
                 stats.avg_posid_bits, stats.nodes))
    benchmark.extra_info["tombstone_pct"] = round(
        100 * stats.tombstone_fraction, 1
    )


def _render_flatten(rows) -> str:
    table = Table(
        "Ablation: flatten heuristic strength (acf.tex, flatten-2)",
        ("min_depth", "tombstone %", "avg PosID bits", "nodes"),
    )
    for row in sorted(rows):
        table.add_row(*row)
    return table.render()


@pytest.mark.parametrize("balanced", [True, False], ids=["balanced", "naive"])
def bench_append_heavy_editing(benchmark, report_sink, balanced):
    rows = report_sink("ablation-balance", _render_balance)

    def append_1000():
        doc = Treedoc(site=1, balanced=balanced)
        for i in range(1000):
            doc.insert(i, i)
        return doc

    doc = benchmark.pedantic(append_1000, rounds=1, iterations=1)
    stats = measure_tree(doc.tree, with_disk=False)
    rows.append(("balanced" if balanced else "naive", doc.tree.height,
                 stats.avg_posid_bits, stats.max_posid_bits))


def _render_balance(rows) -> str:
    table = Table(
        "Ablation: section 4.1 balancing, 1000 appends",
        ("allocator", "tree height", "avg PosID bits", "max PosID bits"),
    )
    for row in sorted(rows):
        table.add_row(*row)
    return table.render()


@pytest.mark.parametrize("cap", [4, 6, 8], ids=["cap4", "cap6", "cap8"])
def bench_growth_cap(benchmark, report_sink, cap):
    rows = report_sink("ablation-growth", _render_growth)

    def append_2000():
        doc = Treedoc(site=1, balanced=True)
        doc.allocator.MAX_GROWTH_LEVELS = cap
        for i in range(2000):
            doc.insert(i, i)
        return doc

    doc = benchmark.pedantic(append_2000, rounds=1, iterations=1)
    stats = measure_tree(doc.tree, with_disk=False)
    rows.append((cap, doc.tree.height, stats.nodes, stats.avg_posid_bits))


def _render_growth(rows) -> str:
    table = Table(
        "Ablation: balanced-growth cap, 2000 appends",
        ("max growth levels", "height", "nodes (incl. empty)",
         "avg PosID bits"),
    )
    for row in sorted(rows):
        table.add_row(*row)
    return table.render()


@pytest.mark.parametrize("boundary", [4, 10, 32],
                         ids=["b4", "b10", "b32"])
def bench_logoot_boundary(benchmark, report_sink, boundary):
    rows = report_sink("ablation-logoot", _render_logoot)

    def replay():
        history = history_for(document_spec("acf.tex"), DEFAULT_SEED)
        doc = LogootDoc(site=1, boundary=boundary, seed=DEFAULT_SEED)
        replay_into(doc, history)
        return doc

    doc = benchmark.pedantic(replay, rounds=1, iterations=1)
    rows.append((boundary, doc.avg_id_bits(), doc.max_id_bits()))


def _render_logoot(rows) -> str:
    table = Table(
        "Ablation: Logoot boundary parameter (acf.tex)",
        ("boundary", "avg id bits", "max id bits"),
    )
    for row in sorted(rows):
        table.add_row(*row)
    return table.render()
