"""Table 2: corpus summary (generation cost + published statistics)."""

from __future__ import annotations

from repro.experiments import table2
from repro.experiments.common import DEFAULT_SEED
from repro.workloads.corpus import PAPER_DOCUMENTS
from repro.workloads.editing import generate_history


def bench_table2_summary(benchmark, report_sink):
    rows = report_sink("table2", table2.render)

    def generate_all():
        return [generate_history(spec, DEFAULT_SEED) for spec in PAPER_DOCUMENTS]

    histories = benchmark.pedantic(generate_all, rounds=1, iterations=1)
    assert len(histories) == 6
    rows.extend(table2.run(seed=DEFAULT_SEED))
    summary = {row.label: row for row in rows}
    assert summary["most active"].revisions == 870
    assert summary["less active"].revisions == 51
