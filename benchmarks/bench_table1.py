"""Table 1: per-document overhead measurements under flatten cadences.

One benchmark per (document, flatten setting) cell: the timed body is
the full history replay (the paper's CPU claim — "less than 1.44
seconds for the Distributed Computing entry" — is the same
measurement), and the final-state overheads are accumulated into the
paper-style table printed at the end of the run.
"""

from __future__ import annotations

import pytest

from repro.experiments import table1
from repro.experiments.common import DEFAULT_SEED, run_document
from repro.workloads.corpus import PAPER_DOCUMENTS

_CASES = [
    (spec, cadence)
    for spec in PAPER_DOCUMENTS
    for cadence in (None, *spec.flatten_cadences)
]


@pytest.mark.parametrize(
    "spec,cadence",
    _CASES,
    ids=[f"{s.name.replace(' ', '_')}-flatten_{c or 'no'}" for s, c in _CASES],
)
def bench_table1_cell(benchmark, report_sink, spec, cadence):
    rows = report_sink("table1", table1.render)

    def replay():
        return run_document(
            spec, mode="sdis", balanced=True,
            flatten_every=cadence, seed=DEFAULT_SEED,
        )

    run = benchmark.pedantic(replay, rounds=1, iterations=1)
    row = table1._row(run)
    rows.append(row)
    benchmark.extra_info["nodes"] = row.nodes
    benchmark.extra_info["avg_posid_bits"] = round(row.avg_posid_bits, 1)
    benchmark.extra_info["non_tombstone_pct"] = round(row.non_tombstone_pct, 1)
    # Sanity: the replay reproduced the document.
    assert run.stats.live_atoms == spec.final_atoms
