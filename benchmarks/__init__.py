"""Benchmark suite: paper tables/figures (pytest-benchmark modules) and
the standalone read-path benchmark. ``python -m benchmarks`` runs
everything with one command."""
