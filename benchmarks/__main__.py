"""Run every benchmark with one command::

    PYTHONPATH=src python -m benchmarks [--quick] [--skip-tables]

Runs the pytest-benchmark table/figure modules (timing disabled unless
pytest-benchmark is installed and ``--benchmark-only`` is passed down —
the single-pass mode still regenerates and prints the paper tables),
then the standalone read-path benchmark, which writes
``BENCH_read.json``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="run all benchmarks")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizes for the read benchmark")
    parser.add_argument("--skip-tables", action="store_true",
                        help="skip the pytest table/figure benchmarks")
    parser.add_argument("--baseline-src", default=None,
                        help="pre-PR src/ path for the before/after "
                        "read-path comparison")
    args = parser.parse_args(argv)
    here = Path(__file__).resolve().parent
    status = 0
    if not args.skip_tables:
        import pytest

        status = pytest.main([
            str(here), "-q",
            "-o", "python_files=bench_*.py",
            "-o", "python_functions=bench_*",
            "-p", "no:cacheprovider",
            "--benchmark-disable",
        ])
        if status:
            return int(status)
    from benchmarks import bench_read

    read_args = ["--quick"] if args.quick else []
    if args.baseline_src:
        read_args += ["--baseline-src", args.baseline_src]
    return bench_read.main(read_args)


if __name__ == "__main__":
    raise SystemExit(main())
