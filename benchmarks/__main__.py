"""Run every benchmark with one command::

    PYTHONPATH=src python -m benchmarks [--quick] [--skip-tables]

Runs the pytest-benchmark table/figure modules (timing disabled unless
pytest-benchmark is installed and ``--benchmark-only`` is passed down —
the single-pass mode still regenerates and prints the paper tables),
then the standalone read-path, mixed-storage, hot/cold, sync, network
and durability benchmarks, which write ``BENCH_read.json``,
``BENCH_storage.json``, ``BENCH_hotcold.json``, ``BENCH_sync.json``,
``BENCH_network.json`` and ``BENCH_durability.json``, and closes with
one summary whose every
number carries its unit (reads/s, seconds, bytes) — no raw result
dicts.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path


def _summary(root: Path) -> str:
    """A units-labelled digest of the standalone benchmark reports."""
    lines = ["", "== benchmark summary (units: explicit per metric) =="]
    read_report = root / "BENCH_read.json"
    if read_report.exists():
        data = json.loads(read_report.read_text())
        for row in data.get("snapshot", []):
            lines.append(
                f"  read/snapshot   {row['crdt']:14s} "
                f"{row['reads_per_second']:>12,.0f} reads/s "
                f"({row['atoms']:,d} atoms)"
            )
        for row in data.get("replay", []):
            lines.append(
                f"  read/replay     {row['crdt']:14s} "
                f"{row['revisions_per_second']:>12,.1f} revs/s "
                f"({row['seconds'] * 1e3:,.0f} ms total)"
            )
    sync_report = root / "BENCH_sync.json"
    if sync_report.exists():
        data = json.loads(sync_report.read_text())
        frames = data["run_frames"]
        lines.append(
            f"  sync/run-frames catch-up       "
            f"{frames['wire_bytes']:>12,d} bytes "
            f"({frames['atoms']:,d} atoms, {frames['run_segments']} runs, "
            f"{frames['seconds'] * 1e3:,.0f} ms)"
        )
        lines.append(
            f"  sync/per-op v1 replay          "
            f"{data['per_op_v1']['wire_bytes']:>12,d} bytes "
            f"({data['bytes_ratio_v1']:.1f}x more wire, "
            f"{data['time_ratio_v1']:.1f}x slower)"
        )
    network_report = root / "BENCH_network.json"
    if network_report.exists():
        data = json.loads(network_report.read_text())
        replay = data["replay"]
        sync = data["anti_entropy"]
        lines.append(
            f"  network/replay catch-up        "
            f"{replay['wire_bytes_to_laggard']:>12,d} bytes "
            f"({replay['messages_to_laggard']:,d} messages)"
        )
        lines.append(
            f"  network/anti-entropy catch-up  "
            f"{sync['wire_bytes_to_joiner']:>12,d} bytes "
            f"({data['bytes_ratio']:.1f}x fewer, "
            f"{sync['loaded_leaves']} leaves loaded)"
        )
        faulty = data["anti_entropy_under_faults"]
        lines.append(
            f"  network/corruption handling    "
            f"{faulty['decode_rejections']:>12,d} frames rejected+retried "
            f"({faulty['corrupted_transmissions']} corrupted, "
            f"{faulty['dropped_transmissions']} dropped)"
        )
    storage_report = root / "BENCH_storage.json"
    if storage_report.exists():
        data = json.loads(storage_report.read_text())
        current = data["current"]
        lines.append(
            f"  storage/quiescent resident     "
            f"{current['resident_bytes']:>12,d} bytes "
            f"({current['collapsed_regions']} regions, "
            f"{current['atoms']:,d} atoms)"
        )
        baseline = data.get("pre_pr")
        if baseline:
            lines.append(
                f"  storage/pre-PR resident        "
                f"{baseline['resident_bytes']:>12,d} bytes "
                f"({data['resident_bytes_reduction']:.1f}x reduction)"
            )
        mechanics = data.get("mechanics")
        if mechanics:
            lines.append(
                f"  storage/collapse pass          "
                f"{mechanics['collapse_seconds'] * 1e9:>12,.0f} ns "
                f"({mechanics['array_leaves']} leaves)"
            )
            lines.append(
                f"  storage/explode all            "
                f"{mechanics['explode_seconds'] * 1e9:>12,.0f} ns"
            )
    hotcold_report = root / "BENCH_hotcold.json"
    if hotcold_report.exists():
        data = json.loads(hotcold_report.read_text())
        largest = data["hot_cold"][-1]
        lines.append(
            f"  hotcold/edit p99 at 10x cold   "
            f"{largest['p99_ns']:>12,.0f} ns "
            f"({data['p99_ratio']:.2f}x the 1x p99, "
            f"{data['steady_cache_drops']} cache drops)"
        )
        touch = data["cold_touch"][-1]
        lines.append(
            f"  hotcold/first interior touch   "
            f"{touch['first_touch_ns']:>12,.0f} ns "
            f"({touch['touch_speedup']:.1f}x vs wholesale explode)"
        )
        sweep = data["sweep"]
        lines.append(
            f"  hotcold/boundary sweep         "
            f"{sweep['incremental_seconds'] * 1e9:>12,.0f} ns "
            f"({sweep['sweep_speedup']:.1f}x vs full survey)"
        )
    server_report = root / "BENCH_server.json"
    if server_report.exists():
        data = json.loads(server_report.read_text())
        ingest = data["throughput"]
        overload = data["overload"]
        lines.append(
            f"  server/socket ingest           "
            f"{ingest['frames_per_second']:>12,.1f} frames/s "
            f"(p50 {ingest['apply_p50_ms']} ms, "
            f"p99 {ingest['apply_p99_ms']} ms apply)"
        )
        lines.append(
            f"  server/overload shedding       "
            f"{overload['shed_rate'] * 100:>11,.1f}% refused "
            f"({overload['declined_busy']} declined busy, "
            f"{overload['served']} served)"
        )
    durability_report = root / "BENCH_durability.json"
    if durability_report.exists():
        data = json.loads(durability_report.read_text())
        longest = data["recovery_scaling"][-1]
        lines.append(
            f"  durability/full-log recovery   "
            f"{longest['recovery_seconds']:>12,.2f} seconds "
            f"({longest['edits']:,d} edits, "
            f"{longest['wal_bytes']:,d} WAL bytes)"
        )
        bounded = [row for row in data["cadence_sweep"]
                   if row["checkpoint_every"] is not None]
        if bounded:
            best = min(bounded, key=lambda row: row["replayed_batches"])
            lines.append(
                f"  durability/checkpoint cadence  "
                f"{best['replayed_batches']:>12,d} batches replayed "
                f"(cadence {best['checkpoint_every']}, "
                f"{best['checkpoints_written']} checkpoints)"
            )
        overhead = data["wal_overhead"]
        lines.append(
            f"  durability/WAL overhead        "
            f"{overhead['facade']['bytes_per_edit']:>12,.1f} bytes/edit "
            f"({overhead['site']['bytes_per_record']:,.1f} bytes/envelope "
            f"at a site)"
        )
        rejoin = data["site_recovery"]
        lines.append(
            f"  durability/crash+rejoin        "
            f"{rejoin['restart_seconds'] * 1e3:>12,.1f} ms restart "
            f"({rejoin['recovered_events']} events replayed, "
            f"torn -{rejoin['torn_bytes_discarded']} bytes)"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="run all benchmarks")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizes for the standalone benchmarks")
    parser.add_argument("--skip-tables", action="store_true",
                        help="skip the pytest table/figure benchmarks")
    parser.add_argument("--baseline-src", default=None,
                        help="pre-PR src/ path for the before/after "
                        "read-path and storage comparisons")
    args = parser.parse_args(argv)
    here = Path(__file__).resolve().parent
    status = 0
    if not args.skip_tables:
        import pytest

        status = pytest.main([
            str(here), "-q",
            "-o", "python_files=bench_*.py",
            "-o", "python_functions=bench_*",
            "-p", "no:cacheprovider",
            "--benchmark-disable",
        ])
        if status:
            return int(status)
    from benchmarks import (
        bench_durability,
        bench_hotcold,
        bench_network,
        bench_read,
        bench_server,
        bench_storage,
        bench_sync,
    )

    shared_args = ["--quick"] if args.quick else []
    if args.baseline_src:
        shared_args += ["--baseline-src", args.baseline_src]
    status = bench_read.main(list(shared_args))
    if status:
        return status
    status = bench_storage.main(list(shared_args))
    if status:
        return status
    # bench_hotcold takes no baseline-src: its before/after numbers
    # (partial vs wholesale explode, incremental vs full sweep) compare
    # strategies of the current stack on identical states.
    status = bench_hotcold.main(["--quick"] if args.quick else [])
    if status:
        return status
    # bench_sync and bench_network take no baseline-src: they compare
    # wire strategies of the *current* stack (v1 vs v2 frames; replay
    # vs anti-entropy catch-up on the simulated network).
    status = bench_sync.main(["--quick"] if args.quick else [])
    if status:
        return status
    status = bench_network.main(["--quick"] if args.quick else [])
    if status:
        return status
    status = bench_durability.main(["--quick"] if args.quick else [])
    if status:
        return status
    # bench_server times a live asyncio daemon over a loopback socket;
    # no baseline-src — it benchmarks the current stack only.
    status = bench_server.main(["--quick"] if args.quick else [])
    if status:
        return status
    print(_summary(here.parent))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
