"""Daemon benchmark: socket throughput, apply latency, overload shedding.

Three questions about :mod:`repro.server`, answered end to end over a
real loopback socket (a raw client speaks the peer protocol — hello,
then stream-framed wire frames — to a live :class:`SiteDaemon`):

1. **Frames per second** — how fast a daemon ingests, decodes and
   applies a causally-ordered envelope stream arriving on one socket,
   measured from first byte written to last frame applied.
2. **Apply latency** — the daemon's own p50/p99 per-frame apply cost
   (decode + causal delivery + tree mutation), read from its status
   counters after the run.
3. **Shed rate under overload** — a client floods ``SyncRequest``\\ s
   past the admission gate's in-flight cap into a deliberately tiny
   inbound queue; the daemon must refuse typed (``SyncDecline(busy)``)
   or shed, never stall or grow without bound. Reports the observed
   shed/decline split and the fraction that was still served.

Writes ``BENCH_server.json`` (checked into the repo root; CI refreshes
it as an artifact) and fails loudly if any throughput frame is lost,
if the stream needed resyncs on a clean socket, or if the overload
run sheds nothing. Run::

    PYTHONPATH=src python benchmarks/bench_server.py [--quick]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import random
import sys
import time
from pathlib import Path


class _CaptureNetwork:
    """The minimal network contract, recording broadcast envelopes —
    a scratch ReplicaSite writes the benchmark's input stream."""

    def __init__(self):
        self.frames = []
        self.now = 0.0
        self.sites = (1,)

    def register(self, site, handler):
        pass

    def send(self, src, dst, data):
        pass

    def broadcast(self, src, data):
        self.frames.append(bytes(data))

    def reachable(self, src, dst):
        return True

    def disconnect(self, site):
        pass


def _build_envelopes(edits, seed):
    """A causally-ordered envelope stream from seeded random edits."""
    from repro.replication.site import ReplicaSite

    capture = _CaptureNetwork()
    site = ReplicaSite(1, capture)
    rng = random.Random(seed)
    for edit in range(edits):
        length = len(site)
        if length > 40 and rng.random() < 0.25:
            start = rng.randrange(length - 8)
            site.delete_range(start, start + rng.randint(1, 6))
        else:
            at = rng.randint(0, length)
            site.insert_text(at, list(f"e{edit}" + "x" * rng.randint(1, 9)))
    return capture.frames, len(site)


async def _drain_socket(reader):
    """Discard daemon->client traffic (heartbeats, declines, sync
    answers) so its writer never stalls against us."""
    try:
        while await reader.read(65536):
            pass
    except (ConnectionError, OSError, asyncio.CancelledError):
        pass


async def _hello(host, port):
    from repro.replication.clock import VectorClock
    from repro.replication.wire import AckFrame, encode_wire
    from repro.server.framing import encode_segment

    reader, writer = await asyncio.open_connection(host, port)
    writer.write(encode_segment(encode_wire(AckFrame(1, VectorClock()))))
    await writer.drain()
    drainer = asyncio.get_event_loop().create_task(_drain_socket(reader))
    return reader, writer, drainer


async def _wait(predicate, timeout):
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(0.01)
    return predicate()


async def _throughput_run(frames, expected_atoms):
    """Stream every envelope down one socket; time to full apply."""
    from repro.server.daemon import DaemonConfig, SiteDaemon
    from repro.server.framing import encode_segment

    config = DaemonConfig(
        site=2, peers={1: ("127.0.0.1", 1)},  # roster entry, never dialed
        # The whole stream arrives as one burst; admission must hold
        # it (shedding envelopes is the *overload* scenario, not this
        # one — here we measure apply throughput without loss).
        inbound_depth=len(frames) + 8,
        tick_interval=5.0, heartbeat_interval=30.0, idle_timeout=3600.0,
    )
    daemon = SiteDaemon(config)
    await daemon.start()
    try:
        reader, writer, drainer = await _hello("127.0.0.1", daemon.port)
        started = time.perf_counter()
        for frame in frames:
            writer.write(encode_segment(frame))
        await writer.drain()
        total = len(frames) + 1  # the hello applies too
        applied = await _wait(
            lambda: daemon.frames_applied >= total, timeout=120.0
        )
        elapsed = time.perf_counter() - started
        status = daemon.status()
        drainer.cancel()
        writer.close()
        if not applied:
            raise SystemExit(
                f"throughput: only {daemon.frames_applied}/{total} "
                f"frames applied"
            )
        if len(daemon.site) != expected_atoms:
            raise SystemExit(
                f"throughput: {len(daemon.site)} atoms, "
                f"expected {expected_atoms}"
            )
        if daemon.stream_resyncs or daemon.decode_errors:
            raise SystemExit("throughput: damage on a clean socket")
        return {
            "frames": len(frames),
            "atoms": expected_atoms,
            "seconds": round(elapsed, 4),
            "frames_per_second": round(len(frames) / elapsed, 1),
            "apply_p50_ms": status["apply_p50_ms"],
            "apply_p99_ms": status["apply_p99_ms"],
        }
    finally:
        await daemon.shutdown()


async def _overload_run(requests):
    """Flood SyncRequests past the admission gate; measure shedding."""
    from repro.replication.clock import VectorClock
    from repro.replication.wire import SyncRequest, encode_wire
    from repro.server.daemon import DaemonConfig, SiteDaemon
    from repro.server.framing import encode_segment

    config = DaemonConfig(
        site=2, peers={1: ("127.0.0.1", 1)},
        inbound_depth=16, max_inflight_syncs=4,
        tick_interval=5.0, heartbeat_interval=30.0, idle_timeout=3600.0,
    )
    daemon = SiteDaemon(config)
    await daemon.start()
    try:
        daemon.site.insert_text(0, list("overload payload " * 8))
        reader, writer, drainer = await _hello("127.0.0.1", daemon.port)
        burst = encode_segment(encode_wire(SyncRequest(1, VectorClock())))
        started = time.perf_counter()
        for _ in range(requests):
            writer.write(burst)
        await writer.drain()
        await _wait(
            lambda: (daemon.declined_syncs + daemon.shed_inbound
                     + daemon.frames_applied) > requests
            and daemon._inbound.empty(),
            timeout=60.0,
        )
        elapsed = time.perf_counter() - started
        drainer.cancel()
        writer.close()
        refused = daemon.declined_syncs + daemon.shed_inbound
        served = daemon.site.sync_responses_served \
            if hasattr(daemon.site, "sync_responses_served") \
            else daemon.frames_applied - 1
        if refused == 0:
            raise SystemExit("overload: nothing was shed or declined")
        if daemon._inbound.qsize() > config.inbound_depth:
            raise SystemExit("overload: inbound queue exceeded its bound")
        return {
            "requests_sent": requests,
            "declined_busy": daemon.declined_syncs,
            "shed_inbound": daemon.shed_inbound,
            "served": served,
            "shed_rate": round(refused / requests, 4),
            "seconds": round(elapsed, 4),
        }
    finally:
        await daemon.shutdown()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="daemon socket throughput / latency / shedding"
    )
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizes")
    args = parser.parse_args(argv)
    edits = 400 if args.quick else 2000
    requests = 200 if args.quick else 1000

    frames, expected_atoms = _build_envelopes(edits, seed=1234)
    throughput = asyncio.run(_throughput_run(frames, expected_atoms))
    overload = asyncio.run(_overload_run(requests))

    report = {
        "benchmark": "server",
        "quick": args.quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "throughput": throughput,
        "overload": overload,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_server.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  server/socket ingest           "
          f"{throughput['frames_per_second']:>12,.1f} frames/s "
          f"(p50 {throughput['apply_p50_ms']} ms, "
          f"p99 {throughput['apply_p99_ms']} ms apply)")
    print(f"  server/overload shedding       "
          f"{overload['shed_rate'] * 100:>11,.1f}% refused "
          f"({overload['declined_busy']} declined busy, "
          f"{overload['shed_inbound']} shed, "
          f"{overload['served']} served)")
    print(f"  wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
