"""Durability benchmark: recovery cost, checkpoint cadence, WAL overhead.

Three questions about :mod:`repro.storage`, answered with measurements:

1. **Recovery time vs WAL length** — with checkpoints disabled, every
   logged batch must be replayed on restart, so recovery cost grows
   with history length. The sweep shows that growth (and the byte
   growth of the log itself).
2. **Checkpoint cadence sweep** — the cadence knob trades write-time
   work (checkpoints written) against restart-time work (records
   replayed from the WAL tail). The sweep runs the same edit history
   at several cadences and reports both sides, plus the resulting disk
   footprint (checkpoint + live WAL segments).
3. **Per-edit WAL overhead in bytes** — the WAL's records *are* the
   existing encoded frames plus a fixed 9-byte header, so the overhead
   per edit is the wire cost the stack already pays plus the header.
   Measured, not asserted, for both the facade (batch frames) and a
   replica site (envelope frames, which also log remote traffic).

A fourth scenario runs the headline acceptance path end to end: a
durable site in a live cluster is killed, restarted from checkpoint +
WAL tail, and reconverges identifier-identically via anti-entropy.

Writes ``BENCH_durability.json`` (checked into the repo root; CI
refreshes it as an artifact) and fails loudly if checkpointing does not
bound replay below the no-checkpoint baseline, or if the recovered
cluster does not converge. Run::

    PYTHONPATH=src python benchmarks/bench_durability.py [--quick]
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import random
import sys
import tempfile
import time
from pathlib import Path


def _edit(replica, rng, edit) -> None:
    """One deterministic facade edit: mostly inserts, some replacements."""
    length = len(replica.doc)
    if length > 40 and rng.random() < 0.3:
        start = rng.randrange(length - 10)
        replica.edit(start, start + rng.randint(2, 8), "")
    else:
        at = rng.randint(0, length)
        replica.edit(at, at, f"e{edit}" + "x" * rng.randint(2, 12))


def _build_history(root, edits, seed, checkpoint_every):
    """A facade replica with ``edits`` logged batches; returns the
    final text and the closed store's write-side counters."""
    from repro import DurableStore, Replica

    store = DurableStore(root, checkpoint_every=checkpoint_every,
                         fsync=False)
    replica = Replica(1, store=store)
    rng = random.Random(seed)
    for edit in range(edits):
        _edit(replica, rng, edit)
        replica.pending()  # ship as minted: the steady state; an
        # undrained outbox would be re-logged whole at every checkpoint
    stats = {
        "records_appended": store.records_appended,
        "bytes_appended": store.bytes_appended,
        "checkpoints_written": store.checkpoints_written,
        "wal_bytes": store.wal_bytes,
    }
    text = replica.text()
    store.close()
    return text, stats


def _disk_footprint(root: Path) -> int:
    return sum(p.stat().st_size for p in root.iterdir() if p.is_file())


def _timed_recovery(root, checkpoint_every):
    from repro import DurableStore, Replica

    # Garbage from earlier scenarios would otherwise trigger cycle
    # collections mid-measurement and skew rows against each other.
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        replica = Replica(1, store=DurableStore(
            root, checkpoint_every=checkpoint_every, fsync=False))
        seconds = time.perf_counter() - started
    finally:
        gc.enable()
    return replica, seconds


def measure_recovery_scaling(cfg) -> list:
    """Recovery time vs WAL length, checkpoints off: full-log replay."""
    rows = []
    for edits in cfg["wal_lengths"]:
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "wal"
            text, stats = _build_history(root, edits, cfg["seed"],
                                         checkpoint_every=None)
            replica, seconds = _timed_recovery(root, checkpoint_every=None)
            if replica.text() != text:
                raise SystemExit("FAIL: full-log recovery lost edits")
            replica.store.close()
            rows.append({
                "edits": edits,
                "wal_bytes": stats["wal_bytes"],
                "recovery_seconds": seconds,
                "recovered_batches": replica.recovered_batches,
                "wal_bytes_per_edit": stats["wal_bytes"] / edits,
            })
    return rows


def measure_cadence_sweep(cfg) -> list:
    """Same history, several checkpoint cadences: checkpoints written
    vs records replayed on restart vs disk footprint."""
    rows = []
    baseline_replayed = None
    for cadence in cfg["cadences"]:
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "wal"
            text, stats = _build_history(root, cfg["edits"], cfg["seed"],
                                         checkpoint_every=cadence)
            footprint = _disk_footprint(root)
            replica, seconds = _timed_recovery(root, cadence)
            if replica.text() != text:
                raise SystemExit(
                    f"FAIL: cadence={cadence} recovery lost edits"
                )
            replayed = replica.recovered_batches
            replica.store.close()
            if cadence is None:
                baseline_replayed = replayed
            rows.append({
                "checkpoint_every": cadence,
                "edits": cfg["edits"],
                "checkpoints_written": stats["checkpoints_written"],
                "replayed_batches": replayed,
                "recovery_seconds": seconds,
                "disk_bytes": footprint,
            })
    # Acceptance: any enabled cadence must bound replay below both the
    # cadence itself and the no-checkpoint baseline.
    for row in rows:
        cadence = row["checkpoint_every"]
        if cadence is None:
            continue
        if row["replayed_batches"] >= cadence + 1:
            raise SystemExit(
                f"FAIL: cadence={cadence} replayed "
                f"{row['replayed_batches']} batches (not bounded)"
            )
        if baseline_replayed is not None and \
                row["replayed_batches"] >= baseline_replayed and \
                baseline_replayed > cadence:
            raise SystemExit(
                f"FAIL: cadence={cadence} did not beat full-log replay"
            )
    return rows


def measure_wal_overhead(cfg) -> dict:
    """Per-edit WAL bytes: facade batch frames and site envelope frames."""
    from repro.replication.cluster import Cluster
    from repro.storage import DurableStore

    with tempfile.TemporaryDirectory() as tmp:
        _, facade = _build_history(Path(tmp) / "facade", cfg["edits"],
                                   cfg["seed"], checkpoint_every=None)

    with tempfile.TemporaryDirectory() as tmp:
        cluster = Cluster(2, seed=cfg["seed"])
        store = DurableStore(Path(tmp) / "site", checkpoint_every=None,
                             fsync=False)
        durable = cluster.add_site(3, store=store)
        cluster.bootstrap("seed line of shared text. ")
        rng = random.Random(cfg["seed"])
        own = cfg["edits"] // 2
        for edit in range(own):
            durable.insert_text(rng.randint(0, len(durable.doc)),
                                f"d{edit}")
            peer = cluster[1 + edit % 2]
            peer.insert_text(rng.randint(0, len(peer.doc)), "p")
        cluster.settle()
        site = {
            "records_appended": store.records_appended,
            "bytes_appended": store.bytes_appended,
            "own_edits": own,
        }
        store.close()

    return {
        "facade": {
            "edits": cfg["edits"],
            "wal_bytes": facade["bytes_appended"],
            "bytes_per_edit": facade["bytes_appended"] / cfg["edits"],
        },
        "site": {
            # Envelope records cover own AND remote traffic: the WAL is
            # the site's full applied history, so normalise per record.
            "envelope_records": site["records_appended"],
            "wal_bytes": site["bytes_appended"],
            "bytes_per_record": (
                site["bytes_appended"] / site["records_appended"]
            ),
        },
    }


def measure_site_recovery(cfg) -> dict:
    """The acceptance path: kill a durable site in a live cluster,
    restart it from checkpoint + WAL tail, reconverge via anti-entropy."""
    from repro.replication.cluster import Cluster
    from repro.storage import DurableStore, tear_store

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "site"
        cluster = Cluster(2, seed=cfg["seed"])
        durable = cluster.add_site(
            3, store=DurableStore(root, checkpoint_every=cfg["cadence"],
                                  fsync=False))
        cluster.bootstrap("seed line of shared text. ")
        rng = random.Random(cfg["seed"])
        for edit in range(cfg["edits"]):
            site = cluster[1 + edit % 3] if edit % 3 else durable
            site.insert_text(rng.randint(0, len(site.doc)), f"e{edit}")
            if edit % 25 == 24:
                cluster.settle()
        cluster.settle()

        cluster.crash_site(3)
        _, offset, discarded = tear_store(root, rng=rng)
        cluster[1].insert_text(0, "Z")  # traffic while the site is down
        cluster.settle()

        started = time.perf_counter()
        recovered = cluster.add_site(
            3, store=DurableStore(root, checkpoint_every=cfg["cadence"],
                                  fsync=False))
        restart_seconds = time.perf_counter() - started
        cluster.settle()
        recovered.request_sync(1)
        cluster.settle()
        cluster.anti_entropy(max_rounds=16)
        cluster.assert_converged()
        if recovered.doc.posids() != cluster[1].doc.posids():
            raise SystemExit(
                "FAIL: recovered site is not identifier-identical"
            )
        result = {
            "edits": cfg["edits"],
            "torn_at_offset": offset,
            "torn_bytes_discarded": discarded,
            "restart_seconds": restart_seconds,
            "recovered_events": recovered.recovered_events,
            "reshipped_envelopes": recovered.reshipped_envelopes,
            "atoms": len(recovered),
        }
        recovered.store.close()
    return result


def _render(results: dict) -> str:
    lines = [
        "Durable sites (WAL of existing frames; checkpoint = one "
        "state-transfer frame)",
        "",
        "  recovery time vs WAL length (checkpoints off: full replay)",
    ]
    for row in results["recovery_scaling"]:
        lines.append(
            f"    {row['edits']:>6,d} edits  "
            f"{row['wal_bytes']:>10,d} B WAL  "
            f"{row['recovery_seconds'] * 1e3:>8,.1f} ms recovery  "
            f"({row['wal_bytes_per_edit']:.1f} B/edit)"
        )
    lines.append("")
    lines.append("  checkpoint cadence sweep "
                 f"({results['config']['edits']:,d} edits)")
    for row in results["cadence_sweep"]:
        cadence = row["checkpoint_every"]
        label = "off" if cadence is None else f"{cadence}"
        lines.append(
            f"    every {label:>4s}  "
            f"{row['checkpoints_written']:>3d} checkpoints  "
            f"{row['replayed_batches']:>5,d} replayed  "
            f"{row['recovery_seconds'] * 1e3:>8,.1f} ms recovery  "
            f"{row['disk_bytes']:>10,d} B on disk"
        )
    overhead = results["wal_overhead"]
    recovery = results["site_recovery"]
    lines += [
        "",
        f"  WAL overhead   facade "
        f"{overhead['facade']['bytes_per_edit']:,.1f} B/edit   "
        f"site {overhead['site']['bytes_per_record']:,.1f} B/envelope",
        f"  crash+rejoin   torn at byte {recovery['torn_at_offset']:,d} "
        f"(-{recovery['torn_bytes_discarded']} B), restart "
        f"{recovery['restart_seconds'] * 1e3:,.1f} ms, "
        f"{recovery['recovered_events']} events replayed, "
        f"{recovery['reshipped_envelopes']} reshipped",
        "  recovered site identifier-identical to cluster: yes (checked)",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizes (seconds, not minutes)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_durability.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)
    if args.quick:
        cfg = dict(edits=200, wal_lengths=[50, 200, 800],
                   cadences=[None, 8, 32, 128], cadence=32, seed=2009)
    else:
        cfg = dict(edits=800, wal_lengths=[100, 400, 1600, 6400],
                   cadences=[None, 8, 32, 128, 512], cadence=64,
                   seed=2009)
    results = {
        "config": {
            "quick": args.quick,
            **{k: v for k, v in cfg.items() if k != "cadences"},
            "cadences": [c if c is not None else "off"
                         for c in cfg["cadences"]],
            "fsync": False,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "recovery_scaling": measure_recovery_scaling(cfg),
        "cadence_sweep": measure_cadence_sweep(cfg),
        "wal_overhead": measure_wal_overhead(cfg),
        "site_recovery": measure_site_recovery(cfg),
    }
    print(_render(results))
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
