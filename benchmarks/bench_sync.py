"""Cold-replica catch-up benchmark: run frames vs per-operation replay.

The scenario the wire format v2 exists for: a replica that is far
behind — freshly joined, or back from a long partition — adopts a
quiescent ~1500-line character document. Four ways to pay for it:

1. **v2 run frames** (this PR): the source ships one state frame where
   collapsed/canonical regions are runs (base path + atoms, zero
   per-atom identifiers) that load directly into array leaves on the
   receiver (``Replica.sync``). Measured: bytes on the wire, wall time,
   and an *identifier-identity* check (posids, not just text).
2. **per-op v1 replay**: one framed ``InsertOp`` per atom, decoded and
   applied one by one — what catch-up costs without run frames.
3. **Logoot baseline** (Weiss et al.): state catch-up ships one
   positional identifier + atom per element; counted analytically from
   ``total_id_bits`` (identifiers minted by one bulk insert — the
   baseline's best case).
4. **RGA baseline** (Roh et al.): one (timestamp, site) identifier +
   atom per element, same accounting.

Writes ``BENCH_sync.json`` (checked into the repo root; CI refreshes it
as an artifact) and fails loudly if the synced replica is not
identifier-identical to the source or the byte ratio regresses below
the acceptance floor. Run::

    PYTHONPATH=src python benchmarks/bench_sync.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

#: Acceptance floor: run frames must beat per-op v1 replay on wire
#: bytes by at least this factor on the quiescent document.
MIN_BYTES_RATIO = 5.0


def build_quiescent_source(lines: int, chars_per_line: int):
    """An edited-then-settled character document behind the facade:
    bursts and trims like a real revision history, then flatten + the
    collapse pass — the steady state of a document nobody is editing.
    """
    from repro.core.path import ROOT
    from repro.replica import Replica

    replica = Replica(site=1, mode="sdis")
    doc = replica.doc
    tag = 0
    target = lines * chars_per_line
    while len(doc) < target:
        line = f"line {tag} " + "x" * (chars_per_line - 8 - len(str(tag)))
        tag += 1
        doc.insert_text((len(doc) * 2) // 3, list(line[:chars_per_line]))
        if len(doc) > 400 and tag % 17 == 0:
            doc.delete_range(len(doc) // 2, len(doc) // 2 + 5)
    replica.pending()  # drain the build edits: the source has shipped them
    doc.note_revision()
    doc.flatten_local(ROOT)
    for _ in range(3):
        doc.note_revision()
    doc.collapse_cold(min_age=1, min_atoms=8)
    return replica


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def measure_v2(source, repeats: int) -> dict:
    """State-frame catch-up: bytes, wall time, identifier identity."""
    from repro.replica import Replica

    report = None
    target = None

    def sync():
        nonlocal report, target
        target = Replica(site=9, mode="sdis")
        report = target.sync(source)

    seconds = _best_of(repeats, sync)
    if target.doc.posids() != source.doc.posids():
        raise SystemExit("FAIL: synced replica is not identifier-identical")
    if target.doc.atoms() != source.doc.atoms():
        raise SystemExit("FAIL: synced replica content differs")
    return {
        "wire_bytes": report.wire_bytes,
        "seconds": seconds,
        "run_segments": report.run_segments,
        "op_segments": report.op_segments,
        "loaded_leaves": target.doc.array_leaf_count,
        "atoms": report.atoms,
    }


def measure_v1(source, repeats: int) -> dict:
    """Per-op replay: every atom as one framed v1 insert, decoded and
    applied individually on a fresh replica."""
    from repro.core.encoding import decode_operation, encode_operation
    from repro.core.ops import InsertOp
    from repro.core.treedoc import Treedoc

    ops = [
        InsertOp(posid, atom, source.site)
        for posid, atom in zip(source.doc.posids(), source.doc.atoms())
    ]
    encoded = [encode_operation(op) for op in ops]
    wire_bytes = sum((bits + 7) // 8 for _, bits in encoded)

    target = None

    def replay():
        nonlocal target
        target = Treedoc(site=9, mode="sdis")
        for data, bits in encoded:
            target.apply(decode_operation(data, bits))

    seconds = _best_of(repeats, replay)
    if target.atoms() != source.doc.atoms():
        raise SystemExit("FAIL: per-op replay content differs")
    return {"wire_bytes": wire_bytes, "seconds": seconds, "ops": len(ops)}


def measure_baseline_bytes(source) -> dict:
    """Logoot/RGA state-catch-up wire bytes, counted analytically:
    one identifier + atom payload per element, identifiers minted by a
    single bulk insert (each baseline's smallest possible ids)."""
    from repro.baselines.logoot import LogootDoc
    from repro.baselines.rga import RGA_ID_BITS, RgaDoc

    atoms = source.doc.atoms()
    atom_bytes = sum(len(str(a).encode("utf-8")) for a in atoms)
    logoot = LogootDoc(site=1)
    logoot.insert_text(0, atoms)
    rga = RgaDoc(site=1)
    rga.insert_text(0, atoms)
    return {
        "logoot_wire_bytes": (logoot.total_id_bits() + 7) // 8 + atom_bytes,
        "rga_wire_bytes": (rga.total_id_bits() + 7) // 8 + atom_bytes,
        "rga_id_bits_per_atom": RGA_ID_BITS,
        "atom_payload_bytes": atom_bytes,
    }


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB"):
        if abs(value) < 1024 or unit == "MiB":
            return f"{value:,.1f} {unit}" if unit != "B" else f"{value:,.0f} B"
        value /= 1024
    return f"{value:,.1f} MiB"  # pragma: no cover


def _render(results: dict) -> str:
    v2, v1 = results["run_frames"], results["per_op_v1"]
    base = results["baselines"]
    lines = [
        "Cold-replica catch-up (quiescent document, best of N)",
        "",
        f"  document               {v2['atoms']:7,d} atoms "
        f"({results['config']['lines']} lines)",
        f"  v2 run frames          {_fmt_bytes(v2['wire_bytes']):>12s}   "
        f"{v2['seconds'] * 1e3:8,.1f} ms   "
        f"({v2['run_segments']} runs + {v2['op_segments']} ops, "
        f"{v2['loaded_leaves']} leaves loaded)",
        f"  v1 per-op replay       {_fmt_bytes(v1['wire_bytes']):>12s}   "
        f"{v1['seconds'] * 1e3:8,.1f} ms   ({v1['ops']:,d} framed ops)",
        f"  Logoot state ship      "
        f"{_fmt_bytes(base['logoot_wire_bytes']):>12s}   (analytic)",
        f"  RGA state ship         "
        f"{_fmt_bytes(base['rga_wire_bytes']):>12s}   (analytic)",
        "",
        f"  bytes: v1/v2           {results['bytes_ratio_v1']:8.1f}x  "
        f"(acceptance floor {MIN_BYTES_RATIO:.0f}x)",
        f"  bytes: Logoot/v2       {results['bytes_ratio_logoot']:8.1f}x",
        f"  bytes: RGA/v2          {results['bytes_ratio_rga']:8.1f}x",
        f"  time:  v1/v2           {results['time_ratio_v1']:8.1f}x",
        "  synced replica identifier-identical to source: yes (checked)",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizes (seconds, not minutes)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_sync.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)
    if args.quick:
        cfg = dict(lines=300, chars_per_line=40, repeats=2)
    else:
        # The paper's largest LaTeX document: ~1500 lines of text.
        cfg = dict(lines=1500, chars_per_line=40, repeats=3)
    source = build_quiescent_source(cfg["lines"], cfg["chars_per_line"])
    results: dict = {
        "config": {
            "quick": args.quick,
            **cfg,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "run_frames": measure_v2(source, cfg["repeats"]),
        "per_op_v1": measure_v1(source, cfg["repeats"]),
        "baselines": measure_baseline_bytes(source),
    }
    v2_bytes = results["run_frames"]["wire_bytes"]
    results["bytes_ratio_v1"] = results["per_op_v1"]["wire_bytes"] / v2_bytes
    results["bytes_ratio_logoot"] = (
        results["baselines"]["logoot_wire_bytes"] / v2_bytes
    )
    results["bytes_ratio_rga"] = (
        results["baselines"]["rga_wire_bytes"] / v2_bytes
    )
    results["time_ratio_v1"] = (
        results["per_op_v1"]["seconds"] / results["run_frames"]["seconds"]
    )
    print(_render(results))
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    if results["bytes_ratio_v1"] < MIN_BYTES_RATIO:
        print(
            f"FAIL: bytes ratio {results['bytes_ratio_v1']:.2f}x below the "
            f"{MIN_BYTES_RATIO:.0f}x acceptance floor", file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
