"""Benchmark-harness plumbing.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation: the benchmark fixture times the replay (the paper's CPU-cost
claim), and the measured rows are accumulated here and printed as the
paper-style table in the terminal summary, so running::

    pytest benchmarks/ --benchmark-only

produces both timings and the reproduced tables.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List

import pytest

# table name -> (render callable, rows) registered by bench modules.
_REPORTS: "OrderedDict[str, tuple]" = OrderedDict()


def register_report(name: str, render: Callable[[List[object]], str]) -> List[object]:
    """Get (creating) the row sink for a named report."""
    if name not in _REPORTS:
        _REPORTS[name] = (render, [])
    return _REPORTS[name][1]


@pytest.fixture(scope="session")
def report_sink():
    return register_report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for name, (render, rows) in _REPORTS.items():
        if not rows:
            continue
        terminalreporter.write_line("")
        try:
            terminalreporter.write_line(render(rows))
        except Exception as error:  # pragma: no cover - diagnostics only
            terminalreporter.write_line(f"[{name}: render failed: {error}]")
    _REPORTS.clear()
