"""Micro-benchmarks: raw operation costs of the core data type.

Not a paper table, but the numbers behind its CPU-cost remark
(section 5.2: "we know it to be negligible... our simulations run very
quickly") and the knobs DESIGN.md calls out (balancing on/off, UDIS vs
SDIS, flatten) — ablation-style.
"""

from __future__ import annotations

import random

import pytest

from repro.core.path import ROOT
from repro.core.treedoc import Treedoc


def _filled_doc(n: int, mode: str = "udis", balanced: bool = True) -> Treedoc:
    doc = Treedoc(site=1, mode=mode, balanced=balanced)
    doc.insert_run(0, [f"line {i}" for i in range(n)])
    return doc


@pytest.mark.parametrize("balanced", [True, False], ids=["balanced", "naive"])
def bench_sequential_appends(benchmark, balanced):
    def append_500():
        doc = Treedoc(site=1, balanced=balanced)
        for i in range(500):
            doc.insert(i, i)
        return doc

    doc = benchmark(append_500)
    benchmark.extra_info["height"] = doc.tree.height


@pytest.mark.parametrize("mode", ["udis", "sdis"])
def bench_random_edits(benchmark, mode):
    def edit_storm():
        rng = random.Random(7)
        doc = _filled_doc(200, mode=mode)
        for step in range(500):
            if len(doc) > 50 and rng.random() < 0.4:
                doc.delete(rng.randrange(len(doc)))
            else:
                doc.insert(rng.randint(0, len(doc)), step)
        return doc

    doc = benchmark(edit_storm)
    benchmark.extra_info["ids"] = doc.tree.id_length


def bench_remote_replay(benchmark):
    source = Treedoc(site=1)
    rng = random.Random(3)
    ops = []
    for step in range(800):
        if len(source) > 20 and rng.random() < 0.3:
            ops.append(source.delete(rng.randrange(len(source))))
        else:
            ops.append(source.insert(rng.randint(0, len(source)), step))

    def replay():
        replica = Treedoc(site=2)
        replica.apply_all(ops)
        return replica

    replica = benchmark(replay)
    assert replica.atoms() == source.atoms()


def _edit_burst_batches():
    """A burst-shaped edit stream shaped like the paper's revision
    replays (a revision diff carries tens-to-hundreds of atoms): one
    OpBatch per edit burst, ~1600 operations total."""
    source = Treedoc(site=1)
    rng = random.Random(3)
    batches = []
    produced = 0
    while produced < 1600:
        if len(source) > 150 and rng.random() < 0.3:
            start = rng.randrange(len(source) - 50)
            batch = source.delete_range(start, start + 50)
        else:
            index = rng.randint(0, len(source))
            batch = source.insert_text(
                index, [f"{produced}.{k}" for k in range(60)])
        batches.append(batch)
        produced += len(batch)
    return source, batches


@pytest.mark.parametrize("style", ["single-op", "apply-batch"])
def bench_remote_replay_bursts(benchmark, style):
    """The same burst stream replayed two ways: unpacked into single
    ``apply`` calls vs the deferred-index ``apply_batch`` fast path."""
    source, batches = _edit_burst_batches()

    if style == "single-op":
        def replay():
            replica = Treedoc(site=2)
            for batch in batches:
                for op in batch.ops:
                    replica.apply(op)
            return replica
    else:
        def replay():
            replica = Treedoc(site=2)
            for batch in batches:
                replica.apply_batch(batch)
            return replica

    replica = benchmark(replay)
    assert replica.atoms() == source.atoms()


def bench_index_lookup(benchmark):
    doc = _filled_doc(2000)
    rng = random.Random(1)
    indices = [rng.randrange(2000) for _ in range(256)]

    def lookups():
        return [doc.posid_at(i) for i in indices]

    benchmark(lookups)


def bench_flatten_whole_document(benchmark):
    def build_and_flatten():
        doc = _filled_doc(1000, mode="sdis")
        for _ in range(300):
            doc.delete(100)
        doc.note_revision()
        doc.flatten_local(ROOT)
        return doc

    doc = benchmark(build_and_flatten)
    assert doc.tree.id_length == 700


def bench_encode_decode_operations(benchmark):
    from repro.core import encoding

    doc = _filled_doc(300)
    ops = [doc.insert(i, f"payload {i}") for i in range(300, 400)]

    def round_trip():
        total = 0
        for op in ops:
            data, bits = encoding.encode_operation(op)
            encoding.decode_operation(data, bits)
            total += bits
        return total

    benchmark(round_trip)
