"""Table 5: Treedoc vs Logoot total PosID sizes (plus WOOT and RGA as
extended comparison points from the related work)."""

from __future__ import annotations

import pytest

from repro.baselines import LogootDoc, RgaDoc, WootDoc
from repro.experiments import table5
from repro.experiments.common import DEFAULT_SEED, history_for, run_document
from repro.metrics.report import Table
from repro.workloads.corpus import PAPER_DOCUMENTS
from repro.workloads.replay import replay_into


@pytest.mark.parametrize(
    "spec", PAPER_DOCUMENTS, ids=[d.name.replace(" ", "_") for d in PAPER_DOCUMENTS]
)
def bench_table5_document(benchmark, report_sink, spec):
    rows = report_sink("table5", table5.render)

    def replay_both():
        history = history_for(spec, DEFAULT_SEED)
        logoot = LogootDoc(site=1, seed=DEFAULT_SEED)
        replay_into(logoot, history)
        treedoc = run_document(spec, mode="udis", seed=DEFAULT_SEED,
                               with_disk=False)
        return logoot, treedoc

    logoot, treedoc = benchmark.pedantic(replay_both, rounds=1, iterations=1)
    row = table5.Row(spec.name, logoot.total_id_bits(),
                     treedoc.stats.total_posid_bits)
    rows.append(row)
    benchmark.extra_info["ratio"] = round(row.ratio, 2)
    # The paper's headline: Logoot identifiers cost more than Treedoc's.
    assert row.ratio > 1.0


@pytest.mark.parametrize("spec", PAPER_DOCUMENTS[:1],
                         ids=[PAPER_DOCUMENTS[0].name.replace(" ", "_")])
def bench_extended_baseline_comparison(benchmark, report_sink, spec):
    """Beyond the paper: WOOT and RGA metadata on the same workload."""
    rows = report_sink("table5x", _render_extended)

    def replay_all():
        history = history_for(spec, DEFAULT_SEED)
        results = {}
        for name, factory in (
            ("logoot", lambda: LogootDoc(site=1, seed=DEFAULT_SEED)),
            ("woot", lambda: WootDoc(1)),
            ("rga", lambda: RgaDoc(1)),
        ):
            doc = factory()
            replay_into(doc, history)
            results[name] = (doc.total_id_bits(), doc.element_count())
        treedoc = run_document(spec, mode="udis", seed=DEFAULT_SEED,
                               with_disk=False)
        results["treedoc-udis"] = (
            treedoc.stats.total_posid_bits, treedoc.stats.used_ids
        )
        return results

    results = benchmark.pedantic(replay_all, rounds=1, iterations=1)
    for name, (bits, elements) in results.items():
        rows.append((spec.name, name, bits, elements))


def _render_extended(rows) -> str:
    table = Table(
        "Extended comparison: identifier bits and stored elements",
        ("Document", "CRDT", "total id bits", "stored elements"),
    )
    for row in rows:
        table.add_row(*row)
    return table.render()
