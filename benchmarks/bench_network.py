"""Networked catch-up benchmark: replay vs anti-entropy, measured on the wire.

Since the bytes-first redesign, every replication message is an encoded
frame on the :class:`SimulatedNetwork`, so catch-up cost is **read from
the network's byte counters**, not estimated. Two ways a replica that
missed an edit-heavy history can catch up:

1. **replay** — the laggard was partitioned away while the others
   edited; on heal, every held envelope (one per edit batch) is
   delivered and replayed. The wire pays for the whole history,
   including content that was later deleted.
2. **anti-entropy** — the laggard *joined late* (the history predates
   it; no envelopes exist for it). Hearing one post-join envelope it
   cannot causally deliver, the :class:`AntiEntropyPolicy` fires a
   ``SyncRequest`` and the origin ships one ``SyncResponse`` state
   frame: the final document only, quiescent regions as runs.

A third scenario repeats the anti-entropy exchange under loss +
duplication + **corruption** (bit flips): every damaged frame must be
rejected by the CRC and retransmitted, and the cluster must still
converge — the fault-tolerance story measured end to end.

Writes ``BENCH_network.json`` (checked into the repo root; CI refreshes
it as an artifact) and fails loudly if the anti-entropy path does not
beat replay on wire bytes by the acceptance floor, or if any scenario
fails to converge identifier-identically. Run::

    PYTHONPATH=src python benchmarks/bench_network.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path

#: Acceptance floor: anti-entropy catch-up must beat replay catch-up on
#: wire bytes to the laggard by at least this factor on the edit-heavy
#: history.
MIN_BYTES_RATIO = 1.5

#: Fire on any persistent gap immediately: benchmark scenarios settle
#: between phases, so little simulated time elapses.
def _eager_policy():
    from repro.replication.sync import AntiEntropyPolicy

    return AntiEntropyPolicy(max_buffered=1, max_gap_age=0.0,
                             min_request_interval=0.0)


def _drive_history(cluster, cfg, rng) -> None:
    """An edit-heavy two-site history: bootstrap, then churn (bursts
    and trims) — the kind of history whose replay cost far exceeds its
    final state."""
    cluster.bootstrap(list("seed line of shared text. "))
    for edit in range(cfg["edits"]):
        site = cluster[1 + edit % 2]
        if len(site) > 60 and rng.random() < 0.35:
            start = rng.randrange(len(site) - 20)
            site.delete_range(start, start + rng.randint(4, 16))
        else:
            text = f"edit {edit} " + "x" * rng.randint(4, 24)
            site.insert_text(rng.randint(0, len(site)), list(text))
        if edit % 40 == 39:
            cluster.settle()
    cluster.settle()


def _settle_storage(cluster) -> None:
    """Flatten (commitment) + collapse so the responder's document is
    canonical and run-dense — the steady state of a settled document."""
    from repro.core.path import ROOT

    coordinator = cluster[1].initiate_flatten(ROOT)
    cluster.settle()
    from repro.replication.commit import CommitDecision

    if coordinator.decision is not CommitDecision.COMMITTED:
        raise SystemExit("FAIL: benchmark flatten did not commit")
    for _ in range(2):
        for site in cluster:
            site.note_revision()
    for site in cluster:
        site.collapse_cold(min_age=1, min_atoms=8)
    cluster.settle()


def measure_replay(cfg) -> dict:
    """Partitioned laggard catches up by replaying the held history."""
    from repro.replication.cluster import Cluster

    cluster = Cluster(3, mode="sdis", seed=cfg["seed"],
                      policy=_eager_policy())
    laggard = 3
    cluster.partition({1, 2}, {laggard})
    _drive_history(cluster, cfg, random.Random(cfg["seed"]))
    bytes_before = cluster.network.link_bytes_to(laggard)
    delivered_before = cluster.network.delivered_messages
    sim_before = cluster.network.now
    started = time.perf_counter()
    cluster.heal()
    cluster.settle()
    wall = time.perf_counter() - started
    cluster.assert_converged()
    return {
        "wire_bytes_to_laggard": cluster.network.link_bytes_to(laggard)
        - bytes_before,
        "messages_to_laggard": (
            cluster.network.delivered_messages - delivered_before
        ),
        "catch_up_sim_ms": cluster.network.now - sim_before,
        "wall_seconds": wall,
        "atoms": len(cluster[laggard]),
    }


def measure_anti_entropy(cfg, config=None, label_faults=False) -> dict:
    """Late joiner catches up by the networked SyncRequest/SyncResponse
    exchange (plus the one nudge envelope that reveals the gap)."""
    from repro.replication.cluster import Cluster

    cluster = Cluster(2, mode="sdis", seed=cfg["seed"], config=config,
                      policy=_eager_policy())
    _drive_history(cluster, cfg, random.Random(cfg["seed"]))
    _settle_storage(cluster)
    joiner = cluster.add_site()
    bytes_before = cluster.network.link_bytes_to(joiner.site)
    sim_before = cluster.network.now
    started = time.perf_counter()
    cluster[1].insert_text(0, list(">> "))  # the gap-revealing nudge
    requests = cluster.anti_entropy()
    wall = time.perf_counter() - started
    cluster.assert_converged()
    if joiner.doc.posids() != cluster[1].doc.posids():
        raise SystemExit("FAIL: joiner is not identifier-identical")
    if joiner.sync_responses_applied < 1:
        raise SystemExit("FAIL: catch-up did not use the sync exchange")
    result = {
        "wire_bytes_to_joiner": cluster.network.link_bytes_to(joiner.site)
        - bytes_before,
        "sync_requests": requests,
        "catch_up_sim_ms": cluster.network.now - sim_before,
        "wall_seconds": wall,
        "atoms": len(joiner),
        "loaded_leaves": joiner.array_leaf_count,
    }
    if label_faults:
        network = cluster.network
        result.update({
            "corrupted_transmissions": network.corrupted_transmissions,
            "decode_rejections": network.decode_rejections,
            "dropped_transmissions": network.dropped_transmissions,
        })
        if network.decode_rejections != network.corrupted_transmissions:
            raise SystemExit(
                "FAIL: a corrupted frame slipped past the decoder"
            )
    return result


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB"):
        if abs(value) < 1024 or unit == "MiB":
            return f"{value:,.1f} {unit}" if unit != "B" else f"{value:,.0f} B"
        value /= 1024
    return f"{value:,.1f} MiB"  # pragma: no cover


def _render(results: dict) -> str:
    replay = results["replay"]
    sync = results["anti_entropy"]
    faulty = results["anti_entropy_under_faults"]
    lines = [
        "Networked catch-up (edit-heavy history; bytes read from the "
        "network's counters)",
        "",
        f"  history                {results['config']['edits']:,d} edit "
        f"batches -> {sync['atoms']:,d} atoms",
        f"  replay catch-up        "
        f"{_fmt_bytes(replay['wire_bytes_to_laggard']):>12s}   "
        f"{replay['messages_to_laggard']:,d} messages, "
        f"{replay['catch_up_sim_ms']:,.0f} sim-ms",
        f"  anti-entropy catch-up  "
        f"{_fmt_bytes(sync['wire_bytes_to_joiner']):>12s}   "
        f"{sync['sync_requests']} request(s), "
        f"{sync['loaded_leaves']} leaves loaded, "
        f"{sync['catch_up_sim_ms']:,.0f} sim-ms",
        f"  under faults           "
        f"{_fmt_bytes(faulty['wire_bytes_to_joiner']):>12s}   "
        f"{faulty['corrupted_transmissions']} corrupted, "
        f"{faulty['decode_rejections']} rejected+retried, "
        f"{faulty['dropped_transmissions']} dropped",
        "",
        f"  bytes: replay/anti-entropy {results['bytes_ratio']:8.1f}x  "
        f"(acceptance floor {MIN_BYTES_RATIO:.1f}x)",
        "  joiner identifier-identical to source: yes (checked)",
        "  every corrupted frame rejected by CRC and retried: yes (checked)",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    from repro.replication.network import NetworkConfig

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizes (seconds, not minutes)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_network.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)
    if args.quick:
        cfg = dict(edits=160, seed=2009)
    else:
        cfg = dict(edits=900, seed=2009)
    faults = NetworkConfig(drop_rate=0.15, duplicate_rate=0.05,
                           corruption_rate=0.1, min_latency=1,
                           max_latency=80)
    results: dict = {
        "config": {
            "quick": args.quick,
            **cfg,
            "fault_rates": {
                "drop": faults.drop_rate,
                "duplicate": faults.duplicate_rate,
                "corruption": faults.corruption_rate,
            },
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "replay": measure_replay(cfg),
        "anti_entropy": measure_anti_entropy(cfg),
        "anti_entropy_under_faults": measure_anti_entropy(
            cfg, config=faults, label_faults=True
        ),
    }
    results["bytes_ratio"] = (
        results["replay"]["wire_bytes_to_laggard"]
        / results["anti_entropy"]["wire_bytes_to_joiner"]
    )
    print(_render(results))
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    if results["bytes_ratio"] < MIN_BYTES_RATIO:
        print(
            f"FAIL: bytes ratio {results['bytes_ratio']:.2f}x below the "
            f"{MIN_BYTES_RATIO:.1f}x acceptance floor", file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
