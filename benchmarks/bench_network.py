"""Networked catch-up benchmark: replay vs anti-entropy, measured on the wire.

Since the bytes-first redesign, every replication message is an encoded
frame on the :class:`SimulatedNetwork`, so catch-up cost is **read from
the network's byte counters**, not estimated. Two ways a replica that
missed an edit-heavy history can catch up:

1. **replay** — the laggard was partitioned away while the others
   edited; on heal, every held envelope (one per edit batch) is
   delivered and replayed. The wire pays for the whole history,
   including content that was later deleted.
2. **anti-entropy** — the laggard *joined late* (the history predates
   it; no envelopes exist for it). Hearing one post-join envelope it
   cannot causally deliver, the :class:`AntiEntropyPolicy` fires a
   ``SyncRequest`` and the origin ships one ``SyncResponse`` state
   frame: the final document only, quiescent regions as runs.

A third scenario repeats the anti-entropy exchange under loss +
duplication + **corruption** (bit flips): every damaged frame must be
rejected by the CRC and retransmitted, and the cluster must still
converge — the fault-tolerance story measured end to end.

Two scenarios added with the frontier-diff protocol:

4. **delta vs full** — a requester exactly one origin-event burst
   behind on a settled ~1500-line document asks for sync; the
   responder's ``SyncDelta`` (only the touched regions plus the recent
   delete log) is weighed against the full ``SyncResponse`` snapshot it
   replaces. The delta must win by :data:`MIN_DELTA_RATIO`.
5. **churn scaling** — 10 -> 50 -> 100 sites run a scripted
   churn schedule (partition, join, leave) under 15% drop + 5%
   corruption to convergence with PosID identity; per-site wire bytes
   are read from the network counters and checked against the
   checked-in ``WIRE_BUDGET.json`` ceilings.

Writes ``BENCH_network.json`` (checked into the repo root; CI refreshes
it as an artifact) and fails loudly if the anti-entropy path does not
beat replay on wire bytes by the acceptance floor, if the delta loses
to the full snapshot, if any churn row busts its wire-byte budget, or
if any scenario fails to converge identifier-identically. Run::

    PYTHONPATH=src python benchmarks/bench_network.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path

#: Acceptance floor: anti-entropy catch-up must beat replay catch-up on
#: wire bytes to the laggard by at least this factor on the edit-heavy
#: history.
MIN_BYTES_RATIO = 1.5

#: Acceptance floor: for a requester one origin-event burst behind on
#: the settled long document, the frontier-diff ``SyncDelta`` must be
#: at least this many times smaller than the full snapshot.
MIN_DELTA_RATIO = 5.0

#: Fire on any persistent gap immediately: benchmark scenarios settle
#: between phases, so little simulated time elapses.
def _eager_policy():
    from repro.replication.sync import AntiEntropyPolicy

    return AntiEntropyPolicy(max_buffered=1, max_gap_age=0.0,
                             min_request_interval=0.0)


def _drive_history(cluster, cfg, rng) -> None:
    """An edit-heavy two-site history: bootstrap, then churn (bursts
    and trims) — the kind of history whose replay cost far exceeds its
    final state."""
    cluster.bootstrap(list("seed line of shared text. "))
    for edit in range(cfg["edits"]):
        site = cluster[1 + edit % 2]
        if len(site) > 60 and rng.random() < 0.35:
            start = rng.randrange(len(site) - 20)
            site.delete_range(start, start + rng.randint(4, 16))
        else:
            text = f"edit {edit} " + "x" * rng.randint(4, 24)
            site.insert_text(rng.randint(0, len(site)), list(text))
        if edit % 40 == 39:
            cluster.settle()
    cluster.settle()


def _settle_storage(cluster) -> None:
    """Flatten (commitment) + collapse so the responder's document is
    canonical and run-dense — the steady state of a settled document."""
    from repro.core.path import ROOT

    coordinator = cluster[1].initiate_flatten(ROOT)
    cluster.settle()
    from repro.replication.commit import CommitDecision

    if coordinator.decision is not CommitDecision.COMMITTED:
        raise SystemExit("FAIL: benchmark flatten did not commit")
    for _ in range(2):
        for site in cluster:
            site.note_revision()
    for site in cluster:
        site.collapse_cold(min_age=1, min_atoms=8)
    cluster.settle()


def measure_replay(cfg) -> dict:
    """Partitioned laggard catches up by replaying the held history."""
    from repro.replication.cluster import Cluster

    cluster = Cluster(3, mode="sdis", seed=cfg["seed"],
                      policy=_eager_policy())
    laggard = 3
    cluster.partition({1, 2}, {laggard})
    _drive_history(cluster, cfg, random.Random(cfg["seed"]))
    bytes_before = cluster.network.link_bytes_to(laggard)
    delivered_before = cluster.network.delivered_messages
    sim_before = cluster.network.now
    started = time.perf_counter()
    cluster.heal()
    cluster.settle()
    wall = time.perf_counter() - started
    cluster.assert_converged()
    return {
        "wire_bytes_to_laggard": cluster.network.link_bytes_to(laggard)
        - bytes_before,
        "messages_to_laggard": (
            cluster.network.delivered_messages - delivered_before
        ),
        "catch_up_sim_ms": cluster.network.now - sim_before,
        "wall_seconds": wall,
        "atoms": len(cluster[laggard]),
    }


def measure_anti_entropy(cfg, config=None, label_faults=False) -> dict:
    """Late joiner catches up by the networked SyncRequest/SyncResponse
    exchange (plus the one nudge envelope that reveals the gap)."""
    from repro.replication.cluster import Cluster

    cluster = Cluster(2, mode="sdis", seed=cfg["seed"], config=config,
                      policy=_eager_policy())
    _drive_history(cluster, cfg, random.Random(cfg["seed"]))
    _settle_storage(cluster)
    joiner = cluster.add_site()
    bytes_before = cluster.network.link_bytes_to(joiner.site)
    sim_before = cluster.network.now
    started = time.perf_counter()
    cluster[1].insert_text(0, list(">> "))  # the gap-revealing nudge
    requests = cluster.anti_entropy()
    wall = time.perf_counter() - started
    cluster.assert_converged()
    if joiner.doc.posids() != cluster[1].doc.posids():
        raise SystemExit("FAIL: joiner is not identifier-identical")
    if joiner.sync_responses_applied < 1:
        raise SystemExit("FAIL: catch-up did not use the sync exchange")
    result = {
        "wire_bytes_to_joiner": cluster.network.link_bytes_to(joiner.site)
        - bytes_before,
        "sync_requests": requests,
        "catch_up_sim_ms": cluster.network.now - sim_before,
        "wall_seconds": wall,
        "atoms": len(joiner),
        "loaded_leaves": joiner.array_leaf_count,
    }
    if label_faults:
        network = cluster.network
        result.update({
            "corrupted_transmissions": network.corrupted_transmissions,
            "decode_rejections": network.decode_rejections,
            "dropped_transmissions": network.dropped_transmissions,
        })
        if network.decode_rejections != network.corrupted_transmissions:
            raise SystemExit(
                "FAIL: a corrupted frame slipped past the decoder"
            )
    return result


def measure_delta_vs_full(cfg) -> dict:
    """One-origin-behind requester: frontier-diff delta vs full snapshot.

    The responder builds both frames for the same request clock, so the
    comparison is exact — same document, same moment. The delta is then
    also exchanged for real over the network to confirm it converges
    identifier-identically."""
    from repro.replication.cluster import Cluster

    cluster = Cluster(2, mode="sdis", seed=cfg["seed"],
                      policy=_eager_policy())
    cluster.bootstrap(list("delta-vs-full benchmark document\n"))
    responder, requester = cluster[1], cluster[2]
    for line in range(cfg["lines"]):
        responder.insert_text(len(responder), list(f"ln {line:04d}\n"))
        if line % 50 == 49:
            cluster.settle()
    cluster.settle()
    _settle_storage(cluster)
    base = requester.broadcast.clock.copy()
    # The requester now falls exactly one origin-event burst behind.
    responder.insert_text(0, list("hotfix: one small edit\n"))
    delta = responder.make_sync_delta(base)
    full = responder.make_state_transfer()
    if delta is None:
        raise SystemExit("FAIL: responder refused the frontier diff")
    # Ship it for real: the pending envelope and the sync exchange both
    # travel the simulated wire, and the requester must end identical.
    bytes_before = cluster.network.link_bytes_to(requester.site)
    cluster.settle()
    cluster.assert_converged()
    if requester.doc.posids() != responder.doc.posids():
        raise SystemExit("FAIL: delta receiver is not identifier-identical")
    return {
        "lines": cfg["lines"],
        "atoms": len(responder),
        "delta_wire_bytes": delta.wire_bytes,
        "delta_atoms": delta.atom_count,
        "full_wire_bytes": full.wire_bytes,
        "exchange_wire_bytes": cluster.network.link_bytes_to(requester.site)
        - bytes_before,
    }


def measure_churn_scaling(cfg) -> list:
    """Scripted churn at 10 -> 50 -> 100 sites under drop + corruption:
    per-site wire bytes, read from the network's own counters."""
    from repro.replication.cluster import ChurnEvent, Cluster
    from repro.replication.network import NetworkConfig
    from repro.replication.sync import AntiEntropyPolicy

    faults = NetworkConfig(drop_rate=0.15, corruption_rate=0.05,
                           min_latency=1, max_latency=40)
    policy = AntiEntropyPolicy(max_buffered=4, max_gap_age=150.0,
                               min_request_interval=100.0,
                               jitter=0.5, jitter_seed=7)
    rows = []
    for sites in cfg["cluster_sizes"]:
        cluster = Cluster(sites, mode="sdis", config=faults,
                          seed=cfg["seed"] + sites, policy=policy)
        cluster.bootstrap(list("churn scaling row under faults"))
        ids = cluster.site_ids
        third = max(2, sites // 3)
        schedule = [
            ChurnEvent(1, "partition", groups=(tuple(ids[:third]),)),
            ChurnEvent(2, "join"),
            ChurnEvent(3, "heal"),
            ChurnEvent(4, "leave", site=ids[-1]),
        ]
        started = time.perf_counter()
        report = cluster.run_churn(schedule, steps=cfg["churn_steps"],
                                   edits_per_step=2, pump=200,
                                   seed=cfg["seed"])
        cluster.converge(max_cycles=40)
        wall = time.perf_counter() - started
        atoms = cluster.assert_converged(identities=True)
        per_site = cluster.wire_bytes_per_site()
        total = cluster.network.bytes_delivered
        rows.append({
            "sites": sites,
            "wire_bytes_total": total,
            "wire_bytes_per_site": round(total / len(per_site), 1),
            "sync_deltas_applied": sum(
                s.sync_deltas_applied for s in cluster),
            "sync_responses_applied": sum(
                s.sync_responses_applied for s in cluster),
            "sync_declines_received": sum(
                s.sync_declines_received for s in cluster),
            "edits": report["edits"],
            "atoms": len(atoms),
            "wall_seconds": wall,
        })
    return rows


def _check_wire_budget(results: dict, budget_path: Path, mode: str) -> int:
    """Compare the churn-scaling rows against the checked-in ceilings.

    Returns the number of violations (0 = within budget). A missing
    budget file or mode section is a hard failure — the budget is part
    of the acceptance surface, not an optional extra."""
    if not budget_path.exists():
        print(f"FAIL: wire budget file {budget_path} is missing",
              file=sys.stderr)
        return 1
    budget = json.loads(budget_path.read_text())
    ceilings = budget.get("churn_bytes_per_site", {}).get(mode, {})
    violations = 0
    for row in results["churn_scaling"]:
        ceiling = ceilings.get(str(row["sites"]))
        if ceiling is None:
            print(f"FAIL: no {mode} wire budget for "
                  f"{row['sites']}-site churn", file=sys.stderr)
            violations += 1
        elif row["wire_bytes_per_site"] > ceiling:
            print(f"FAIL: {row['sites']}-site churn used "
                  f"{row['wire_bytes_per_site']:,.0f} bytes/site, over the "
                  f"{ceiling:,.0f} budget", file=sys.stderr)
            violations += 1
    return violations


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB"):
        if abs(value) < 1024 or unit == "MiB":
            return f"{value:,.1f} {unit}" if unit != "B" else f"{value:,.0f} B"
        value /= 1024
    return f"{value:,.1f} MiB"  # pragma: no cover


def _render(results: dict) -> str:
    replay = results["replay"]
    sync = results["anti_entropy"]
    faulty = results["anti_entropy_under_faults"]
    lines = [
        "Networked catch-up (edit-heavy history; bytes read from the "
        "network's counters)",
        "",
        f"  history                {results['config']['edits']:,d} edit "
        f"batches -> {sync['atoms']:,d} atoms",
        f"  replay catch-up        "
        f"{_fmt_bytes(replay['wire_bytes_to_laggard']):>12s}   "
        f"{replay['messages_to_laggard']:,d} messages, "
        f"{replay['catch_up_sim_ms']:,.0f} sim-ms",
        f"  anti-entropy catch-up  "
        f"{_fmt_bytes(sync['wire_bytes_to_joiner']):>12s}   "
        f"{sync['sync_requests']} request(s), "
        f"{sync['loaded_leaves']} leaves loaded, "
        f"{sync['catch_up_sim_ms']:,.0f} sim-ms",
        f"  under faults           "
        f"{_fmt_bytes(faulty['wire_bytes_to_joiner']):>12s}   "
        f"{faulty['corrupted_transmissions']} corrupted, "
        f"{faulty['decode_rejections']} rejected+retried, "
        f"{faulty['dropped_transmissions']} dropped",
        "",
        f"  bytes: replay/anti-entropy {results['bytes_ratio']:8.1f}x  "
        f"(acceptance floor {MIN_BYTES_RATIO:.1f}x)",
        "  joiner identifier-identical to source: yes (checked)",
        "  every corrupted frame rejected by CRC and retried: yes (checked)",
    ]
    delta = results["delta_vs_full"]
    lines += [
        "",
        f"  delta vs full ({delta['lines']:,d}-line doc, one burst behind)",
        f"    full snapshot        "
        f"{_fmt_bytes(delta['full_wire_bytes']):>12s}   "
        f"{delta['atoms']:,d} atoms",
        f"    frontier-diff delta  "
        f"{_fmt_bytes(delta['delta_wire_bytes']):>12s}   "
        f"{delta['delta_atoms']:,d} atoms shipped",
        f"    bytes: full/delta    {results['delta_ratio']:8.1f}x  "
        f"(acceptance floor {MIN_DELTA_RATIO:.1f}x)",
        "",
        "  churn scaling (drop 15%, corruption 5%; PosID-identical "
        "convergence checked)",
    ]
    for row in results["churn_scaling"]:
        lines.append(
            f"    {row['sites']:>3d} sites  "
            f"{_fmt_bytes(row['wire_bytes_per_site']):>12s}/site   "
            f"{row['sync_deltas_applied']:,d} deltas, "
            f"{row['sync_responses_applied']:,d} snapshots, "
            f"{row['sync_declines_received']:,d} declines, "
            f"{row['edits']:,d} edits"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    from repro.replication.network import NetworkConfig

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizes (seconds, not minutes)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_network.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)
    if args.quick:
        cfg = dict(edits=160, seed=2009, lines=1500,
                   cluster_sizes=(10, 50, 100), churn_steps=6)
    else:
        cfg = dict(edits=900, seed=2009, lines=1500,
                   cluster_sizes=(10, 50, 100), churn_steps=12)
    faults = NetworkConfig(drop_rate=0.15, duplicate_rate=0.05,
                           corruption_rate=0.1, min_latency=1,
                           max_latency=80)
    results: dict = {
        "config": {
            "quick": args.quick,
            **cfg,
            "fault_rates": {
                "drop": faults.drop_rate,
                "duplicate": faults.duplicate_rate,
                "corruption": faults.corruption_rate,
            },
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "replay": measure_replay(cfg),
        "anti_entropy": measure_anti_entropy(cfg),
        "anti_entropy_under_faults": measure_anti_entropy(
            cfg, config=faults, label_faults=True
        ),
        "delta_vs_full": measure_delta_vs_full(cfg),
        "churn_scaling": measure_churn_scaling(cfg),
    }
    results["bytes_ratio"] = (
        results["replay"]["wire_bytes_to_laggard"]
        / results["anti_entropy"]["wire_bytes_to_joiner"]
    )
    results["delta_ratio"] = (
        results["delta_vs_full"]["full_wire_bytes"]
        / results["delta_vs_full"]["delta_wire_bytes"]
    )
    print(_render(results))
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    status = 0
    if results["bytes_ratio"] < MIN_BYTES_RATIO:
        print(
            f"FAIL: bytes ratio {results['bytes_ratio']:.2f}x below the "
            f"{MIN_BYTES_RATIO:.1f}x acceptance floor", file=sys.stderr,
        )
        status = 1
    if results["delta_ratio"] < MIN_DELTA_RATIO:
        print(
            f"FAIL: delta ratio {results['delta_ratio']:.2f}x below the "
            f"{MIN_DELTA_RATIO:.1f}x acceptance floor", file=sys.stderr,
        )
        status = 1
    budget_path = args.out.parent / "WIRE_BUDGET.json"
    mode = "quick" if args.quick else "full"
    if _check_wire_budget(results, budget_path, mode):
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
