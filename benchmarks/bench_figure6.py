"""Figure 6: node counts over the lifetime of acf.tex."""

from __future__ import annotations

from repro.experiments import figure6
from repro.experiments.common import DEFAULT_SEED


def bench_figure6_lifetime(benchmark, report_sink):
    rows = report_sink("figure6", lambda samples: figure6.render(samples))

    samples = benchmark.pedantic(
        lambda: figure6.run(seed=DEFAULT_SEED, flatten_every=2),
        rounds=1, iterations=1,
    )
    rows.extend(samples)
    totals = [s.total_nodes for s in samples]
    # The paper's shape: the curve climbs and flatten events appear as
    # drastic drops of the total node count.
    assert max(totals) > totals[1]
    drops = sum(1 for a, b in zip(totals, totals[1:]) if b < a)
    assert drops >= 3
    benchmark.extra_info["peak_nodes"] = max(totals)
    benchmark.extra_info["flatten_drops"] = drops
