"""Batch-vs-single remote replay: the apply_batch fast-path win.

The paper's evaluation replays whole CVS/SVN revisions — hundreds of
atoms each — so remote replay cost is dominated by per-operation
dispatch and index maintenance. These benchmarks measure the same op
stream applied one operation at a time (``apply``) and as one
:class:`repro.core.ops.OpBatch` (``apply_batch``), and print a
throughput comparison table in the terminal summary::

    pytest benchmarks/bench_batch.py --benchmark-only
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.ops import OpBatch
from repro.core.treedoc import Treedoc
from repro.replica import Replica

#: The acceptance scenario: one 500-atom insert run.
RUN_ATOMS = 500


def _insert_run_batch(mode: str = "udis") -> OpBatch:
    source = Treedoc(site=1, mode=mode)
    return source.insert_text(0, [f"atom {i}" for i in range(RUN_ATOMS)])


def _revision_batches(mode: str = "udis", revisions: int = 20):
    """A revision-style stream: paste a run, trim a range, repeat."""
    rng = random.Random(11)
    source = Treedoc(site=1, mode=mode)
    batches = []
    for revision in range(revisions):
        index = rng.randint(0, len(source))
        batches.append(source.insert_text(
            index, [f"r{revision}.{k}" for k in range(40)]))
        if len(source) > 60:
            start = rng.randrange(len(source) - 25)
            batches.append(source.delete_range(start, start + 20))
    return batches


def _render_batch_report(rows) -> str:
    lines = [
        "Batch replay throughput (same op stream, two application styles)",
        f"{'scenario':28s} {'ops':>6s} {'single ops/s':>13s} "
        f"{'batched ops/s':>14s} {'speedup':>8s}",
    ]
    for name, ops, single_rate, batch_rate in rows:
        lines.append(
            f"{name:28s} {ops:6d} {single_rate:13.0f} "
            f"{batch_rate:14.0f} {batch_rate / single_rate:7.2f}x"
        )
    return "\n".join(lines)


def _measure_rates(batches, mode: str, repeats: int = 5):
    """Best-of-N wall-clock rates for single vs batched application."""
    total_ops = sum(len(b) for b in batches)
    single_best = batch_best = float("inf")
    for _ in range(repeats):
        replica = Treedoc(site=2, mode=mode)
        started = time.perf_counter()
        for batch in batches:
            for op in batch.ops:
                replica.apply(op)
        single_best = min(single_best, time.perf_counter() - started)
        replica = Treedoc(site=2, mode=mode)
        started = time.perf_counter()
        for batch in batches:
            replica.apply_batch(batch)
        batch_best = min(batch_best, time.perf_counter() - started)
    return total_ops, total_ops / single_best, total_ops / batch_best


@pytest.mark.parametrize("mode", ["udis", "sdis"])
def bench_insert_run_single_ops(benchmark, mode):
    batch = _insert_run_batch(mode)

    def replay():
        replica = Treedoc(site=2, mode=mode)
        for op in batch.ops:
            replica.apply(op)
        return replica

    replica = benchmark(replay)
    assert len(replica) == RUN_ATOMS


@pytest.mark.parametrize("mode", ["udis", "sdis"])
def bench_insert_run_apply_batch(benchmark, mode):
    batch = _insert_run_batch(mode)

    def replay():
        replica = Treedoc(site=2, mode=mode)
        replica.apply_batch(batch)
        return replica

    replica = benchmark(replay)
    assert len(replica) == RUN_ATOMS


def bench_revision_stream_single_ops(benchmark):
    batches = _revision_batches()

    def replay():
        replica = Treedoc(site=2)
        for batch in batches:
            for op in batch.ops:
                replica.apply(op)
        return replica

    benchmark(replay)


def bench_revision_stream_apply_batch(benchmark):
    batches = _revision_batches()

    def replay():
        replica = Treedoc(site=2)
        for batch in batches:
            replica.apply_batch(batch)
        return replica

    benchmark(replay)


def bench_replica_facade_merge(benchmark):
    source = Replica(site=1)
    source.edit(0, 0, [f"atom {i}" for i in range(RUN_ATOMS)])
    batches = source.pending()

    def replay():
        replica = Replica(site=2)
        replica.merge(batches)
        return replica

    replica = benchmark(replay)
    assert len(replica) == RUN_ATOMS


def bench_batch_throughput_table(report_sink):
    """Not a timing fixture: measures both styles and registers the
    comparison table for the terminal summary (and CHANGES.md)."""
    rows = report_sink("batch-replay", _render_batch_report)
    for mode in ("udis", "sdis"):
        ops, single_rate, batch_rate = _measure_rates(
            [_insert_run_batch(mode)], mode)
        rows.append((f"500-atom run ({mode})", ops, single_rate, batch_rate))
    ops, single_rate, batch_rate = _measure_rates(_revision_batches(), "udis")
    rows.append(("revision stream (udis)", ops, single_rate, batch_rate))
    assert all(row[3] > 0 for row in rows)
