"""Mixed-storage benchmark: resident bytes and reads on quiescent docs.

Measures what the live tree/array storage (section 4.2, DESIGN.md
section 7) is for: the steady-state cost of a document that is mostly
*not* being edited.

1. **Live-tree resident bytes** — the real in-memory size of the tree
   structure (every node, parent tuple, cache list and leaf — atom
   payloads excluded, since both forms share them), measured by a
   generic gc-reachability walk that runs unchanged on any source tree.
   The same driver runs in a subprocess against the current ``src/``
   and, with ``--baseline-src``, against a pre-PR checkout — the honest
   before/after the acceptance bar asks for.
2. **Quiescent snapshot reads** — ``atoms()``/``text()`` throughput on
   the collapsed document (leaves contribute slices, not per-slot
   appends).
3. **Mixed-form mechanics** (current tree only) — the collapse pass,
   explode-on-touch latency, and the leaf census.

Writes ``BENCH_storage.json`` (checked into the repo root; CI refreshes
it as an artifact) and prints a units-labelled summary. Run::

    PYTHONPATH=src python benchmarks/bench_storage.py [--quick]
        [--baseline-src PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional

#: Self-contained measurement driver run in a subprocess against an
#: arbitrary source tree (PYTHONPATH selects the version). It only uses
#: APIs that exist both before and after this PR — the collapse pass is
#: feature-detected, which on a pre-PR tree simply measures the pure
#: tree form.
_DRIVER = r"""
import gc, json, sys, time
from repro.core.path import ROOT
from repro.core.treedoc import Treedoc

cfg = json.loads(sys.argv[1])

def best_of(repeats, run):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best

def build_quiescent(lines):
    # Edit structure (bursts + trims), then flatten and go cold: the
    # paper's steady state for a ~1500-line LaTeX document.
    doc = Treedoc(site=1, mode="sdis")
    chunk, tag = 50, 0
    while len(doc) < lines:
        run = ["line %d.%d %s" % (tag, k, "x" * 24)
               for k in range(min(chunk, lines - len(doc)))]
        tag += 1
        doc.insert_text(len(doc) * 2 // 3, run)
        if len(doc) > 120 and tag % 4 == 0:
            doc.delete_range(len(doc) // 2, len(doc) // 2 + 10)
    doc.note_revision()
    doc.flatten_local(ROOT)
    for _ in range(3):
        doc.note_revision()
    return doc

def resident_bytes(root_obj, exclude_ids):
    seen = set()
    total = 0
    stack = [root_obj]
    while stack:
        obj = stack.pop()
        key = id(obj)
        if key in seen or key in exclude_ids:
            continue
        seen.add(key)
        if obj is None or isinstance(obj, type):
            continue
        total += sys.getsizeof(obj)
        stack.extend(gc.get_referents(obj))
    return total

doc = build_quiescent(cfg["lines"])
collapsed = 0
if hasattr(doc, "collapse_cold"):
    collapsed = len(doc.collapse_cold(min_age=1, min_atoms=cfg["min_atoms"]))
doc.atoms(); doc.text()  # steady state: read caches built on both forms

def reads():
    for _ in range(cfg["reads"]):
        doc.atoms()
        doc.text()

snapshot_seconds = best_of(cfg["repeats"], reads)
atom_ids = set(map(id, doc.atoms()))
print(json.dumps({
    "atoms": len(doc),
    "collapsed_regions": collapsed,
    "resident_bytes": resident_bytes(doc.tree, atom_ids),
    "snapshot_seconds": snapshot_seconds,
}))
"""


def _run_driver(src: Path, cfg: dict) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src)
    output = subprocess.run(
        [sys.executable, "-c", _DRIVER, json.dumps(cfg)],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(output.stdout)


def measure_mechanics(lines: int, repeats: int) -> dict:
    """Collapse/explode mechanics on the current tree (in-process)."""
    from repro.core.path import ROOT
    from repro.core.treedoc import Treedoc

    def build():
        doc = Treedoc(site=1, mode="sdis")
        doc.insert_text(0, [f"line {i}" for i in range(lines)])
        doc.note_revision()
        doc.flatten_local(ROOT)
        for _ in range(3):
            doc.note_revision()
        return doc

    collapse_seconds = explode_seconds = float("inf")
    leaves = resident_nodes = 0
    for _ in range(repeats):
        doc = build()
        started = time.perf_counter()
        doc.collapse_cold(min_age=1, min_atoms=8)
        collapse_seconds = min(
            collapse_seconds, time.perf_counter() - started
        )
        leaves = doc.array_leaf_count
        resident_nodes = sum(1 for _ in doc.tree.root.iter_nodes())
        started = time.perf_counter()
        for leaf in doc.tree.array_leaves():
            leaf.explode()
        explode_seconds = min(explode_seconds, time.perf_counter() - started)
    return {
        "collapse_seconds": collapse_seconds,
        "explode_seconds": explode_seconds,
        "array_leaves": leaves,
        "resident_nodes": resident_nodes,
    }


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB"):
        if abs(value) < 1024 or unit == "MiB":
            return f"{value:,.1f} {unit}" if unit != "B" else f"{value:,.0f} B"
        value /= 1024
    return f"{value:,.1f} MiB"  # pragma: no cover


def _fmt_ns(seconds: float) -> str:
    nanos = seconds * 1e9
    for unit, scale in (("ns", 1), ("µs", 1e3), ("ms", 1e6), ("s", 1e9)):
        if nanos < 1000 * scale or unit == "s":
            return f"{nanos / scale:,.1f} {unit}"
    return f"{seconds:.3f} s"  # pragma: no cover


def _render(results: dict) -> str:
    current = results["current"]
    lines = [
        "Mixed-storage benchmark (quiescent document, best of N)",
        "",
        f"  document              {current['atoms']:6d} atoms",
        f"  collapsed regions     {current['collapsed_regions']:6d}",
        f"  resident tree bytes   {_fmt_bytes(current['resident_bytes']):>12s}",
        f"  snapshot read pass    {_fmt_ns(current['snapshot_seconds']):>12s}"
        f"  ({results['config']['reads']} atoms()+text() reads)",
    ]
    baseline = results.get("pre_pr")
    if baseline:
        lines += [
            "",
            "vs. pre-PR main (same driver, both source trees):",
            f"  resident tree bytes   "
            f"{_fmt_bytes(baseline['resident_bytes']):>12s} -> "
            f"{_fmt_bytes(current['resident_bytes']):>12s}   "
            f"{results['resident_bytes_reduction']:.1f}x smaller",
            f"  snapshot read pass    "
            f"{_fmt_ns(baseline['snapshot_seconds']):>12s} -> "
            f"{_fmt_ns(current['snapshot_seconds']):>12s}   "
            f"{results['snapshot_speedup']:.2f}x",
        ]
    mechanics = results.get("mechanics")
    if mechanics:
        lines += [
            "",
            "mixed-form mechanics (current tree):",
            f"  collapse pass         "
            f"{_fmt_ns(mechanics['collapse_seconds']):>12s}"
            f"  ({mechanics['array_leaves']} leaves, "
            f"{mechanics['resident_nodes']} resident nodes)",
            f"  explode all regions   "
            f"{_fmt_ns(mechanics['explode_seconds']):>12s}",
        ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizes (seconds, not minutes)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_storage.json",
                        help="where to write the JSON report")
    parser.add_argument("--baseline-src", type=Path, default=None,
                        help="path to a pre-PR checkout's src/ directory; "
                        "adds the before/after resident-bytes comparison")
    args = parser.parse_args(argv)
    if args.quick:
        cfg = dict(lines=300, min_atoms=8, reads=20, repeats=2)
    else:
        # The paper's largest LaTeX document is ~1500 line atoms — the
        # scale the acceptance bar names.
        cfg = dict(lines=1500, min_atoms=8, reads=40, repeats=3)
    current_src = Path(__file__).resolve().parent.parent / "src"
    results: dict = {
        "config": {
            "quick": args.quick,
            **cfg,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "current": _run_driver(current_src, cfg),
        "mechanics": measure_mechanics(cfg["lines"], cfg["repeats"]),
    }
    if args.baseline_src is not None:
        baseline = _run_driver(args.baseline_src, cfg)
        results["pre_pr"] = baseline
        results["baseline_src"] = str(args.baseline_src)
        results["resident_bytes_reduction"] = (
            baseline["resident_bytes"] / results["current"]["resident_bytes"]
        )
        results["snapshot_speedup"] = (
            baseline["snapshot_seconds"]
            / results["current"]["snapshot_seconds"]
        )
    print(_render(results))
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
