"""Compare Treedoc against Logoot, WOOT and RGA on one workload.

Run with::

    python examples/baseline_comparison.py

Replays the same synthetic edit history (Grey Owl, the smallest wiki
corpus) into four sequence CRDTs and reports the metadata each one pays:
total identifier bits over the visible document, and elements kept
(tombstones included). This generalizes the paper's Table 5 comparison
to the related-work designs of section 6.
"""

from repro.baselines import LogootDoc, RgaDoc, TreedocAdapter, WootDoc
from repro.workloads import document_spec, generate_history, replay_into


def main() -> None:
    spec = document_spec("Grey Owl")
    history = generate_history(spec, seed=2009)
    print(history.summary())
    print()

    contenders = [
        ("Treedoc (UDIS)", lambda: TreedocAdapter(1, mode="udis")),
        ("Treedoc (SDIS)", lambda: TreedocAdapter(1, mode="sdis")),
        ("Logoot", lambda: LogootDoc(1, seed=2009)),
        ("WOOT", lambda: WootDoc(1)),
        ("RGA", lambda: RgaDoc(1)),
    ]

    results = []
    for name, factory in contenders:
        doc = factory()
        outcome = replay_into(doc, history)
        results.append((
            name,
            doc.total_id_bits(),
            doc.element_count(),
            outcome.elapsed_seconds,
        ))

    treedoc_bits = results[0][1]
    header = (f"{'CRDT':16s} {'id bits':>9s} {'vs Treedoc':>11s} "
              f"{'elements':>9s} {'secs':>6s}")
    print(header)
    print("-" * len(header))
    for name, bits, elements, seconds in results:
        ratio = bits / treedoc_bits if treedoc_bits else float("nan")
        print(f"{name:16s} {bits:9d} {ratio:10.2f}x {elements:9d} "
              f"{seconds:6.2f}")
    print()
    print(f"(final document: {len(history.final)} atoms; elements above "
          "that are tombstones/bookkeeping the design retains)")


if __name__ == "__main__":
    main()
