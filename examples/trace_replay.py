"""Replay an edit history and measure Treedoc's overheads.

Run with::

    python examples/trace_replay.py [document-name]

This is the paper's evaluation workflow (section 5): build the initial
document, then for each revision diff against the previous version and
execute the equivalent inserts and deletes, optionally flattening cold
regions every k revisions. Afterwards, measure what Table 1 measures.
"""

import sys

from repro import Treedoc
from repro.metrics import measure_tree
from repro.workloads import document_spec, generate_history, replay_history


def replay_and_report(name: str) -> None:
    spec = document_spec(name)
    history = generate_history(spec, seed=2009)
    print(history.summary())
    print()
    header = (
        f"{'config':24s} {'nodes':>6s} {'tomb%':>6s} {'avg id':>7s} "
        f"{'max id':>7s} {'mem x':>6s} {'disk B':>7s} {'secs':>6s}"
    )
    print(header)
    print("-" * len(header))
    for label, mode, cadence in (
        ("SDIS, no flatten", "sdis", None),
        ("SDIS, flatten every 2", "sdis", 2),
        ("UDIS, no flatten", "udis", None),
    ):
        doc = Treedoc(site=1, mode=mode)
        result = replay_history(doc, history, flatten_every=cadence)
        stats = measure_tree(doc.tree)
        print(
            f"{label:24s} {stats.nodes:6d} "
            f"{100 * stats.tombstone_fraction:6.1f} "
            f"{stats.avg_posid_bits:7.1f} {stats.max_posid_bits:7d} "
            f"{stats.memory_overhead_ratio:6.2f} "
            f"{stats.disk_overhead_bytes:7d} "
            f"{result.elapsed_seconds:6.2f}"
        )
    print()
    print("Reading the rows:")
    print(" - tombstones dominate SDIS without flattening;")
    print(" - flattening collapses nodes, identifiers and disk bytes;")
    print(" - UDIS discards deleted atoms immediately (no tombstones).")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "acf.tex"
    replay_and_report(name)


if __name__ == "__main__":
    main()
