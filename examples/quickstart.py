"""Quickstart: two replicas editing concurrently, converging.

Run with::

    python examples/quickstart.py

A Treedoc is a replicated sequence: each replica edits locally with
zero latency, ships the returned operations, and replays the other's
operations — in any causal order — to converge on the same document.
"""

from repro import Treedoc


def main() -> None:
    # Two users open the same (empty) shared document.
    alice = Treedoc(site=1)
    bob = Treedoc(site=2)

    # Alice types a sentence; the ops travel to Bob.
    ops = [alice.insert(i, word) for i, word in
           enumerate(["the", "quick", "fox"])]
    bob.apply_all(ops)
    print("synced:        ", " ".join(str(a) for a in bob.atoms()))

    # Now both edit *concurrently* — neither waits for the other.
    op_alice = alice.insert(2, "brown")            # the quick brown fox
    op_bob = bob.delete(1)                         # the fox
    ops_bob2 = bob.insert(1, "sly")                # the sly fox

    # Operations cross on the wire and replay on the other side.
    alice.apply(op_bob)
    alice.apply(ops_bob2)
    bob.apply(op_alice)

    print("alice sees:    ", " ".join(str(a) for a in alice.atoms()))
    print("bob sees:      ", " ".join(str(a) for a in bob.atoms()))
    assert alice.atoms() == bob.atoms(), "CRDT replicas must converge"
    print("converged:      True")

    # Under the hood every atom has a dense, ordered position identifier.
    for index, posid in enumerate(alice.posids()):
        print(f"  atom {index}: {alice.atom_at(index)!r:10s} PosID {posid!r}")


if __name__ == "__main__":
    main()
