"""Quickstart: two replicas editing concurrently, converging.

Run with::

    python examples/quickstart.py

A :class:`repro.Replica` is one copy of a replicated sequence. Each
replica edits locally with zero latency; every local edit mints one
:class:`repro.OpBatch` (an ordered, digest-stamped group of operations).
Ship the pending batches to the other replicas, merge theirs, and all
copies converge — in any causal order, with no locks and no operational
transformation.
"""

from repro import Replica


def main() -> None:
    # Two users open the same (empty) shared document.
    alice = Replica(site=1)
    bob = Replica(site=2)

    # Alice types a sentence: ONE batch, not one op per keystroke.
    batch = alice.edit(0, 0, "the quick fox")
    print(f"alice's edit ships as {batch!r}")
    bob.merge(alice.pending())
    print("synced:        ", bob.text())

    # Now both edit *concurrently* — neither waits for the other.
    alice.edit(10, 10, "brown ")      # the quick brown fox
    bob.edit(4, 9, "sly")             # the sly fox (replace = one batch)
    # (they converge on "the sly brown fox": bob's replace of "quick"
    # and alice's insert before "fox" compose without coordination)

    # Outboxes cross on the wire and merge on the other side.
    batches_alice, batches_bob = alice.pending(), bob.pending()
    alice.merge(batches_bob)
    bob.merge(batches_alice)

    print("alice sees:    ", alice.text())
    print("bob sees:      ", bob.text())
    assert alice.snapshot() == bob.snapshot(), "CRDT replicas must converge"
    print("converged:      True  (snapshot digest "
          f"{alice.snapshot().digest[:12]}…)")

    # The full Treedoc machinery stays reachable for the curious: every
    # atom owns a dense, ordered position identifier.
    for index, posid in enumerate(alice.doc.posids()):
        print(f"  atom {index}: {alice.doc.atom_at(index)!r:4s} PosID {posid!r}")


if __name__ == "__main__":
    main()
