"""Cooperative editing at scale: a four-site session over a bad network.

Run with::

    python examples/collaborative_editing.py

This is the paper's motivating scenario (section 1): users at several
sites independently update a shared text; operations propagate and are
replayed; replicas converge without concurrency control. The network
here loses 20% of transmissions, duplicates 10%, reorders freely, and
suffers a partition in the middle of the session — and a distributed
``flatten`` garbage-collects the accumulated tombstones at the end,
through the two-phase commitment protocol of section 4.2.1.
"""

import random

from repro.core.path import ROOT
from repro.replication import Cluster, NetworkConfig
from repro.replication.commit import CommitDecision


def main() -> None:
    network = NetworkConfig(drop_rate=0.2, duplicate_rate=0.1,
                            min_latency=5, max_latency=120)
    cluster = Cluster(4, mode="sdis", config=network, seed=2009)
    rng = random.Random(2009)

    print("bootstrapping a shared document at site 1 …")
    cluster.bootstrap("a shared document edited by four sites".split())

    print("concurrent editing (every site, no coordination) …")
    for round_number in range(12):
        for site in cluster:
            for _ in range(rng.randint(0, 2)):
                if len(site) > 4 and rng.random() < 0.4:
                    site.delete(rng.randrange(len(site)))
                else:
                    site.insert(rng.randint(0, len(site)),
                                f"w{site.site}.{round_number}")

    print("… a partition splits sites {1,2} from {3,4} …")
    cluster.partition({1, 2}, {3, 4})
    cluster[1].insert(0, "[left]")
    cluster[3].insert(0, "[right]")
    cluster.settle()
    print("  left  partition head:", cluster[1].atoms()[0])
    print("  right partition head:", cluster[3].atoms()[0])
    assert cluster[1].atoms() != cluster[3].atoms()

    print("… the partition heals; everything converges:")
    cluster.heal()
    cluster.settle()
    content = cluster.assert_converged()
    print(f"  all 4 sites agree on {len(content)} words")

    ids = cluster[1].doc.tree.id_length
    print(f"tombstones before flatten: {ids - len(content)}")
    coordinator = cluster[2].initiate_flatten(ROOT)
    cluster.settle()
    print(f"flatten decision: {coordinator.decision.value}")
    assert coordinator.decision is CommitDecision.COMMITTED
    cluster.assert_converged()
    ids = cluster[1].doc.tree.id_length
    print(f"tombstones after flatten:  {ids - len(content)}")

    print("post-flatten edits still converge:")
    cluster[4].insert(0, "[done]")
    cluster.settle()
    print("  " + " ".join(str(a) for a in cluster.assert_converged()[:8]), "…")
    print(f"network stats: {cluster.network.sent_messages} sent, "
          f"{cluster.network.dropped_transmissions} lost+retried, "
          f"{cluster.network.duplicated_messages} duplicated")


if __name__ == "__main__":
    main()
