"""Pair programming: the editor layer over Treedoc.

Run with::

    python examples/pair_programming.py

Two developers edit one source file simultaneously. Cursors are
anchored to Treedoc identifiers, so each user's cursor stays glued to
"their" code while the other edits above it — no operational
transformation, no lock, no lost work (the paper's conclusion names a
text-editor integration as the intended application).
"""

from repro.editor import SharedDocument
from repro.replication.network import NetworkConfig


def show(label: str, text: str) -> None:
    print(f"--- {label} " + "-" * (40 - len(label)))
    for number, line in enumerate(text.split("\n")):
        print(f"{number:3d} | {line}")


def main() -> None:
    session = SharedDocument(
        2, seed=7, config=NetworkConfig(min_latency=5, max_latency=60)
    )
    alice, bob = session[1], session[2]

    alice.type(0, "def greet(name):\n    return 'hi ' + name\n")
    session.sync()
    show("shared file", session.assert_converged())

    # Bob starts fixing the return line; his cursor pins to it.
    bob_cursor = bob.cursor(bob.text().index("return"), "bob")
    print(f"\nbob's cursor at offset {bob_cursor.offset} (the 'return')")

    # Meanwhile Alice inserts a docstring ABOVE Bob's edit point...
    alice.type(
        alice.text().index("    return"),
        '    """Say hello politely."""\n',
    )
    # ...and Bob types at his cursor concurrently.
    bob.type_at(bob_cursor, "greeting = 'hello'\n    ")

    session.sync()
    text = session.assert_converged()
    show("after concurrent edits", text)
    print(f"\nbob's cursor followed its line to offset {bob_cursor.offset}")
    assert "greeting = 'hello'" in text
    assert '"""Say hello politely."""' in text

    # A quick refactor: Bob renames the function; Alice appends a call.
    start = text.index("greet")
    bob.replace(start, start + len("greet"), "welcome")
    alice.type(len(alice.text()), "\nprint(welcome('world'))\n")
    session.sync()
    show("final", session.assert_converged())


if __name__ == "__main__":
    main()
