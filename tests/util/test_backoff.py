"""repro.util.backoff: the single backoff/jitter implementation.

Satellite regression: the schedule extracted from
``AntiEntropyPolicy`` must be *equivalent* to the formula the policy
shipped with (``min(max, base * factor**(n-1))``), and the policy must
actually delegate to it — one implementation, reused by both the
anti-entropy layer and the daemon's reconnect loop.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replication.sync import AntiEntropyPolicy
from repro.util.backoff import BackoffPolicy, jittered
from repro.util.rng import derive_rng


def legacy_backoff(policy: AntiEntropyPolicy, failures: int) -> float:
    """The pre-extraction formula, verbatim (the regression oracle)."""
    if failures <= 0:
        return 0.0
    return min(policy.backoff_max,
               policy.backoff_base * policy.backoff_factor ** (failures - 1))


class TestSchedule:
    def test_zero_failures_is_immediate(self):
        assert BackoffPolicy().delay(0) == 0.0
        assert BackoffPolicy().delay(-3) == 0.0

    def test_geometric_growth_until_cap(self):
        policy = BackoffPolicy(base=100.0, factor=2.0, maximum=900.0)
        assert policy.delays(6) == [100.0, 200.0, 400.0, 800.0,
                                    900.0, 900.0]

    def test_first_delay_is_base(self):
        assert BackoffPolicy(base=50.0).delay(1) == 50.0

    @settings(max_examples=200, deadline=None)
    @given(
        base=st.floats(1.0, 10_000.0),
        factor=st.floats(1.0, 8.0),
        cap=st.floats(1.0, 100_000.0),
        failures=st.integers(0, 40),
    )
    def test_equivalent_to_legacy_anti_entropy_formula(
        self, base, factor, cap, failures
    ):
        # The extraction regression: BackoffPolicy IS the old inline
        # AntiEntropyPolicy formula, for any parameters and any count.
        policy = AntiEntropyPolicy(backoff_base=base, backoff_factor=factor,
                                   backoff_max=cap)
        expected = legacy_backoff(policy, failures)
        assert BackoffPolicy(base, factor, cap).delay(failures) == expected
        assert policy.backoff(failures) == expected

    def test_policy_delegates_to_shared_implementation(self):
        policy = AntiEntropyPolicy(backoff_base=10.0, backoff_factor=3.0,
                                   backoff_max=50.0)
        assert policy.backoff_policy == BackoffPolicy(10.0, 3.0, 50.0)
        assert policy.backoff(3) == policy.backoff_policy.delay(3)


class TestJitter:
    def test_stretch_only_never_shrinks(self):
        rng = derive_rng(7, "jitter-test")
        for _ in range(200):
            value = jittered(100.0, 0.5, rng)
            assert 100.0 <= value <= 150.0

    def test_disabled_jitter_passes_through(self):
        class Exploding(random.Random):
            def random(self):  # pragma: no cover - must not be called
                raise AssertionError("jitter drew from the rng")

        assert jittered(100.0, 0.0, Exploding()) == 100.0
        assert jittered(0.0, 0.5, Exploding()) == 0.0
        assert jittered(-5.0, 0.5, Exploding()) == -5.0

    def test_deterministic_from_seed(self):
        a = [jittered(100.0, 0.5, derive_rng(3, "x")) for _ in range(1)]
        b = [jittered(100.0, 0.5, derive_rng(3, "x")) for _ in range(1)]
        assert a == b

    def test_site_jitter_matches_shared_rule(self):
        # The site's _jittered is the shared rule over its seeded
        # per-site stream: same seed, same draws, same stretches.
        from repro.replication.cluster import Cluster

        cluster = Cluster(2, policy=AntiEntropyPolicy(jitter=0.5,
                                                      jitter_seed=11))
        site = cluster[1]
        oracle = derive_rng(11, "sync-jitter", 1)
        expected = [jittered(200.0, 0.5, oracle) for _ in range(5)]
        assert [site._jittered(200.0) for _ in range(5)] == expected


class TestExports:
    def test_util_package_exports(self):
        import repro.util as util

        assert util.BackoffPolicy is BackoffPolicy
        assert util.jittered is jittered
