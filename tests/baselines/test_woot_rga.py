"""WOOT- and RGA-specific behaviour."""

import random

import pytest

from repro.baselines.rga import RgaDoc, RgaInsert
from repro.baselines.woot import WootDoc, WootInsert
from repro.errors import ReproError


class TestWoot:
    def test_tombstones_accumulate_forever(self):
        # "The data structure grows indefinitely, because there is no
        # garbage collection or restructuring."
        doc = WootDoc(1)
        for i in range(20):
            doc.insert(i, i)
        for _ in range(20):
            doc.delete(0)
        assert doc.atoms() == []
        assert doc.element_count() == 20
        assert doc.tombstone_count() == 20

    def test_intention_preserved_between_neighbours(self):
        a, b = WootDoc(1), WootDoc(2)
        base = [a.insert(i, c) for i, c in enumerate("ad")]
        for op in base:
            b.apply(op)
        # concurrent inserts in the same gap
        op_a = a.insert(1, "b")
        op_b = b.insert(1, "c")
        a.apply(op_b)
        b.apply(op_a)
        assert a.atoms() == b.atoms()
        text = a.text()
        assert text[0] == "a" and text[-1] == "d"
        assert set(text[1:3]) == {"b", "c"}

    def test_insert_requires_known_neighbours(self):
        doc = WootDoc(1)
        orphan = WootInsert((9, 1), "x", (9, 0), (9, 2), 9)
        with pytest.raises(ReproError):
            doc.apply(orphan)

    def test_delete_of_unknown_char_rejected(self):
        doc = WootDoc(1)
        from repro.baselines.woot import WootDelete

        with pytest.raises(ReproError):
            doc.apply(WootDelete((9, 1), 9))

    def test_three_way_concurrent_inserts_converge(self):
        docs = [WootDoc(s) for s in (1, 2, 3)]
        base = [docs[0].insert(i, c) for i, c in enumerate("xz")]
        for doc in docs[1:]:
            for op in base:
                doc.apply(op)
        ops = [doc.insert(1, f"m{doc.site}") for doc in docs]
        for doc in docs:
            for op in ops:
                if op.origin != doc.site:
                    doc.apply(op)
        assert docs[0].atoms() == docs[1].atoms() == docs[2].atoms()


class TestRga:
    def test_tombstones_remain(self):
        doc = RgaDoc(1)
        for i in range(10):
            doc.insert(i, i)
        doc.delete(5)
        assert doc.element_count() == 10
        assert doc.tombstone_count() == 1

    def test_concurrent_inserts_after_same_anchor(self):
        a, b = RgaDoc(1), RgaDoc(2)
        base = [a.insert(i, c) for i, c in enumerate("xz")]
        for op in base:
            b.apply(op)
        op_a = a.insert(1, "A")
        op_b = b.insert(1, "B")
        a.apply(op_b)
        b.apply(op_a)
        assert a.atoms() == b.atoms()

    def test_lamport_clock_observes_remote_timestamps(self):
        a, b = RgaDoc(1), RgaDoc(2)
        op = a.insert(0, "x")
        b.apply(op)
        # b's next insert must carry a timestamp above a's.
        op_b = b.insert(1, "y")
        assert op_b.rid[0] > op.rid[0]

    def test_unknown_anchor_rejected(self):
        doc = RgaDoc(1)
        with pytest.raises(ReproError):
            doc.apply(RgaInsert((5, 9), "x", (1, 9), 9))

    def test_insert_after_deleted_anchor_still_works(self):
        # Tombstones keep anchoring: a remote insert may reference an
        # element that was deleted concurrently.
        a, b = RgaDoc(1), RgaDoc(2)
        ops = [a.insert(i, c) for i, c in enumerate("abc")]
        for op in ops:
            b.apply(op)
        op_ins = a.insert(2, "X")       # anchored after "b"
        op_del = b.delete(1)            # deletes "b" concurrently
        a.apply(op_del)
        b.apply(op_ins)
        assert a.atoms() == b.atoms() == ["a", "X", "c"]
