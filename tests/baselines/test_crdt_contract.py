"""One contract suite over every sequence CRDT (Treedoc + baselines).

Each implementation must behave like a replicated list: local edits have
list semantics, remote replay in causal order converges, deletes are
idempotent against duplicates of themselves.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import LogootDoc, RgaDoc, TreedocAdapter, WootDoc
from tests.conftest import exchange_rounds

FACTORIES = {
    "treedoc-udis": lambda site: TreedocAdapter(site, mode="udis"),
    "treedoc-sdis": lambda site: TreedocAdapter(site, mode="sdis"),
    "logoot": lambda site: LogootDoc(site, seed=7),
    "woot": WootDoc,
    "rga": RgaDoc,
}


@pytest.fixture(params=sorted(FACTORIES))
def factory(request):
    return FACTORIES[request.param]


class TestListSemantics:
    def test_insert_delete_matches_list_oracle(self, factory):
        doc = factory(1)
        rng = random.Random(5)
        model = []
        for step in range(300):
            if model and rng.random() < 0.35:
                index = rng.randrange(len(model))
                doc.delete(index)
                model.pop(index)
            else:
                index = rng.randint(0, len(model))
                doc.insert(index, f"a{step}")
                model.insert(index, f"a{step}")
            assert doc.atoms() == model, step

    def test_text_join(self, factory):
        doc = factory(1)
        for i, c in enumerate("abc"):
            doc.insert(i, c)
        assert doc.text() == "abc"
        assert len(doc) == 3

    def test_out_of_range_rejected(self, factory):
        doc = factory(1)
        with pytest.raises(IndexError):
            doc.insert(1, "x")
        with pytest.raises(IndexError):
            doc.delete(0)

    def test_insert_run_semantics(self, factory):
        doc = factory(1)
        doc.insert_run(0, list("ad"))
        doc.insert_run(1, list("bc"))
        assert doc.text() == "abcd"


class TestReplication:
    def test_causal_replay_reproduces_source(self, factory):
        source = factory(1)
        ops = []
        rng = random.Random(11)
        for step in range(120):
            if len(source) and rng.random() < 0.3:
                ops.append(source.delete(rng.randrange(len(source))))
            else:
                ops.append(source.insert(rng.randint(0, len(source)), step))
        replica = factory(2)
        for op in ops:
            replica.apply(op)
        assert replica.atoms() == source.atoms()

    def test_two_site_concurrent_convergence(self, factory):
        rng = random.Random(23)
        a, b = factory(1), factory(2)
        exchange_rounds(a, b, rng, rounds=25)

    def test_duplicate_insert_delivery_tolerated(self, factory):
        source = factory(1)
        op = source.insert(0, "x")
        replica = factory(2)
        replica.apply(op)
        replica.apply(op)
        assert replica.atoms() == ["x"]


class TestConvergenceProperty:
    @pytest.mark.parametrize("name", sorted(FACTORIES))
    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=12, deadline=None)
    def test_random_schedules(self, name, seed):
        rng = random.Random(seed)
        make = FACTORIES[name]
        a, b = make(1), make(2)
        exchange_rounds(a, b, rng, rounds=8)


class TestOverheadHooks:
    def test_id_bits_and_element_counts_reported(self, factory):
        doc = factory(1)
        for i in range(10):
            doc.insert(i, i)
        assert doc.total_id_bits() > 0
        assert doc.element_count() >= 10
        doc.delete(0)
        assert doc.element_count() >= 9
