"""One contract suite over every sequence CRDT (Treedoc + baselines).

Each implementation must behave like a replicated list: local edits have
list semantics, remote replay in causal order converges, deletes are
idempotent against duplicates of themselves. The batch contract rides on
top: ``insert_text`` / ``delete_range`` return one
:class:`repro.core.ops.OpBatch` per local edit, ``apply_batch`` replays
one, and batch-apply must be indistinguishable from sequential apply —
including under interleaved concurrent batches from several sites.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import LogootDoc, RgaDoc, TreedocAdapter, WootDoc
from repro.core.ops import OpBatch
from tests.conftest import exchange_rounds

FACTORIES = {
    "treedoc-udis": lambda site: TreedocAdapter(site, mode="udis"),
    "treedoc-sdis": lambda site: TreedocAdapter(site, mode="sdis"),
    "logoot": lambda site: LogootDoc(site, seed=7),
    "woot": WootDoc,
    "rga": RgaDoc,
}


@pytest.fixture(params=sorted(FACTORIES))
def factory(request):
    return FACTORIES[request.param]


class TestListSemantics:
    def test_insert_delete_matches_list_oracle(self, factory):
        doc = factory(1)
        rng = random.Random(5)
        model = []
        for step in range(300):
            if model and rng.random() < 0.35:
                index = rng.randrange(len(model))
                doc.delete(index)
                model.pop(index)
            else:
                index = rng.randint(0, len(model))
                doc.insert(index, f"a{step}")
                model.insert(index, f"a{step}")
            assert doc.atoms() == model, step

    def test_text_join(self, factory):
        doc = factory(1)
        for i, c in enumerate("abc"):
            doc.insert(i, c)
        assert doc.text() == "abc"
        assert len(doc) == 3

    def test_out_of_range_rejected(self, factory):
        doc = factory(1)
        with pytest.raises(IndexError):
            doc.insert(1, "x")
        with pytest.raises(IndexError):
            doc.delete(0)

    def test_insert_run_semantics(self, factory):
        doc = factory(1)
        doc.insert_run(0, list("ad"))
        doc.insert_run(1, list("bc"))
        assert doc.text() == "abcd"


class TestReplication:
    def test_causal_replay_reproduces_source(self, factory):
        source = factory(1)
        ops = []
        rng = random.Random(11)
        for step in range(120):
            if len(source) and rng.random() < 0.3:
                ops.append(source.delete(rng.randrange(len(source))))
            else:
                ops.append(source.insert(rng.randint(0, len(source)), step))
        replica = factory(2)
        for op in ops:
            replica.apply(op)
        assert replica.atoms() == source.atoms()

    def test_two_site_concurrent_convergence(self, factory):
        rng = random.Random(23)
        a, b = factory(1), factory(2)
        exchange_rounds(a, b, rng, rounds=25)

    def test_duplicate_insert_delivery_tolerated(self, factory):
        source = factory(1)
        op = source.insert(0, "x")
        replica = factory(2)
        replica.apply(op)
        replica.apply(op)
        assert replica.atoms() == ["x"]


class TestConvergenceProperty:
    @pytest.mark.parametrize("name", sorted(FACTORIES))
    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=12, deadline=None)
    def test_random_schedules(self, name, seed):
        rng = random.Random(seed)
        make = FACTORIES[name]
        a, b = make(1), make(2)
        exchange_rounds(a, b, rng, rounds=8)


def _random_batch(doc, rng, tag):
    """One random local batch edit; returns the OpBatch to ship."""
    length = len(doc)
    if length > 4 and rng.random() < 0.4:
        start = rng.randrange(length - 2)
        return doc.delete_range(start, start + rng.randint(1, 2))
    index = rng.randint(0, length)
    atoms = [f"{tag}.{k}" for k in range(rng.randint(1, 4))]
    return doc.insert_text(index, atoms)


class TestBatchContract:
    def test_insert_text_returns_one_batch(self, factory):
        doc = factory(1)
        batch = doc.insert_text(0, list("abc"))
        assert isinstance(batch, OpBatch)
        assert len(batch) == 3
        assert batch.origin == 1
        assert batch.verify()
        assert doc.atoms() == list("abc")

    def test_delete_range_returns_one_batch(self, factory):
        doc = factory(1)
        doc.insert_text(0, list("abcdef"))
        batch = doc.delete_range(1, 4)
        assert isinstance(batch, OpBatch)
        assert len(batch) == 3
        assert doc.atoms() == list("aef")

    def test_batch_bounds_checked(self, factory):
        doc = factory(1)
        doc.insert_text(0, list("abc"))
        with pytest.raises(IndexError):
            doc.insert_text(5, ["x"])
        with pytest.raises(IndexError):
            doc.delete_range(1, 7)

    def test_insert_run_matches_single_inserts(self, factory):
        """Regression for the quadratic one-by-one default: the batch
        path must produce the same visible sequence as single inserts,
        and its operations must replay to the same state remotely."""
        run_doc, single_doc = factory(1), factory(1)
        run_doc.insert_run(0, list("hello world"))
        for offset, atom in enumerate("hello world"):
            single_doc.insert(offset, atom)
        assert run_doc.atoms() == single_doc.atoms()
        # A mid-document run, replayed on a replica.
        ops = run_doc.insert_run(5, list("XYZ"))
        for offset, atom in enumerate("XYZ"):
            single_doc.insert(5 + offset, atom)
        assert run_doc.atoms() == single_doc.atoms()
        source, mirror = factory(1), factory(2)
        mirror.apply_batch(source.insert_text(0, list("abcd")))
        mirror.apply_batch(source.insert_text(2, list("123")))
        mirror.apply_batch(source.insert_text(0, []))  # empty batch ok
        assert mirror.atoms() == source.atoms()

    def test_apply_batch_equals_sequential_apply(self, factory):
        rng = random.Random(31)
        source = factory(1)
        fast, slow = factory(2), factory(3)
        for step in range(30):
            batch = _random_batch(source, rng, f"s{step}")
            fast.apply_batch(batch)
            for op in batch.ops:
                slow.apply(op)
            assert fast.atoms() == slow.atoms() == source.atoms(), step

    def test_concurrent_batches_converge(self, factory):
        """Two sites edit in batches concurrently; each applies the
        other's batches (one with apply_batch, one op-by-op) and both
        must converge every round."""
        rng = random.Random(47)
        a, b = factory(1), factory(2)
        for round_number in range(15):
            batches_a = [_random_batch(a, rng, f"a{round_number}.{i}")
                         for i in range(rng.randint(0, 2))]
            batches_b = [_random_batch(b, rng, f"b{round_number}.{i}")
                         for i in range(rng.randint(0, 2))]
            for batch in batches_b:
                a.apply_batch(batch)
            for batch in batches_a:
                for op in batch.ops:
                    b.apply(op)
            assert a.atoms() == b.atoms(), f"diverged in round {round_number}"

    def test_batch_seq_ranges_are_monotonic(self, factory):
        doc = factory(1)
        first = doc.insert_text(0, list("ab"))
        second = doc.insert_text(0, list("cd"))
        third = doc.delete_range(0, 1)
        assert first.seq_end <= second.seq_start
        assert second.seq_end <= third.seq_start


class TestBatchConvergenceProperty:
    @pytest.mark.parametrize("name", sorted(FACTORIES))
    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_interleaved_concurrent_batches(self, name, seed):
        """Hypothesis property: batch-apply ≡ sequential-apply under
        interleaved concurrent batches, across all implementations —
        with local storage maintenance (``maintain``: a no-op for the
        baselines, cold-region collapse for Treedoc) interleaved on one
        side only, which must never be observable."""
        rng = random.Random(seed)
        make = FACTORIES[name]
        a, b = make(1), make(2)
        for round_number in range(6):
            batches_a = [_random_batch(a, rng, f"a{round_number}.{i}")
                         for i in range(rng.randint(0, 3))]
            batches_b = [_random_batch(b, rng, f"b{round_number}.{i}")
                         for i in range(rng.randint(0, 3))]
            # a replays b's work batch-wise; b replays a's op-wise: the
            # two application styles must stay indistinguishable.
            for batch in batches_b:
                a.apply_batch(batch)
            for batch in batches_a:
                for op in batch.ops:
                    b.apply(op)
            if rng.random() < 0.5:
                a.maintain()
            assert a.atoms() == b.atoms(), f"diverged in round {round_number}"


class TestOverheadHooks:
    def test_id_bits_and_element_counts_reported(self, factory):
        doc = factory(1)
        for i in range(10):
            doc.insert(i, i)
        assert doc.total_id_bits() > 0
        assert doc.element_count() >= 10
        doc.delete(0)
        assert doc.element_count() >= 9
