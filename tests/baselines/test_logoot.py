"""Logoot-specific behaviour (section 5.3 comparator)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.logoot import (
    BASE,
    COMPONENT_BITS,
    LogootDoc,
    identifier_bits,
)
from repro.errors import ReproError


class TestIdentifierGeneration:
    def test_identifiers_sorted_and_unique(self):
        doc = LogootDoc(1, seed=3)
        rng = random.Random(3)
        for step in range(400):
            doc.insert(rng.randint(0, len(doc)), step)
        ids = doc.identifiers()
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_between_neighbours_strictly(self):
        doc = LogootDoc(1, seed=1)
        doc.insert(0, "a")
        doc.insert(1, "z")
        for _ in range(60):
            doc.insert(1, "m")  # hammer the same gap
        ids = doc.identifiers()
        assert ids == sorted(ids)

    def test_digits_stay_in_base(self):
        doc = LogootDoc(1, seed=2)
        rng = random.Random(2)
        for step in range(200):
            doc.insert(rng.randint(0, len(doc)), step)
        for ident in doc.identifiers():
            assert all(0 <= component[0] < BASE for component in ident)

    def test_hammering_one_gap_grows_layers(self):
        # Repeated insertion into the same gap must eventually extend
        # identifiers with additional layers ("otherwise it extends the
        # identifier of the left position with an additional layer").
        doc = LogootDoc(1, boundary=4, seed=1)
        doc.insert(0, "a")
        doc.insert(1, "z")
        for _ in range(100):
            doc.insert(1, "m")
        assert doc.max_id_bits() > COMPONENT_BITS

    def test_appends_stay_shallow(self):
        doc = LogootDoc(1, seed=1)
        for i in range(100):
            doc.insert(i, i)
        # Sequential appends should rarely need many layers.
        assert doc.avg_id_bits() < 3 * COMPONENT_BITS


class TestDeletes:
    def test_delete_removes_immediately(self):
        # Logoot keeps no tombstones.
        doc = LogootDoc(1, seed=1)
        for i in range(10):
            doc.insert(i, i)
        doc.delete(4)
        assert doc.element_count() == 9
        assert len(doc.atoms()) == 9

    def test_remote_delete_idempotent(self):
        source = LogootDoc(1, seed=1)
        source.insert(0, "x")
        op = source.delete(0)
        replica = LogootDoc(2, seed=1)
        replica.apply(op)  # delete of something never seen: no-op
        assert replica.atoms() == []


class TestConcurrentTies:
    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_same_gap_concurrent_inserts_converge(self, seed):
        rng = random.Random(seed)
        a, b = LogootDoc(1, seed=seed), LogootDoc(2, seed=seed)
        base_ops = [a.insert(i, c) for i, c in enumerate("xy")]
        for op in base_ops:
            b.apply(op)
        ops_a = [a.insert(1, f"a{n}") for n in range(rng.randint(1, 4))]
        ops_b = [b.insert(1, f"b{n}") for n in range(rng.randint(1, 4))]
        for op in ops_b:
            a.apply(op)
        for op in ops_a:
            b.apply(op)
        assert a.atoms() == b.atoms()
        ids = a.identifiers()
        assert ids == sorted(ids) and len(set(ids)) == len(ids)

    def test_insert_into_digit_tied_gap_lands_between(self):
        """Regression: with digit-tied neighbours (concurrent inserts
        that picked the same digit, ordered only by site/clock), the
        fresh identifier must be an *extension* of the left neighbour —
        the old arithmetic could mint a greater digit at the same level
        and silently misplace the atom after the right neighbour."""
        from repro.baselines.logoot import LogootInsert

        doc = LogootDoc(1, seed=7)
        doc.apply(LogootInsert(((24, 1, 5),), "L", 1))
        doc.apply(LogootInsert(((24, 2, 3),), "R", 2))
        doc.insert(1, "M")
        assert doc.atoms() == ["L", "M", "R"]
        # Chained batch inserts into the same tied gap stay in place.
        doc.insert_text(1, ["a", "b", "c"])
        assert doc.atoms() == ["L", "a", "b", "c", "M", "R"]
        ids = doc.identifiers()
        assert ids == sorted(ids)

    def test_identifier_collision_detected(self):
        doc = LogootDoc(1, seed=1)
        op = doc.insert(0, "x")
        from repro.baselines.logoot import LogootInsert

        with pytest.raises(ReproError):
            doc.apply(LogootInsert(op.ident, "different", 2))


class TestSizing:
    def test_component_is_ten_bytes(self):
        assert COMPONENT_BITS == 80

    def test_identifier_bits_linear_in_components(self):
        doc = LogootDoc(1, seed=1)
        doc.insert(0, "a")
        ident = doc.identifiers()[0]
        assert identifier_bits(ident) == len(ident) * 80

    def test_boundary_must_be_positive(self):
        with pytest.raises(ReproError):
            LogootDoc(1, boundary=0)
