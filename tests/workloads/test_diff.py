"""Myers diff and positional edit scripts."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.diff import EditOp, apply_script, edit_script, myers_diff

atom_lists = st.lists(st.integers(0, 6), max_size=40)


class TestMyersDiff:
    @given(atom_lists, atom_lists)
    @settings(max_examples=300)
    def test_script_accounts_for_both_sides(self, a, b):
        ops = myers_diff(a, b)
        kept = [atom for tag, atom in ops if tag == "equal"]
        deleted = [atom for tag, atom in ops if tag == "delete"]
        inserted = [atom for tag, atom in ops if tag == "insert"]
        assert len(kept) + len(deleted) == len(a)
        assert len(kept) + len(inserted) == len(b)
        # Reconstruct both sides from the tagged stream.
        assert [x for t, x in ops if t in ("equal", "delete")] == list(a)
        assert [x for t, x in ops if t in ("equal", "insert")] == list(b)

    def test_identical_sequences(self):
        ops = myers_diff("abc", "abc")
        assert all(tag == "equal" for tag, _ in ops)

    def test_empty_cases(self):
        assert myers_diff([], list("ab")) == [("insert", "a"), ("insert", "b")]
        assert myers_diff(list("ab"), []) == [("delete", "a"), ("delete", "b")]
        assert myers_diff([], []) == []

    def test_minimality_on_known_case(self):
        # Classic example: ABCABBA -> CBABAC needs 5 edit steps.
        ops = myers_diff("ABCABBA", "CBABAC")
        edits = sum(1 for tag, _ in ops if tag != "equal")
        assert edits == 5


class TestEditScript:
    @given(atom_lists, atom_lists)
    @settings(max_examples=300)
    def test_patch_round_trip(self, a, b):
        assert apply_script(a, edit_script(a, b)) == list(b)

    def test_consecutive_inserts_grouped_into_runs(self):
        ops = edit_script(list("ad"), list("abcd"))
        inserts = [op for op in ops if op.kind == "insert"]
        assert len(inserts) == 1
        assert inserts[0].atoms == ("b", "c")

    def test_consecutive_deletes_grouped(self):
        ops = edit_script(list("abcd"), list("ad"))
        deletes = [op for op in ops if op.kind == "delete"]
        assert len(deletes) == 1
        assert deletes[0].count == 2

    def test_modify_is_delete_plus_insert(self):
        # Section 5: modifying an atom is a delete plus an insert.
        ops = edit_script(["x"], ["y"])
        kinds = [op.kind for op in ops]
        assert kinds == ["delete", "insert"]

    def test_bad_kind_rejected(self):
        import pytest
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            EditOp("replace", 0)
