"""Trace replay into Treedoc and into the baselines."""

import pytest

from repro.baselines import LogootDoc, RgaDoc, TreedocAdapter, WootDoc
from repro.core.treedoc import Treedoc
from repro.workloads.corpus import document_spec
from repro.workloads.editing import generate_history
from repro.workloads.replay import replay_history, replay_into
from repro.workloads.revision import History


@pytest.fixture(scope="module")
def small_history() -> History:
    # A trimmed real corpus: acf.tex's first 15 revisions.
    full = generate_history(document_spec("acf.tex"), seed=3)
    trimmed = History(full.name, full.kind, full.revisions[:15])
    return trimmed


class TestTreedocReplay:
    def test_final_state_matches_snapshot(self, small_history):
        doc = Treedoc(site=1, mode="sdis")
        result = replay_history(doc, small_history)
        assert doc.atoms() == list(small_history.final.atoms)
        assert result.revisions == len(small_history) - 1
        assert result.final_atoms == len(small_history.final)
        doc.check()

    def test_replay_verifies_every_revision(self, small_history):
        # replay_history raises if the CRDT state ever diverges from the
        # snapshot, so completing is itself the assertion; verify the
        # counters are plausible.
        doc = Treedoc(site=1, mode="udis")
        result = replay_history(doc, small_history)
        assert result.inserts > result.deletes > 0

    def test_flatten_cadence_runs_and_reduces_ids(self, small_history):
        plain = Treedoc(site=1, mode="sdis")
        replay_history(plain, small_history)
        flattened = Treedoc(site=1, mode="sdis")
        result = replay_history(flattened, small_history, flatten_every=2)
        assert result.flattens > 0
        assert flattened.tree.id_length <= plain.tree.id_length
        assert flattened.atoms() == plain.atoms()

    def test_probe_called_per_revision(self, small_history):
        doc = Treedoc(site=1, mode="sdis")
        seen = []
        replay_history(doc, small_history,
                       probe=lambda rev, d: seen.append(rev))
        assert len(seen) == len(small_history)

    def test_unbalanced_replay(self, small_history):
        doc = Treedoc(site=1, mode="sdis", balanced=False)
        replay_history(doc, small_history, use_runs=False)
        assert doc.atoms() == list(small_history.final.atoms)


class TestBaselineReplay:
    @pytest.mark.parametrize("factory", [
        lambda: LogootDoc(1, seed=1),
        lambda: WootDoc(1),
        lambda: RgaDoc(1),
        lambda: TreedocAdapter(1, mode="udis"),
    ], ids=["logoot", "woot", "rga", "treedoc"])
    def test_all_crdts_replay_identically(self, small_history, factory):
        doc = factory()
        result = replay_into(doc, small_history)
        assert doc.atoms() == list(small_history.final.atoms)
        assert result.final_atoms == len(small_history.final)
