"""Synthetic corpora: published statistics are honoured."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.corpus import (
    LATEX_DOCUMENTS,
    PAPER_DOCUMENTS,
    WIKI_DOCUMENTS,
    document_spec,
)
from repro.workloads.editing import generate_history
from repro.workloads.revision import History


class TestSpecs:
    def test_six_documents_as_in_table_1(self):
        assert len(PAPER_DOCUMENTS) == 6
        assert len(WIKI_DOCUMENTS) == 3 and len(LATEX_DOCUMENTS) == 3

    def test_published_numbers_pinned(self):
        dc = document_spec("Distributed Computing")
        assert (dc.final_atoms, dc.final_bytes, dc.revisions) == (171, 19_686, 870)
        assert dc.initial_atoms == 9  # Table 2, most active
        acf = document_spec("acf.tex")
        assert (acf.final_atoms, acf.final_bytes, acf.revisions) == (332, 14_048, 51)
        assert acf.initial_atoms == 99  # Table 2, less active

    def test_flatten_cadences_follow_table_1(self):
        for spec in WIKI_DOCUMENTS:
            assert spec.flatten_cadences == (1, 2)
        for spec in LATEX_DOCUMENTS:
            assert spec.flatten_cadences == (2, 8)

    def test_unknown_document(self):
        with pytest.raises(WorkloadError):
            document_spec("War and Peace")


class TestGeneratedHistories:
    @pytest.mark.parametrize("name", [d.name for d in PAPER_DOCUMENTS])
    def test_statistics_match_spec(self, name):
        spec = document_spec(name)
        history = generate_history(spec, seed=5)
        assert len(history) == spec.revisions
        assert len(history.initial) == spec.initial_atoms
        assert len(history.final) == spec.final_atoms
        # Byte size within 15% of the published figure.
        deviation = abs(history.final.byte_size - spec.final_bytes)
        assert deviation <= 0.15 * spec.final_bytes

    def test_deterministic_per_seed(self):
        spec = document_spec("Grey Owl")
        a = generate_history(spec, seed=9)
        b = generate_history(spec, seed=9)
        assert [r.atoms for r in a.revisions] == [r.atoms for r in b.revisions]
        c = generate_history(spec, seed=10)
        assert [r.atoms for r in a.revisions] != [r.atoms for r in c.revisions]

    def test_wiki_histories_include_vandalism(self):
        # A vandalism episode shows as a large shrink followed by a
        # restore of similar size.
        spec = document_spec("Distributed Computing")
        history = generate_history(spec, seed=5)
        sizes = [len(r) for r in history.revisions]
        big_drops = sum(
            1 for a, b in zip(sizes, sizes[1:]) if b < a * 0.75 and a > 20
        )
        assert big_drops >= spec.vandalism_episodes // 2

    def test_atoms_unique_within_revision(self):
        spec = document_spec("acf.tex")
        history = generate_history(spec, seed=5)
        for revision in history.revisions:
            assert len(set(revision.atoms)) == len(revision.atoms)

    def test_history_helpers(self):
        history = History("x", "latex")
        with pytest.raises(WorkloadError):
            _ = history.initial
        history.append_snapshot(["a"])
        history.append_snapshot(["a", "b"])
        assert len(list(history.pairs())) == 1
        assert "x" in history.summary()
