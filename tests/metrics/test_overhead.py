"""Overhead measurements (the Table 1 instrumentation)."""

from repro.core.path import ROOT
from repro.core.treedoc import Treedoc
from repro.metrics.overhead import NODE_RECORD_BYTES, measure_tree
from repro.metrics.report import Table


def _doc_with_churn(mode="sdis"):
    doc = Treedoc(site=1, mode=mode)
    for i in range(40):
        doc.insert(i, f"line of text number {i}")
    for _ in range(15):
        doc.delete(3)
    return doc


class TestMeasureTree:
    def test_counts(self):
        doc = _doc_with_churn("sdis")
        stats = measure_tree(doc.tree)
        assert stats.live_atoms == 25
        assert stats.tombstones == 15
        assert stats.used_ids == 40
        assert stats.nodes >= stats.used_ids

    def test_udis_has_fewer_nodes_than_sdis(self):
        sdis = measure_tree(_doc_with_churn("sdis").tree)
        udis = measure_tree(_doc_with_churn("udis").tree)
        assert udis.nodes < sdis.nodes
        assert udis.tombstones == 0

    def test_memory_model_is_26_bytes_per_node(self):
        stats = measure_tree(_doc_with_churn().tree)
        assert NODE_RECORD_BYTES == 26
        assert stats.memory_overhead_bytes == stats.nodes * 26
        assert stats.memory_overhead_ratio > 0

    def test_posid_bits_consistent(self):
        doc = _doc_with_churn()
        stats = measure_tree(doc.tree)
        assert stats.max_posid_bits == max(stats.posid_bits)
        assert abs(
            stats.avg_posid_bits - sum(stats.posid_bits) / len(stats.posid_bits)
        ) < 1e-9
        assert stats.total_posid_bits == sum(stats.posid_bits)

    def test_tombstone_fraction_bounds(self):
        stats = measure_tree(_doc_with_churn().tree)
        assert 0.0 < stats.tombstone_fraction < 1.0
        assert abs(
            stats.tombstone_fraction + stats.non_tombstone_fraction - 1.0
        ) < 1e-9

    def test_flatten_zeroes_the_overheads(self):
        doc = _doc_with_churn()
        before = measure_tree(doc.tree)
        doc.note_revision()
        doc.flatten_local(ROOT)
        after = measure_tree(doc.tree)
        assert after.tombstones == 0
        assert after.nodes < before.nodes
        assert after.avg_posid_bits < before.avg_posid_bits
        assert after.disk_overhead_bytes < before.disk_overhead_bytes

    def test_overhead_per_atom_counts_tombstone_ids(self):
        # SDIS pays for tombstoned identifiers; the per-atom overhead
        # amortizes them over visible atoms (Table 4).
        stats = measure_tree(_doc_with_churn("sdis").tree)
        assert stats.overhead_per_atom_bits > stats.avg_posid_bits

    def test_empty_tree(self):
        stats = measure_tree(Treedoc(site=1).tree)
        assert stats.live_atoms == 0
        assert stats.nodes == 0
        assert stats.avg_posid_bits == 0.0


class TestReportTable:
    def test_render_aligns_columns(self):
        table = Table("T", ("a", "longheader"))
        table.add_row("x", 1.5)
        rendered = table.render()
        assert "T" in rendered and "longheader" in rendered and "1.50" in rendered

    def test_row_width_checked(self):
        import pytest

        table = Table("T", ("a", "b"))
        with pytest.raises(ValueError):
            table.add_row("only-one")
