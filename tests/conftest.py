"""Shared test fixtures and hypothesis strategies."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.core.disambiguator import Sdis, Udis
from repro.core.path import PathElement, PosID

# ---------------------------------------------------------------------------
# Hypothesis strategies for the identifier algebra.
# ---------------------------------------------------------------------------

sites = st.integers(min_value=0, max_value=7)
counters = st.integers(min_value=0, max_value=15)

udis_strategy = st.builds(Udis, counter=counters, site=sites)
sdis_strategy = st.builds(Sdis, site=sites)
dis_strategy = st.one_of(udis_strategy, sdis_strategy)

element_strategy = st.builds(
    PathElement,
    bit=st.integers(min_value=0, max_value=1),
    dis=st.one_of(st.none(), udis_strategy),
)

posid_strategy = st.builds(
    PosID, st.lists(element_strategy, min_size=0, max_size=8)
)


# ---------------------------------------------------------------------------
# Deterministic RNG fixture.
# ---------------------------------------------------------------------------


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; reseed per test for reproducibility."""
    return random.Random(0xC0FFEE)


# ---------------------------------------------------------------------------
# Concurrent-editing helpers shared by convergence tests.
# ---------------------------------------------------------------------------


def random_edit(doc, rng: random.Random, tag: str):
    """One random local edit on a sequence CRDT; returns its op."""
    if len(doc) and rng.random() < 0.35:
        return doc.delete(rng.randrange(len(doc)))
    return doc.insert(rng.randint(0, len(doc)), f"{tag}-{rng.randint(0, 999)}")


def exchange_rounds(doc_a, doc_b, rng: random.Random, rounds: int) -> None:
    """Alternate concurrent edit batches and symmetric exchange."""
    for round_number in range(rounds):
        ops_a = [random_edit(doc_a, rng, f"a{round_number}")
                 for _ in range(rng.randint(0, 3))]
        ops_b = [random_edit(doc_b, rng, f"b{round_number}")
                 for _ in range(rng.randint(0, 3))]
        for op in ops_b:
            doc_a.apply(op)
        for op in ops_a:
            doc_b.apply(op)
        assert doc_a.atoms() == doc_b.atoms(), f"diverged in round {round_number}"
