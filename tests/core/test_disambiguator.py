"""Disambiguator semantics (section 3.3)."""

import pytest

from repro.core.disambiguator import (
    COUNTER_BITS,
    SITE_ID_BITS,
    DisambiguatorFactory,
    Sdis,
    Udis,
)
from repro.errors import EncodingError


class TestUdisOrder:
    def test_counter_dominates(self):
        # (c1, s1) < (c2, s2) iff c1 < c2 ...
        assert Udis(1, 9) < Udis(2, 0)

    def test_site_breaks_counter_ties(self):
        # ... or (c1 = c2 and s1 < s2)
        assert Udis(3, 1) < Udis(3, 2)

    def test_equal(self):
        assert Udis(3, 1) == Udis(3, 1)
        assert not Udis(3, 1) < Udis(3, 1)

    def test_total_on_samples(self):
        values = [Udis(c, s) for c in range(3) for s in range(3)]
        ordered = sorted(values)
        for left, right in zip(ordered, ordered[1:]):
            assert left < right or left == right


class TestSdisOrder:
    def test_site_order(self):
        assert Sdis(1) < Sdis(2)

    def test_equality_is_site_identity(self):
        assert Sdis(5) == Sdis(5)


class TestSizes:
    def test_udis_is_ten_bytes(self):
        # Section 5: 6-byte site id + 4-byte counter.
        assert Udis(0, 0).size_bits == COUNTER_BITS + SITE_ID_BITS == 80

    def test_sdis_is_six_bytes(self):
        assert Sdis(0).size_bits == SITE_ID_BITS == 48

    def test_site_id_range_enforced(self):
        with pytest.raises(EncodingError):
            Sdis(1 << SITE_ID_BITS)
        with pytest.raises(EncodingError):
            Sdis(-1)

    def test_counter_range_enforced(self):
        with pytest.raises(EncodingError):
            Udis(1 << COUNTER_BITS, 0)


class TestFactory:
    def test_udis_mints_unique_increasing(self):
        factory = DisambiguatorFactory(site=4, mode="udis")
        first, second, third = (factory.fresh() for _ in range(3))
        assert first < second < third
        assert len({first, second, third}) == 3

    def test_sdis_mints_site_constant(self):
        factory = DisambiguatorFactory(site=4, mode="sdis")
        assert factory.fresh() == factory.fresh() == Sdis(4)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            DisambiguatorFactory(site=1, mode="mac")
