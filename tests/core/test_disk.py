"""On-disk format (section 5.2): round trips and overhead accounting."""

import random

from repro.core import disk
from repro.core.path import ROOT
from repro.core.treedoc import Treedoc


def _same_document(a, b) -> bool:
    return (
        a.atoms() == b.atoms()
        and [repr(p) for p in a.posids()] == [repr(p) for p in b.posids()]
    )


class TestRoundTrip:
    def test_sequential_document(self):
        doc = Treedoc(site=1, mode="udis")
        for i in range(50):
            doc.insert(i, f"line {i}")
        image = disk.save(doc.tree)
        loaded = disk.load(image)
        assert _same_document(doc.tree, loaded)
        loaded.check_invariants()

    def test_document_with_tombstones(self):
        doc = Treedoc(site=1, mode="sdis")
        for i in range(30):
            doc.insert(i, f"l{i}")
        for _ in range(10):
            doc.delete(3)
        image = disk.save(doc.tree)
        loaded = disk.load(image)
        assert _same_document(doc.tree, loaded)
        assert loaded.id_length == doc.tree.id_length  # tombstones kept

    def test_document_with_mini_siblings(self):
        a, b = Treedoc(site=1, mode="sdis"), Treedoc(site=2, mode="sdis")
        for op in [a.insert(i, c) for i, c in enumerate("abcd")]:
            b.apply(op)
        op_a = a.insert(2, "X")
        op_b = b.insert(2, "Y")
        a.apply(op_b)
        b.apply(op_a)
        image = disk.save(a.tree)
        loaded = disk.load(image)
        assert _same_document(a.tree, loaded)

    def test_mini_children_escape_records(self):
        # Children of mini-nodes cannot live in the heap layout; the
        # escape encoding must carry them.
        a, b = Treedoc(site=1, mode="sdis"), Treedoc(site=2, mode="sdis")
        for op in [a.insert(i, c) for i, c in enumerate("abcd")]:
            b.apply(op)
        op_a = a.insert(2, "X")
        op_b = b.insert(2, "Y")
        a.apply(op_b)
        b.apply(op_a)
        # insert between the two concurrent atoms: child of a mini-node
        middle = min(a.text().index("X"), a.text().index("Y")) + 1
        a.insert(middle, "Z")
        image = disk.save(a.tree)
        loaded = disk.load(image)
        assert _same_document(a.tree, loaded)

    def test_flattened_document_has_tiny_overhead(self):
        doc = Treedoc(site=1, mode="sdis")
        for i in range(100):
            doc.insert(i, f"some line of text {i}")
        for _ in range(30):
            doc.delete(5)
        doc.note_revision()
        before, _ = disk.measure_on_disk(doc.tree)
        doc.flatten_local(ROOT)
        after, document = disk.measure_on_disk(doc.tree)
        assert after < before
        # In the best case a compacted Treedoc approaches the sequential
        # array: structural bytes are a small fraction of the content.
        assert after < document * 0.25

    def test_empty_tree(self):
        doc = Treedoc(site=1)
        image = disk.save(doc.tree)
        loaded = disk.load(image)
        assert loaded.atoms() == []


class TestRandomizedRoundTrip:
    def test_random_histories(self):
        rng = random.Random(99)
        for mode in ("udis", "sdis"):
            doc = Treedoc(site=1, mode=mode)
            for step in range(200):
                if len(doc) and rng.random() < 0.35:
                    doc.delete(rng.randrange(len(doc)))
                else:
                    # The atom file stores text (atoms decode as str).
                    doc.insert(rng.randint(0, len(doc)), f"atom-{step}")
            image = disk.save(doc.tree)
            loaded = disk.load(image)
            assert _same_document(doc.tree, loaded), mode
            loaded.check_invariants()
