"""Operation records and the flatten content digest."""

from repro.core.ops import DeleteOp, FlattenOp, InsertOp, content_digest
from repro.core.path import PathElement, PosID
from repro.core.disambiguator import Sdis


def _posid():
    return PosID([PathElement(1, Sdis(1))])


class TestOperationRecords:
    def test_kinds(self):
        assert InsertOp(_posid(), "a", 1).kind == "insert"
        assert DeleteOp(_posid(), 1).kind == "delete"
        assert FlattenOp(_posid(), "d", 1).kind == "flatten"

    def test_immutability(self):
        op = InsertOp(_posid(), "a", 1)
        try:
            op.atom = "b"
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("operations must be immutable")

    def test_equality(self):
        assert InsertOp(_posid(), "a", 1) == InsertOp(_posid(), "a", 1)
        assert DeleteOp(_posid(), 1) != DeleteOp(_posid(), 2)

    def test_reprs_are_informative(self):
        assert "insert" in repr(InsertOp(_posid(), "a", 1))
        assert "delete" in repr(DeleteOp(_posid(), 1))
        assert "flatten" in repr(FlattenOp(_posid(), "deadbeef", 1))


class TestContentDigest:
    def test_deterministic(self):
        atoms = ("a", "b", "c")
        assert content_digest(atoms) == content_digest(("a", "b", "c"))

    def test_order_sensitive(self):
        assert content_digest(("a", "b")) != content_digest(("b", "a"))

    def test_boundary_sensitive(self):
        # ("ab",) and ("a", "b") must digest differently: the length
        # prefix prevents concatenation ambiguity.
        assert content_digest(("ab",)) != content_digest(("a", "b"))

    def test_empty(self):
        assert content_digest(()) == content_digest(())
        assert content_digest(()) != content_digest(("",))
