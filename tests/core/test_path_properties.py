"""Machine-checked order laws of the PosID space (hypothesis).

The identifier order is the foundation of the whole CRDT: it must be a
strict total order, and Algorithm 1 must allocate *between* its
neighbours. These properties are exactly the ones the paper asserts in
section 2.1 (total order consistent with the buffer, dense space).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.path import compare_posids, compare_posids_walk
from repro.core.treedoc import Treedoc
from tests.conftest import posid_strategy


class TestTotalOrderLaws:
    @given(posid_strategy, posid_strategy)
    def test_antisymmetry(self, a, b):
        ca, cb = compare_posids(a, b), compare_posids(b, a)
        assert ca == -cb

    @given(posid_strategy)
    def test_reflexive_equality(self, a):
        assert compare_posids(a, a) == 0

    @given(posid_strategy, posid_strategy)
    def test_equality_iff_identical(self, a, b):
        # Comparison reports equality only for structurally equal paths —
        # no two distinct identifiers may collide (requirement ii).
        if compare_posids(a, b) == 0:
            assert a == b

    @given(posid_strategy, posid_strategy, posid_strategy)
    @settings(max_examples=300)
    def test_transitivity(self, a, b, c):
        x, y, z = sorted([a, b, c])
        assert x <= y <= z
        assert x <= z

    @given(posid_strategy, posid_strategy)
    @settings(max_examples=300)
    def test_packed_key_equals_elementwise_walk(self, a, b):
        # The packed flat-integer sort key (PosID.sort_key) must induce
        # exactly the order of the element-by-element reference walk.
        assert compare_posids(a, b) == compare_posids_walk(a, b)
        assert (a.sort_key() < b.sort_key()) == (compare_posids_walk(a, b) < 0)


class TestDensityViaAllocation:
    """Requirement v (density), exercised through the real allocator:
    inserting at any position always finds an identifier strictly
    between the neighbours, preserving document order."""

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                    max_size=40),
           st.sampled_from(["udis", "sdis"]))
    @settings(max_examples=150, deadline=None)
    def test_random_insert_positions_keep_list_semantics(self, positions, mode):
        doc = Treedoc(site=1, mode=mode)
        model = []
        for tag, position in enumerate(positions):
            index = position % (len(model) + 1)
            doc.insert(index, tag)
            model.insert(index, tag)
        assert doc.atoms() == model
        ids = [doc.posid_at(i) for i in range(len(doc))]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_interleaved_inserts_and_deletes(self, data):
        doc = Treedoc(site=2, mode="sdis")
        model = []
        for step in range(data.draw(st.integers(5, 40))):
            if model and data.draw(st.booleans()):
                index = data.draw(st.integers(0, len(model) - 1))
                doc.delete(index)
                model.pop(index)
            else:
                index = data.draw(st.integers(0, len(model)))
                doc.insert(index, step)
                model.insert(index, step)
            assert doc.atoms() == model
        doc.check()
