"""Disk images as real files: atomic writes, torn-write injection,
typed errors on damage (ISSUE satellite: atomic image writes)."""

import os

import pytest

from repro.core.disk import (
    image_from_bytes,
    image_to_bytes,
    load_file,
    read_image,
    save,
    save_file,
    write_image,
)
from repro.core.treedoc import Treedoc
from repro.errors import DecodeError
from repro.storage import CrashError, CrashInjector


def _doc(text="the quick brown fox"):
    doc = Treedoc(1)
    doc.insert_text(0, text)
    return doc


class TestContainer:
    def test_round_trip(self, tmp_path):
        doc = _doc()
        path = tmp_path / "doc.tdoc"
        size = save_file(doc.tree, path, fsync=False)
        assert path.stat().st_size == size
        tree = load_file(path)
        assert tree.atoms() == doc.tree.atoms()

    def test_round_trip_with_array_leaves(self, tmp_path):
        from repro.core.path import ROOT

        doc = _doc()
        doc.note_revision()
        doc.flatten_local(ROOT)  # canonical shape: collapsible
        doc.note_revision()
        doc.note_revision()
        doc.collapse_cold(min_age=1, min_atoms=2)
        assert doc.array_leaf_count
        path = tmp_path / "cold.tdoc"
        save_file(doc.tree, path, fsync=False)
        tree = load_file(path)
        assert tree.atoms() == doc.tree.atoms()
        # Leaves load back collapsed, not exploded.
        assert len(tree.array_leaves()) == doc.array_leaf_count

    def test_bytes_round_trip(self):
        image = save(_doc().tree)
        again = image_from_bytes(image_to_bytes(image))
        assert again.tree_bytes == image.tree_bytes
        assert again.tree_bits == image.tree_bits
        assert again.atom_payloads == image.atom_payloads
        assert again.version == image.version

    def test_every_truncation_raises_typed_error(self):
        data = image_to_bytes(save(_doc("abcdef").tree))
        for cut in range(len(data)):
            with pytest.raises(DecodeError):
                image_from_bytes(data[:cut])

    def test_bit_flip_raises_typed_error(self):
        data = image_to_bytes(save(_doc().tree))
        for byte in range(0, len(data), 7):
            damaged = bytearray(data)
            damaged[byte] ^= 0x10
            with pytest.raises(DecodeError):
                image_from_bytes(bytes(damaged))


class TestAtomicity:
    def test_partial_write_leaves_previous_image_intact(self, tmp_path):
        """The injected-partial-write regression: a crash after the
        temp file is written but before the rename must leave the old
        image exactly as it was (and no half-written garbage behind)."""
        path = tmp_path / "doc.tdoc"
        save_file(_doc("version one").tree, path, fsync=False)
        before = path.read_bytes()

        injector = CrashInjector()
        injector.arm("disk.replace")

        def crash():
            injector.check("disk.replace")

        with pytest.raises(CrashError):
            write_image(save(_doc("version two").tree), path,
                        fsync=False, before_replace=crash)
        assert path.read_bytes() == before
        assert load_file(path).atoms() == list("version one")
        # The temp sibling was cleaned up.
        assert os.listdir(tmp_path) == ["doc.tdoc"]

    def test_no_previous_image_partial_write_leaves_nothing(self, tmp_path):
        path = tmp_path / "doc.tdoc"

        def crash():
            raise CrashError("die before rename")

        with pytest.raises(CrashError):
            write_image(save(_doc().tree), path, fsync=False,
                        before_replace=crash)
        assert not path.exists()
        assert os.listdir(tmp_path) == []

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        path = tmp_path / "doc.tdoc"
        save_file(_doc("aaa").tree, path, fsync=False)
        save_file(_doc("bbb").tree, path, fsync=False)
        assert load_file(path).atoms() == list("bbb")

    def test_read_image_typed_error_on_torn_file(self, tmp_path):
        path = tmp_path / "doc.tdoc"
        save_file(_doc().tree, path, fsync=False)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(DecodeError):
            read_image(path)
