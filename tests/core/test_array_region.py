"""Mixed tree/array storage (section 4.2)."""

import pytest

from repro.core.array_region import (
    ARRAY_SLOT_BYTES,
    MixedStorage,
    find_array_regions,
    storage_cost,
)
from repro.core.path import ROOT
from repro.core.treedoc import Treedoc
from repro.errors import TreeError
from repro.metrics.overhead import NODE_RECORD_BYTES


def _flattened_doc(n=40, tombstones=10):
    doc = Treedoc(site=1, mode="sdis")
    for i in range(n):
        doc.insert(i, f"line {i}")
    for _ in range(tombstones):
        doc.delete(3)
    doc.note_revision()
    doc.flatten_local(ROOT)
    return doc


class TestFindRegions:
    def test_flattened_document_is_one_region(self):
        doc = _flattened_doc()
        regions = find_array_regions(doc.tree)
        assert len(regions) == 1
        path, node = regions[0]
        assert path == ROOT
        assert node.live_count == 30

    def test_active_document_has_no_regions_at_root(self):
        doc = Treedoc(site=1, mode="sdis")
        for i in range(20):
            doc.insert(i, i)
        doc.delete(5)  # tombstone blocks array representation
        regions = find_array_regions(doc.tree)
        # every atom is a mini-node (disambiguated), so nothing here is
        # array-representable
        assert regions == []

    def test_mixed_document_finds_quiescent_subtrees(self):
        doc = _flattened_doc()
        doc.insert(3, "hot edit")  # creates a mini-node somewhere
        regions = find_array_regions(doc.tree)
        assert regions  # the untouched side remains an array region
        assert all(path != ROOT for path, _ in regions)


class TestMixedStorage:
    def test_compact_and_read(self):
        doc = _flattened_doc()
        content = doc.atoms()
        storage = MixedStorage(doc.tree)
        assert storage.compact() == 1
        assert storage.atoms() == content
        assert len(storage.regions) == 1

    def test_storage_cost_drops_to_near_array(self):
        doc = _flattened_doc()
        pure, mixed = storage_cost(doc.tree)
        # A 30-atom flattened doc: tree form pays 26 B/node; array form
        # pays one pointer per atom plus a tiny header.
        assert pure >= 30 * NODE_RECORD_BYTES
        assert mixed <= 30 * ARRAY_SLOT_BYTES + 50
        assert mixed < pure / 4

    def test_explode_on_demand_restores_tree_editing(self):
        doc = _flattened_doc()
        storage = MixedStorage(doc.tree)
        storage.compact()
        # An edit touching the region must explode it first.
        target = doc.posid_at(7)
        storage.ensure_tree_at(target)
        assert storage.regions == []
        doc.insert(7, "after explode")
        assert "after explode" in [str(a) for a in doc.atoms()]
        doc.check()

    def test_bypassing_the_manager_is_detected(self):
        doc = _flattened_doc()
        storage = MixedStorage(doc.tree)
        storage.compact()
        doc.insert(0, "rogue edit")  # did not call ensure_tree_at
        with pytest.raises(TreeError):
            storage.explode_all()

    def test_explode_is_deterministic_across_replicas(self):
        a = _flattened_doc()
        b = _flattened_doc()
        for doc in (a, b):
            storage = MixedStorage(doc.tree)
            storage.compact()
            storage.explode_all()
        assert [repr(p) for p in a.posids()] == [repr(p) for p in b.posids()]

    def test_compact_idempotent(self):
        doc = _flattened_doc()
        storage = MixedStorage(doc.tree)
        assert storage.compact() == 1
        assert storage.compact() == 0
