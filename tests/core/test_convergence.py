"""CRDT convergence: the paper's central claim, property-tested.

Replicas that apply the same operations in any happened-before-
compatible order converge (section 2.2). Hypothesis drives randomized
concurrent schedules across 2 and 3 sites, both disambiguator modes.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.treedoc import Treedoc
from tests.conftest import exchange_rounds


class TestTwoSiteConvergence:
    @given(seed=st.integers(0, 2**32 - 1),
           mode=st.sampled_from(["udis", "sdis"]))
    @settings(max_examples=60, deadline=None)
    def test_random_concurrent_schedules(self, seed, mode):
        rng = random.Random(seed)
        a, b = Treedoc(site=1, mode=mode), Treedoc(site=2, mode=mode)
        exchange_rounds(a, b, rng, rounds=12)
        assert a.atoms() == b.atoms()
        a.check()
        b.check()


class TestThreeSiteConvergence:
    @given(seed=st.integers(0, 2**32 - 1),
           mode=st.sampled_from(["udis", "sdis"]))
    @settings(max_examples=30, deadline=None)
    def test_broadcast_rounds(self, seed, mode):
        rng = random.Random(seed)
        docs = [Treedoc(site=s, mode=mode) for s in (1, 2, 3)]
        for round_number in range(8):
            batches = []
            for doc in docs:
                ops = []
                for _ in range(rng.randint(0, 3)):
                    if len(doc) and rng.random() < 0.3:
                        ops.append(doc.delete(rng.randrange(len(doc))))
                    else:
                        ops.append(doc.insert(
                            rng.randint(0, len(doc)),
                            f"{doc.site}:{round_number}",
                        ))
                batches.append(ops)
            # Deliver every batch to every other site, in a random
            # inter-site order (intra-batch order preserved: causal).
            order = [(i, j) for i in range(3) for j in range(3) if i != j]
            rng.shuffle(order)
            for source, target in order:
                docs[target].apply_all(batches[source])
            assert docs[0].atoms() == docs[1].atoms() == docs[2].atoms()
        for doc in docs:
            doc.check()


class TestDuplicateDelivery:
    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_at_least_once_insert_then_delete(self, seed):
        # The transport may duplicate messages; exact-duplicate inserts
        # and deletes must be harmless.
        rng = random.Random(seed)
        source = Treedoc(site=1, mode="udis")
        ops = []
        for step in range(20):
            if len(source) and rng.random() < 0.3:
                ops.append(source.delete(rng.randrange(len(source))))
            else:
                ops.append(source.insert(rng.randint(0, len(source)), step))
        replica = Treedoc(site=2, mode="udis")
        for op in ops:
            replica.apply(op)
            if rng.random() < 0.4:
                replica.apply(op)  # duplicate
        assert replica.atoms() == source.atoms()


class TestRunInsertConvergence:
    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_concurrent_run_inserts(self, seed):
        rng = random.Random(seed)
        a, b = Treedoc(site=1), Treedoc(site=2)
        for op in a.insert_run(0, list("0123456789")):
            b.apply(op)
        run_a = a.insert_run(rng.randint(0, len(a)), ["A1", "A2", "A3"])
        run_b = b.insert_run(rng.randint(0, len(b)), ["B1", "B2"])
        for op in run_b:
            a.apply(op)
        for op in run_a:
            b.apply(op)
        assert a.atoms() == b.atoms()
        atoms = a.atoms()
        # Concurrent runs may interleave when they target the same gap
        # (their subtrees merge mini-node-wise), but each run's internal
        # order is always preserved.
        positions_a = [atoms.index(x) for x in ("A1", "A2", "A3")]
        positions_b = [atoms.index(x) for x in ("B1", "B2")]
        assert positions_a == sorted(positions_a)
        assert positions_b == sorted(positions_b)
