"""Tree storage: materialization, counts, navigation, tombstones, GC."""

import pytest

from repro.core.disambiguator import Sdis, Udis
from repro.core.node import EMPTY, LIVE, TOMBSTONE, MiniNode, slot_posid
from repro.core.path import PathElement, PosID, ROOT
from repro.core.tree import TreedocTree, predecessor_slot, successor_slot
from repro.errors import MissingAtomError, TreeError


def pid(*elements) -> PosID:
    built = []
    for element in elements:
        if isinstance(element, tuple):
            built.append(PathElement(element[0], Sdis(element[1])))
        else:
            built.append(PathElement(element))
    return PosID(built)


@pytest.fixture
def tree() -> TreedocTree:
    return TreedocTree()


class TestMaterializeLookup:
    def test_round_trip(self, tree):
        for posid in (pid(1), pid(1, (0, 2)), pid(1, 0, (0, 3), (1, 4)),
                      pid(0, 1, 1)):
            slot = tree.materialize(posid)
            assert tree.lookup(posid) is slot
            assert slot_posid(slot) == posid

    def test_lookup_missing_is_none(self, tree):
        assert tree.lookup(pid(1, 0, 1)) is None
        tree.materialize(pid(1, 0))
        assert tree.lookup(pid(1, 0, 1)) is None
        assert tree.lookup(pid(1, (0, 9))) is None

    def test_materialize_recreates_shared_structure(self, tree):
        a = tree.materialize(pid(1, (0, 2)))
        b = tree.materialize(pid(1, (0, 3)))
        assert a is not b
        assert a.host is b.host  # mini-siblings share the position node

    def test_mini_and_major_routes_are_distinct_nodes(self, tree):
        # [.. (0:d) 1 ..] routes through the mini's child; [.. 0 1 ..]
        # through the major node's — different subtrees.
        via_mini = tree.materialize(pid(1, (0, 2), (1, 5)))
        via_major = tree.materialize(pid(1, 0, (1, 5)))
        assert via_mini is not via_major
        assert via_mini.host is not via_major.host

    def test_height_tracks_materialization(self, tree):
        assert tree.height == 0
        tree.materialize(pid(1, 0, 1, 0))
        assert tree.height == 4


class TestCountsAndIndexing:
    def test_counts_update_on_insert_and_delete(self, tree):
        tree.apply_insert(pid((1, 1)), "a")
        tree.apply_insert(pid(1, (1, 1)), "b")
        tree.apply_insert(pid(1, 1, (1, 1)), "c")
        assert tree.live_length == 3 and tree.id_length == 3
        tree.apply_delete(pid(1, (1, 1)), keep_tombstone=True)
        assert tree.live_length == 2 and tree.id_length == 3
        tree.apply_delete(pid(1, 1, (1, 1)), keep_tombstone=False)
        # "a" live, "b" tombstoned, "c" discarded.
        assert tree.live_length == 1 and tree.id_length == 2

    def test_live_slot_at_matches_document_order(self, tree):
        ids = [pid((1, 1)), pid(1, (0, 1)), pid(1, (1, 1))]
        for n, posid in enumerate(sorted(ids)):
            tree.apply_insert(posid, f"atom{n}")
        assert [tree.live_slot_at(i).atom for i in range(3)] == [
            "atom0", "atom1", "atom2"
        ]
        with pytest.raises(IndexError):
            tree.live_slot_at(3)

    def test_id_slot_at_includes_tombstones(self, tree):
        tree.apply_insert(pid((1, 1)), "a")
        tree.apply_insert(pid(1, (1, 1)), "b")
        tree.apply_delete(pid((1, 1)), keep_tombstone=True)
        assert tree.id_slot_at(0).state == TOMBSTONE
        assert tree.id_slot_at(1).atom == "b"
        with pytest.raises(IndexError):
            tree.id_slot_at(2)


class TestApplySemantics:
    def test_insert_duplicate_same_atom_is_idempotent(self, tree):
        tree.apply_insert(pid((1, 1)), "a")
        tree.apply_insert(pid((1, 1)), "a")
        assert tree.live_length == 1

    def test_insert_conflicting_atom_raises(self, tree):
        tree.apply_insert(pid((1, 1)), "a")
        with pytest.raises(TreeError):
            tree.apply_insert(pid((1, 1)), "b")

    def test_delete_is_idempotent(self, tree):
        tree.apply_insert(pid((1, 1)), "a")
        tree.apply_delete(pid((1, 1)), keep_tombstone=True)
        tree.apply_delete(pid((1, 1)), keep_tombstone=True)
        assert tree.live_length == 0 and tree.id_length == 1

    def test_delete_of_never_seen_id_is_noop(self, tree):
        tree.apply_delete(pid(1, (0, 9)), keep_tombstone=False)
        assert tree.id_length == 0

    def test_insert_at_tombstone_is_causality_violation(self, tree):
        tree.apply_insert(pid((1, 1)), "a")
        tree.apply_delete(pid((1, 1)), keep_tombstone=True)
        with pytest.raises(TreeError):
            tree.apply_insert(pid((1, 1)), "b")


class TestUdisDiscard:
    """Section 3.3.1: leaves are discarded at once, interior nodes when
    their descendants go, major nodes when everything goes."""

    def test_leaf_discard_prunes_structure(self, tree):
        tree.apply_insert(pid((1, 1)), "a")
        tree.apply_delete(pid((1, 1)), keep_tombstone=False)
        assert tree.root.right is None  # fully pruned
        assert tree.id_length == 0

    def test_interior_node_kept_while_descendants_live(self, tree):
        parent = PosID([PathElement(1, Udis(0, 1))])
        child = parent.child(1, Udis(1, 1))
        tree.apply_insert(parent, "p")
        tree.apply_insert(child, "c")
        tree.apply_delete(parent, keep_tombstone=False)
        # Parent's atom is gone but its mini-node survives as structure.
        assert tree.live_length == 1
        assert tree.lookup(parent) is not None
        assert tree.lookup(parent).state == EMPTY
        # Deleting the descendant cascades the discard.
        tree.apply_delete(child, keep_tombstone=False)
        assert tree.lookup(parent) is None
        assert tree.root.right is None

    def test_replay_insert_recreates_discarded_ancestors(self, tree):
        parent = PosID([PathElement(1, Udis(0, 1))])
        tree.apply_insert(parent, "p")
        tree.apply_delete(parent, keep_tombstone=False)
        late_child = parent.child(1, Udis(5, 2))
        tree.apply_insert(late_child, "x")  # re-creates empty ancestors
        assert tree.live_length == 1
        assert slot_posid(tree.live_slot_at(0)) == late_child


class TestNavigation:
    def test_successor_predecessor_cover_all_slots(self, tree):
        ids = [
            pid((0, 1)), pid(0, (1, 1)), pid((1, 1)), pid(1, (0, 1)),
            pid(1, (0, 2)), pid(1, (0, 2), (1, 3)), pid(1, 1, (0, 4)),
        ]
        for n, posid in enumerate(ids):
            tree.apply_insert(posid, n)
        walked = list(tree.iter_slots())
        # successor_slot chains identically to iter_slots
        chain = [tree.first_slot()]
        while True:
            nxt = successor_slot(chain[-1])
            if nxt is None:
                break
            chain.append(nxt)
        assert [id(s) for s in chain] == [id(s) for s in walked]
        # predecessor chain is the reverse
        back = [chain[-1]]
        while True:
            prev = predecessor_slot(back[-1])
            if prev is None:
                break
            back.append(prev)
        assert [id(s) for s in reversed(back)] == [id(s) for s in chain]

    def test_next_id_holder_skips_tombstoneless_empties(self, tree):
        tree.apply_insert(pid(1, 0, (0, 1)), "deep")
        tree.apply_insert(pid(1, (1, 2)), "later")
        first = tree.next_id_holder(None)
        assert first.atom == "deep"
        second = tree.next_id_holder(first)
        assert second.atom == "later"
        assert tree.next_id_holder(second) is None

    def test_gap_slots_between_neighbours(self, tree):
        tree.apply_insert(pid((1, 1)), "a")
        tree.apply_insert(pid(1, 1, (0, 1)), "b")
        a = tree.lookup(pid((1, 1)))
        b = tree.lookup(pid(1, 1, (0, 1)))
        between = list(tree.gap_slots(a, b))
        # the empty plain slots of nodes 1 and 11's left spine lie between
        assert all(s.state == EMPTY for s in between)
        assert between  # at least the plain slot of node 1


class TestInvariants:
    def test_check_invariants_passes_on_mixed_tree(self, tree):
        tree.apply_insert(pid((1, 1)), "a")
        tree.apply_insert(pid(1, (0, 1)), "b")
        tree.apply_insert(pid(1, (0, 2)), "c")
        tree.apply_delete(pid(1, (0, 1)), keep_tombstone=True)
        tree.check_invariants()

    def test_set_live_requires_empty(self, tree):
        slot = tree.materialize(pid((1, 1)))
        tree.set_live(slot, "a")
        with pytest.raises(TreeError):
            tree.set_live(slot, "b")

    def test_tombstone_requires_live(self, tree):
        slot = tree.materialize(pid((1, 1)))
        with pytest.raises(MissingAtomError):
            tree.make_tombstone(slot)
