"""Wire format v2: frame round trips, v1 compatibility, typed errors."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.baselines.interface import TreedocAdapter
from repro.baselines.logoot import LogootDoc
from repro.baselines.rga import RgaDoc
from repro.baselines.woot import WootDoc
from repro.core import encoding
from repro.core.ops import InsertOp, OpBatch
from repro.core.path import PathElement, PosID, ROOT
from repro.core.treedoc import Treedoc
from repro.errors import DecodeError, EncodingError

#: An edit script: (kind, position seed, payload text) triples, the
#: same shape the CRDT contract tests replay.
script_strategy = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 999),
              st.text(st.characters(codec="utf-8",
                                    blacklist_categories=("Cs",)),
                      min_size=1, max_size=8)),
    min_size=1, max_size=10,
)


def _apply_script(crdt, script):
    """Replay a script through the batch API; returns the batches."""
    batches = []
    for kind, where, text in script:
        index = where % (len(crdt) + 1)
        if kind == 0 or len(crdt) < 2:
            batches.append(crdt.insert_text(index, list(text)))
        elif kind == 1:
            end = min(len(crdt), index + 2)
            batches.append(crdt.delete_range(min(index, end - 1), end))
        else:
            end = min(len(crdt), index + 2)
            start = min(index, end - 1)
            if hasattr(crdt, "replace_range"):
                batches.append(crdt.replace_range(start, end, list(text)))
            else:  # baseline adapters: a modify is delete + insert
                batches.append(crdt.delete_range(start, end))
                batches.append(crdt.insert_text(start, list(text)))
    return batches


class TestBatchFrames:
    @settings(max_examples=40, deadline=None)
    @given(script_strategy)
    def test_round_trip_preserves_apply_result(self, script):
        # Arbitrary batches -> encode -> decode -> identical apply
        # result: the decoded stream must rebuild an identifier-
        # identical replica, and the same script must leave every CRDT
        # adapter with the same visible text the decoded stream yields.
        source = Treedoc(site=1)
        batches = _apply_script(source, script)
        frames = [encoding.encode_batch(batch) for batch in batches]
        decoded = [encoding.decode_batch(data, bits)
                   for data, bits in frames]
        for original, back in zip(batches, decoded):
            assert tuple(back.ops) == tuple(original.ops)
            assert (back.origin, back.seq_start, back.seq_end) == (
                original.origin, original.seq_start, original.seq_end
            )
            assert back.verify()
            assert back.digest == original.seal().digest
        replayed = Treedoc(site=2)
        for batch in decoded:
            replayed.apply_batch(batch)
        assert replayed.atoms() == source.atoms()
        assert replayed.posids() == source.posids()
        # The same script leaves all four CRDT adapters with the same
        # text as the decoded-frame replay.
        for crdt in (TreedocAdapter(site=3), LogootDoc(site=3),
                     RgaDoc(site=3), WootDoc(site=3)):
            _apply_script(crdt, script)
            assert crdt.text() == replayed.text()

    @settings(max_examples=25, deadline=None)
    @given(script_strategy)
    def test_sdis_round_trip(self, script):
        source = Treedoc(site=4, mode="sdis")
        batches = _apply_script(source, script)
        replayed = Treedoc(site=5, mode="sdis")
        for batch in batches:
            data, bits = encoding.encode_batch(batch)
            replayed.apply_batch(encoding.decode_batch(data, bits))
        assert replayed.posids() == source.posids()

    def test_run_frame_beats_per_op_framing(self):
        doc = Treedoc(site=1)
        batch = doc.insert_text(0, list("the quick brown fox jumps"))
        frame_bits = encoding.batch_cost_bits(batch)
        per_op_bits = sum(
            encoding.operation_cost_bits(op) for op in batch.ops
        )
        assert frame_bits * 4 < per_op_bits

    def test_v1_payload_decodes_under_v2_reader(self):
        doc = Treedoc(site=1)
        ops = list(doc.insert_text(0, list("compat")).ops)
        ops.append(doc.delete(0))
        for op in ops:
            data, bits = encoding.encode_operation(op)
            back = encoding.decode_frame(data, bits)
            assert type(back) is type(op)
            assert back.posid == op.posid
            assert back.origin == op.origin
        frame = encoding.encode_batch(
            OpBatch.build(tuple(ops), 1, 0)
        )
        assert isinstance(encoding.decode_frame(*frame), OpBatch)


class TestStateFrames:
    def test_capture_load_identifier_identity(self):
        source = Treedoc(site=1, mode="sdis")
        source.insert_text(0, [f"line {i}" for i in range(48)])
        source.delete_range(3, 6)
        source.note_revision()
        source.flatten_local(ROOT)
        source.collapse_cold(min_age=0, min_atoms=8)
        state = source.capture_state()
        target = Treedoc(site=2, mode="sdis")
        target.insert_text(0, list("pre-sync content to be replaced"))
        loaded = target.load_state(state)
        assert loaded == len(source)
        assert target.posids() == source.posids()
        assert target.atoms() == source.atoms()
        assert target.array_leaf_count > 0
        target.check()

    def test_mode_mismatch_refused(self):
        from repro.errors import SyncError

        source = Treedoc(site=1, mode="sdis")
        source.insert_text(0, list("abc"))
        with pytest.raises(SyncError):
            Treedoc(site=2, mode="udis").load_state(source.capture_state())

    def test_digest_tamper_detected(self):
        from dataclasses import replace

        from repro.errors import SyncError

        source = Treedoc(site=1)
        source.insert_text(0, list("abcdef"))
        state = replace(source.capture_state(), digest="0" * 64)
        with pytest.raises(SyncError):
            Treedoc(site=2).load_state(state)

    def test_generation_strictly_increases_across_load(self):
        source = Treedoc(site=1)
        source.insert_text(0, list("abcdef"))
        target = Treedoc(site=2)
        target.insert_text(0, list("xyz"))
        before = target.generation
        target.load_state(source.capture_state())
        assert target.generation > before


class TestTypedDecodeErrors:
    def _insert_payload(self):
        doc = Treedoc(site=1)
        op = doc.insert_text(0, list("hello")).ops[0]
        return encoding.encode_operation(op)

    def test_truncated_operation_raises_decode_error(self):
        data, bits = self._insert_payload()
        for cut_bits in (1, 7, bits // 2):
            truncated = data[: max(1, (bits - cut_bits) // 8)]
            with pytest.raises(DecodeError):
                encoding.decode_operation(truncated,
                                          min(bits - cut_bits,
                                              len(truncated) * 8))

    def test_trailing_garbage_raises_decode_error(self):
        data, bits = self._insert_payload()
        with pytest.raises(DecodeError):
            encoding.decode_operation(data + b"\xffgarbage")

    def test_truncated_posid_raises_decode_error(self):
        data, bits = encoding.encode_posid(
            PosID([PathElement(1), PathElement(0), PathElement(1)])
        )
        with pytest.raises(DecodeError):
            encoding.decode_posid(data[:0], 0)
        with pytest.raises(DecodeError):
            encoding.decode_posid(data, bits + 64)

    def test_trailing_garbage_after_posid(self):
        data, _ = encoding.encode_posid(PosID([PathElement(1)]))
        with pytest.raises(DecodeError):
            encoding.decode_posid(data + b"\x01\x02\x03")

    def test_truncated_batch_frame(self):
        doc = Treedoc(site=1)
        data, bits = encoding.encode_batch(doc.insert_text(0, list("abcdef")))
        with pytest.raises(DecodeError):
            encoding.decode_batch(data[: len(data) // 2],
                                  min(bits // 2, (len(data) // 2) * 8))

    def test_decode_error_is_an_encoding_error(self):
        # Callers catching the old exception keep working.
        assert issubclass(DecodeError, EncodingError)

    def test_lone_op_refused_by_decode_batch(self):
        data, bits = self._insert_payload()
        with pytest.raises(DecodeError):
            encoding.decode_batch(data, bits)
