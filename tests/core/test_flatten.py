"""explode / flatten (section 4.2, Algorithm 2) and the cold heuristic."""

import pytest

from repro.core.flatten import (
    ColdRegionFinder,
    build_exploded,
    explode,
    explode_depth,
    flatten_subtree,
    subtree_atoms,
)
from repro.core.path import PosID, ROOT
from repro.core.treedoc import Treedoc
from repro.errors import TreeError


class TestExplode:
    def test_depth_formula(self):
        # Capacity of a complete tree of depth d is 2^d - 1 (section 4.2).
        assert explode_depth(1) == 1
        assert explode_depth(3) == 2
        assert explode_depth(7) == 3
        assert explode_depth(8) == 4

    def test_contents_identical(self):
        atoms = [f"line{i}" for i in range(20)]
        tree = explode(atoms)
        assert tree.atoms() == atoms

    def test_paths_are_plain_bitstrings(self):
        tree = explode(list("abcdefg"))
        for posid in tree.posids():
            assert all(e.dis is None for e in posid)

    def test_balanced_depth(self):
        tree = explode(list(range(127)))
        assert tree.height == 6  # complete tree of depth 7 has 127 slots
        tree.check_invariants()

    def test_empty_array(self):
        tree = explode([])
        assert tree.atoms() == []
        assert tree.live_length == 0

    def test_deterministic(self):
        a = explode(list("hello world"))
        b = explode(list("hello world"))
        assert [repr(p) for p in a.posids()] == [repr(p) for p in b.posids()]


class TestFlatten:
    def _doc_with_tombstones(self):
        doc = Treedoc(site=1, mode="sdis")
        for i, c in enumerate("abcdefghij"):
            doc.insert(i, c)
        doc.delete(2)
        doc.delete(2)
        doc.delete(5)
        return doc

    def test_flatten_root_removes_tombstones(self):
        doc = self._doc_with_tombstones()
        assert doc.tree.id_length == 10
        doc.flatten_local(ROOT)
        assert doc.tree.id_length == len(doc) == 7
        assert doc.text() == "abefgij"
        doc.check()

    def test_flatten_shortens_identifiers(self):
        doc = self._doc_with_tombstones()
        before = max(p.size_bits for p in doc.posids())
        doc.flatten_local(ROOT)
        after = max(p.size_bits for p in doc.posids())
        assert after < before

    def test_flatten_preserves_content_and_order(self):
        doc = self._doc_with_tombstones()
        content = doc.text()
        doc.flatten_local(ROOT)
        assert doc.text() == content
        ids = doc.posids()
        assert ids == sorted(ids)

    def test_edit_after_flatten(self):
        doc = self._doc_with_tombstones()
        doc.flatten_local(ROOT)
        doc.insert(3, "X")
        doc.delete(0)
        assert doc.text() == "beXfgij"
        doc.check()

    def test_flatten_subtree_only_touches_region(self):
        doc = Treedoc(site=1, mode="sdis", balanced=True)
        for i in range(40):
            doc.insert(i, i)
        for _ in range(5):
            doc.delete(10)
        content = doc.atoms()
        # flatten the root's right subtree only
        region = PosID.from_bits([1])
        flatten_subtree(doc.tree, region)
        assert doc.atoms() == content
        doc.check()

    def test_subtree_flatten_propagates_counts_to_ancestors(self):
        # Regression: build_exploded rewrites the region's cached counts
        # before the recount, so the ancestor delta must be computed
        # against the *pre-surgery* values — otherwise the root's
        # id_count keeps counting collected tombstones and index lookups
        # go wrong.
        doc = Treedoc(site=1, mode="sdis", balanced=True)
        for i in range(40):
            doc.insert(i, i)
        for _ in range(8):
            doc.delete(20)
        assert doc.tree.id_length == 40
        flatten_subtree(doc.tree, PosID.from_bits([1]))
        assert doc.tree.id_length == 32  # tombstones under [1] collected
        assert doc.tree.live_length == 32
        # indexed access still agrees with a full scan
        assert [doc.atom_at(i) for i in range(len(doc))] == doc.atoms()
        doc.check()

    def test_flatten_region_must_be_plain(self):
        doc = self._doc_with_tombstones()
        with pytest.raises(TreeError):
            flatten_subtree(doc.tree, doc.posid_at(0))

    def test_flatten_missing_region(self):
        doc = self._doc_with_tombstones()
        with pytest.raises(TreeError):
            flatten_subtree(doc.tree, PosID.from_bits([0, 0, 0, 0, 0, 0]))

    def test_digest_mismatch_detected(self):
        doc = self._doc_with_tombstones()
        op = doc.make_flatten(ROOT)
        doc.insert(0, "sneaky concurrent edit")
        with pytest.raises(TreeError):
            doc.apply_flatten(op)

    def test_replicated_flatten_converges(self):
        source = self._doc_with_tombstones()
        ops = []
        replica = Treedoc(site=2, mode="sdis")
        # rebuild the same state at the replica through ops
        fresh = Treedoc(site=1, mode="sdis")
        for i, c in enumerate("abcdefghij"):
            ops.append(fresh.insert(i, c))
        for index in (2, 2, 5):
            ops.append(fresh.delete(index))
        replica.apply_all(ops)
        flatten_op = fresh.flatten_local(ROOT)
        replica.apply(flatten_op)
        assert replica.text() == fresh.text()
        assert replica.posids() == fresh.posids()
        replica.check()


class TestColdRegionHeuristic:
    def test_cold_region_found_after_idle_revisions(self):
        doc = Treedoc(site=1, mode="sdis")
        for i in range(30):
            doc.insert(i, i)
        doc.note_revision()
        # edit only near the end; the front goes cold
        doc.note_revision()
        doc.insert(29, "hot")
        op = doc.flatten_cold(min_age=1)
        assert op is not None
        doc.check()

    def test_no_cold_region_when_everything_hot(self):
        doc = Treedoc(site=1, mode="sdis")
        doc.insert(0, "a")
        # revision 0, everything just touched
        assert doc.flatten_cold(min_age=1) is None

    def test_min_depth_limits_heuristic(self):
        doc = Treedoc(site=1, mode="sdis")
        for i in range(30):
            doc.insert(i, i)
        for _ in range(3):
            doc.note_revision()
        shallow = ColdRegionFinder(min_age=1, min_depth=1).find(
            doc.tree, doc._touch_stamps, doc.revision
        )
        deep = ColdRegionFinder(min_age=1, min_depth=3).find(
            doc.tree, doc._touch_stamps, doc.revision
        )
        assert shallow is not None
        if deep is not None:
            assert deep.depth >= 3

    def test_build_exploded_resets_subtree(self):
        doc = Treedoc(site=1, mode="sdis")
        for i in range(10):
            doc.insert(i, i)
        node = doc.tree.root
        build_exploded(node, ["x", "y", "z"])
        doc.tree.recount_subtree(doc.tree.root)
        assert subtree_atoms(node) == ["x", "y", "z"]
