"""Live mixed tree/array storage (section 4.2, DESIGN.md section 7).

Quiescent canonical regions collapse into zero-metadata array leaves in
the *live* tree; any path or index landing inside one explodes it back,
deterministically. These tests pin the three contracts that make the
optimization safe:

- **representation-blindness**: a collapsing replica and a
  non-collapsing replica driven by the same operations snapshot
  identically — atoms *and* identifiers — under arbitrary interleavings
  of local batches, remote batches, lockstep flattens, collapses and
  explodes (the hypothesis property, run over all four CRDT adapters
  via the ``maintain`` contract hook);
- **pure reads stay collapsed**: ``atoms``/``text``/``atom_at``/
  ``posid_at``/``posids`` never explode a region;
- **structure on demand**: edits, remote paths and slot walks explode
  exactly the touched region, and ``check_invariants`` validates leaf
  boundaries and the snapshot cache throughout.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import LogootDoc, RgaDoc, TreedocAdapter, WootDoc
from repro.core import disk
from repro.core.array_region import find_collapsible
from repro.core.node import ArrayLeaf, collect_array_atoms
from repro.core.path import ROOT
from repro.core.treedoc import Treedoc
from repro.errors import TreeError


def _quiescent_doc(n=64, mode="sdis", min_atoms=4):
    """A flattened, collapsed document: the §4.2 steady state."""
    doc = Treedoc(site=1, mode=mode)
    doc.insert_text(0, [f"line {i}" for i in range(n)])
    doc.note_revision()
    doc.flatten_local(ROOT)
    for _ in range(3):
        doc.note_revision()
    doc.collapse_cold(min_age=1, min_atoms=min_atoms)
    return doc


class TestCollapse:
    def test_flattened_document_collapses_to_leaves(self):
        doc = _quiescent_doc()
        assert doc.array_leaf_count >= 1
        # The resident tree shrank to a handful of position nodes.
        resident = sum(1 for _ in doc.tree.root.iter_nodes())
        assert resident < 8

    def test_collapse_preserves_content_counts_and_identifiers(self):
        doc = Treedoc(site=1, mode="sdis")
        doc.insert_text(0, [f"w{i}" for i in range(40)])
        doc.delete_range(10, 15)
        doc.note_revision()
        doc.flatten_local(ROOT)
        content = doc.atoms()
        posids = [repr(p) for p in doc.posids()]
        length = doc.tree.live_length
        ids = doc.tree.id_length
        doc.note_revision()
        doc.note_revision()
        assert doc.collapse_cold(min_age=1, min_atoms=2)
        assert doc.atoms() == content
        assert [repr(p) for p in doc.posids()] == posids
        assert doc.tree.live_length == length
        assert doc.tree.id_length == ids
        doc.check()

    def test_collapse_is_a_representation_change_only(self):
        # No generation bump: derived caches (text) stay warm.
        doc = _quiescent_doc(min_atoms=1000)  # nothing collapsed yet
        text = doc.text()
        generation = doc.generation
        doc.collapse_cold(min_age=1, min_atoms=2)
        assert doc.array_leaf_count >= 1
        assert doc.generation == generation
        assert doc.text() == text

    def test_hot_regions_do_not_collapse(self):
        doc = Treedoc(site=1, mode="sdis")
        doc.insert_text(0, [f"x{i}" for i in range(30)])
        doc.note_revision()
        doc.flatten_local(ROOT)
        # The region was just flattened (stamped this revision): still hot.
        assert doc.collapse_cold(min_age=2, min_atoms=2) == []
        assert doc.array_leaf_count == 0

    def test_non_canonical_regions_are_rejected(self):
        doc = Treedoc(site=1, mode="sdis")
        doc.insert_text(0, list("abcdef"))
        # Mini-node structure (every local insert is disambiguated):
        # nothing here is canonical.
        assert find_collapsible(doc.tree, {}, 10, min_age=1, min_atoms=2) == []
        with pytest.raises(TreeError):
            doc.tree.collapse_subtree(doc.tree.root.right)

    def test_collapse_root_rejected(self):
        doc = _quiescent_doc(min_atoms=10_000)
        with pytest.raises(TreeError):
            doc.tree.collapse_subtree(doc.tree.root)

    def test_adjacent_leaves_merge_on_a_later_collapse(self):
        doc = _quiescent_doc(n=31, min_atoms=4)
        # The root's child subtrees collapsed; the root region as a
        # whole is still canonical, but rooted at ROOT (never
        # collapsed). Verify leaves count as canonical substructure.
        for leaf in doc.tree.array_leaves():
            assert collect_array_atoms(leaf) == leaf.atoms

    def test_auto_collapse_at_revision_boundaries(self):
        doc = Treedoc(site=1, mode="sdis", collapse_every=2,
                      collapse_min_age=1, collapse_min_atoms=4)
        doc.insert_text(0, [f"line {i}" for i in range(32)])
        doc.note_revision()
        doc.flatten_local(ROOT)
        assert doc.array_leaf_count == 0
        doc.note_revision()
        doc.note_revision()
        assert doc.array_leaf_count >= 1
        doc.check()


class TestPureReadsStayCollapsed:
    def test_reads_do_not_explode(self):
        doc = _quiescent_doc()
        leaves = doc.array_leaf_count
        content = doc.atoms()
        assert doc.text() == "".join(content)
        for index in (0, 5, len(content) // 2, len(content) - 1):
            assert doc.atom_at(index) == content[index]
        posids = doc.posids()
        assert posids == sorted(posids)
        for index in (0, len(content) // 2, len(content) - 1):
            assert doc.posid_at(index) == posids[index]
        assert doc.array_leaf_count == leaves  # nothing exploded
        doc.check()

    def test_cache_holds_leaves_as_single_entries(self):
        doc = _quiescent_doc()
        doc.atoms()  # build the cache
        entries = doc.tree._live
        assert entries is not None
        assert sum(1 for e in entries if isinstance(e, ArrayLeaf)) >= 1
        assert len(entries) < doc.tree.live_length  # slices, not slots

    def test_posids_match_exploded_form(self):
        collapsed = _quiescent_doc()
        exploded = _quiescent_doc(min_atoms=10_000)  # identical, no leaves
        assert collapsed.array_leaf_count > 0
        assert exploded.array_leaf_count == 0
        assert [repr(p) for p in collapsed.posids()] == [
            repr(p) for p in exploded.posids()
        ]


class TestExplodeOnTouch:
    def test_local_insert_explodes_only_the_touched_region(self):
        # 63 atoms: the canonical root splits 31 | 31, so two leaves.
        doc = _quiescent_doc(n=63)
        leaves = doc.array_leaf_count
        assert leaves >= 2
        content = doc.atoms()
        doc.insert(1, "HOT")
        content.insert(1, "HOT")
        assert doc.atoms() == content
        assert doc.array_leaf_count == leaves - 1
        doc.check()

    def test_local_delete_range_explodes_overlapping_regions(self):
        doc = _quiescent_doc(n=64)
        content = doc.atoms()
        doc.delete_range(2, 6)
        del content[2:6]
        assert doc.atoms() == content
        doc.check()

    def test_remote_path_into_region_explodes_and_converges(self):
        a = Treedoc(site=1, mode="udis")
        b = Treedoc(site=2, mode="udis")
        b.apply_batch(a.insert_text(0, [f"s{i}" for i in range(32)]))
        op = a.make_flatten(ROOT)
        a.apply_flatten(op)
        b.apply_flatten(op)
        for _ in range(3):
            a.note_revision()
        a.collapse_cold(min_age=1, min_atoms=4)
        assert a.array_leaf_count >= 1
        # b edits inside what a holds as an array; a replays the batch.
        batch = b.insert_text(7, list("XYZ"))
        a.apply_batch(batch)
        assert a.atoms() == b.atoms()
        assert [repr(p) for p in a.posids()] == [repr(p) for p in b.posids()]
        a.check()
        b.check()

    def test_remote_delete_inside_region(self):
        a = Treedoc(site=1, mode="sdis")
        b = Treedoc(site=2, mode="sdis")
        b.apply_batch(a.insert_text(0, [f"s{i}" for i in range(16)]))
        op = a.make_flatten(ROOT)
        a.apply_flatten(op)
        b.apply_flatten(op)
        a.note_revision()
        a.note_revision()
        a.collapse_cold(min_age=1, min_atoms=2)
        assert a.array_leaf_count >= 1
        batch = b.delete_range(3, 8)
        a.apply_batch(batch)
        assert a.atoms() == b.atoms()
        a.check()

    def test_explode_is_exact_inverse_of_collapse(self):
        doc = _quiescent_doc(n=48)
        posids = [repr(p) for p in doc.posids()]
        content = doc.atoms()
        for leaf in doc.tree.array_leaves():
            doc.tree.explode_leaf(leaf)
        assert doc.array_leaf_count == 0
        assert doc.atoms() == content
        assert [repr(p) for p in doc.posids()] == posids
        doc.check()

    def test_double_explode_is_loud(self):
        doc = _quiescent_doc()
        leaf = doc.tree.array_leaves()[0]
        doc.tree.explode_leaf(leaf)
        with pytest.raises(TreeError):
            doc.tree.explode_leaf(leaf)

    def test_live_slots_explodes_even_with_cache_disabled(self):
        # Regression: the uncached-read configuration (the benchmark A/B
        # knob) must not crash on a collapsed tree — live_slots promises
        # real slots, so it explodes first.
        doc = _quiescent_doc()
        doc.tree.configure_read_cache(snapshot=False, finger=False)
        slots = doc.tree.live_slots()
        assert [s.atom for s in slots] == doc.atoms()
        assert doc.array_leaf_count == 0
        doc.check()

    def test_live_slice_out_of_range_is_empty_and_side_effect_free(self):
        # Regression: an out-of-range start on a leaf-bearing cache must
        # keep slice semantics (empty result) and must not explode.
        doc = _quiescent_doc()
        doc.atoms()  # build the mixed cache
        leaves = doc.array_leaf_count
        total = len(doc)
        assert doc.tree.live_slice(total + 5, total + 7) == []
        assert doc.tree.live_slice(3, 3) == []
        assert doc.array_leaf_count == leaves

    def test_live_slot_at_explodes_but_atom_at_does_not(self):
        doc = _quiescent_doc()
        leaves = doc.array_leaf_count
        doc.atom_at(3)
        assert doc.array_leaf_count == leaves
        doc.tree.live_slot_at(3)
        assert doc.array_leaf_count == leaves - 1
        doc.check()


class TestDiskRoundTripWithLeaves:
    def _mixed_doc(self):
        """Minis and array leaves together in one tree."""
        a = Treedoc(site=1, mode="sdis")
        b = Treedoc(site=2, mode="sdis")
        b.apply_batch(a.insert_text(0, [f"line {i}" for i in range(48)]))
        op = a.make_flatten(ROOT)
        a.apply_flatten(op)
        b.apply_flatten(op)
        for _ in range(3):
            a.note_revision()
        a.collapse_cold(min_age=1, min_atoms=4)
        # Concurrent inserts at one position: mini-node siblings next to
        # the remaining collapsed regions.
        op_a = a.insert(2, "A")
        op_b = b.insert(2, "B")
        a.apply(op_b)
        b.apply(op_a)
        assert a.array_leaf_count >= 1
        return a

    def test_round_trip_preserves_leaves_without_exploding(self):
        doc = self._mixed_doc()
        image = disk.save(doc.tree)
        assert image.version == disk.FORMAT_VERSION
        loaded = disk.load(image)
        assert loaded.atoms() == doc.atoms()
        assert [repr(p) for p in loaded.posids()] == [
            repr(p) for p in doc.posids()
        ]
        assert len(loaded.array_leaves()) == doc.array_leaf_count
        loaded.check_invariants()

    def test_v1_save_rejects_leaves_but_handles_plain_trees(self):
        doc = self._mixed_doc()
        with pytest.raises(Exception):
            disk.save(doc.tree, version=1)
        plain = Treedoc(site=1, mode="sdis")
        plain.insert_text(0, list("abc"))
        image = disk.save(plain.tree, version=1)
        assert image.version == 1
        assert disk.load(image).atoms() == list("abc")

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_save_load_snapshot_identity_any_history(self, seed):
        rng = random.Random(seed)
        doc = Treedoc(site=1, mode="sdis")
        for step in range(40):
            if len(doc) and rng.random() < 0.3:
                start = rng.randrange(len(doc))
                doc.delete_range(start, min(len(doc), start + 3))
            else:
                index = rng.randint(0, len(doc))
                doc.insert_text(index, [f"a{step}.{k}"
                                        for k in range(rng.randint(1, 4))])
        doc.note_revision()
        doc.flatten_local(ROOT)
        for _ in range(rng.randint(0, 3)):
            doc.note_revision()
        doc.collapse_cold(min_age=1, min_atoms=rng.choice([2, 4, 8]))
        image = disk.save(doc.tree)
        loaded = disk.load(image)
        assert loaded.atoms() == doc.atoms()
        assert [repr(p) for p in loaded.posids()] == [
            repr(p) for p in doc.posids()
        ]
        assert len(loaded.array_leaves()) == doc.array_leaf_count
        loaded.check_invariants()
        # The cache is rebuilt valid after load and reads serve from it.
        assert loaded.atoms() == loaded.walk_atoms()
        loaded.check_invariants()


FACTORIES = {
    "treedoc-udis": lambda site: TreedocAdapter(site, mode="udis"),
    "treedoc-sdis": lambda site: TreedocAdapter(site, mode="sdis"),
    "logoot": lambda site: LogootDoc(site, seed=7),
    "woot": WootDoc,
    "rga": RgaDoc,
}

# One step of the mixed-storage interleaving.
_step = st.tuples(
    st.sampled_from(
        ["insert", "delete", "flatten", "collapse", "explode", "read"]
    ),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=5),
)


class TestMixedStorageConvergenceProperty:
    """The acceptance property: under arbitrary local/remote/flatten/
    collapse/explode interleavings, a replica with live mixed storage
    converges to the identical snapshot as one with collapsing
    disabled, over every CRDT adapter (collapse/explode are no-ops for
    the baselines via the ``maintain`` contract default)."""

    @pytest.mark.parametrize("name", sorted(FACTORIES))
    @given(steps=st.lists(_step, min_size=1, max_size=25))
    @settings(max_examples=12, deadline=None)
    def test_collapsing_replica_matches_plain_replica(self, name, steps):
        make = FACTORIES[name]
        mixed, plain = make(1), make(2)
        is_treedoc = isinstance(mixed, TreedocAdapter)
        tag = 0
        for kind, position, payload in steps:
            if kind == "insert":
                index = position % (len(mixed) + 1)
                atoms = [f"a{tag}.{k}" for k in range(payload)]
                tag += 1
                batch = mixed.insert_text(index, atoms)
                plain.apply_batch(batch)
            elif kind == "delete":
                if len(mixed):
                    start = position % len(mixed)
                    end = min(len(mixed), start + payload)
                    batch = mixed.delete_range(start, end)
                    plain.apply_batch(batch)
            elif kind == "flatten" and is_treedoc:
                # Structural clean-up commits in causal lockstep (the
                # commitment protocol guarantees exactly this window).
                op = mixed.doc.make_flatten(ROOT)
                mixed.doc.apply_flatten(op)
                plain.doc.apply_flatten(op)
            elif kind == "collapse":
                # Purely local on ONE replica: the other never collapses.
                mixed.maintain()
            elif kind == "explode" and is_treedoc:
                leaves = mixed.doc.tree.array_leaves()
                if leaves:
                    leaves[position % len(leaves)].explode()
            elif kind == "read":
                assert mixed.atoms() == plain.atoms()
            assert mixed.atoms() == plain.atoms(), kind
        assert mixed.atoms() == plain.atoms()
        if is_treedoc:
            # Identifier-level identity, not just content identity: the
            # mixed replica's implied canonical paths equal the plain
            # replica's materialized ones.
            assert [repr(p) for p in mixed.doc.posids()] == [
                repr(p) for p in plain.doc.posids()
            ]
            assert mixed.doc.atoms() == mixed.doc.tree.walk_atoms()
            mixed.doc.check()
            plain.doc.check()

    @given(steps=st.lists(_step, min_size=1, max_size=20),
           mode=st.sampled_from(["udis", "sdis"]))
    @settings(max_examples=15, deadline=None)
    def test_concurrent_sites_with_one_collapsing(self, steps, mode):
        """Two *concurrently editing* sites, one collapsing: every
        exchange round converges, with remote batches resolving into
        collapsed regions on the mixed side."""
        mixed = Treedoc(site=1, mode=mode)
        peer = Treedoc(site=2, mode=mode)
        tag = 0
        for kind, position, payload in steps:
            if kind == "insert":
                index = position % (len(peer) + 1)
                atoms = [f"p{tag}.{k}" for k in range(payload)]
                tag += 1
                mixed.apply_batch(peer.insert_text(index, atoms))
            elif kind == "delete":
                if len(peer):
                    start = position % len(peer)
                    batch = peer.delete_range(
                        start, min(len(peer), start + payload)
                    )
                    mixed.apply_batch(batch)
            elif kind == "flatten":
                op = peer.make_flatten(ROOT)
                peer.apply_flatten(op)
                mixed.apply_flatten(op)
            elif kind == "collapse":
                mixed.note_revision()
                mixed.collapse_cold(min_age=1, min_atoms=2)
            elif kind == "explode":
                leaves = mixed.tree.array_leaves()
                if leaves:
                    leaves[position % len(leaves)].explode()
            elif kind == "read":
                index = position % (len(mixed) + 1)
                atoms = [f"m{tag}"]
                tag += 1
                peer.apply_batch(mixed.insert_text(index, atoms))
            assert mixed.atoms() == peer.atoms(), kind
        assert [repr(p) for p in mixed.posids()] == [
            repr(p) for p in peer.posids()
        ]
        mixed.check()
        peer.check()
