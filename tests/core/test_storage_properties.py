"""Property tests across the storage stack (hypothesis).

Random edit histories driven through flatten, the disk format and the
mixed storage must always preserve content, identifier order and the
tree invariants.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import disk
from repro.core.array_region import MixedStorage, storage_cost
from repro.core.path import ROOT
from repro.core.treedoc import Treedoc


def _random_doc(seed: int, mode: str, steps: int = 60) -> Treedoc:
    rng = random.Random(seed)
    doc = Treedoc(site=1, mode=mode)
    for step in range(steps):
        if len(doc) and rng.random() < 0.35:
            doc.delete(rng.randrange(len(doc)))
        else:
            doc.insert(rng.randint(0, len(doc)), f"a{step}")
    return doc


class TestFlattenProperties:
    @given(seed=st.integers(0, 2**31), mode=st.sampled_from(["sdis", "udis"]))
    @settings(max_examples=40, deadline=None)
    def test_whole_document_flatten_preserves_content(self, seed, mode):
        doc = _random_doc(seed, mode)
        content = doc.atoms()
        doc.note_revision()
        doc.flatten_local(ROOT)
        assert doc.atoms() == content
        assert doc.tree.id_length == len(doc)  # no tombstones survive
        ids = doc.posids()
        assert ids == sorted(ids)
        doc.check()

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_flatten_then_edit_then_flatten(self, seed):
        rng = random.Random(seed)
        doc = _random_doc(seed, "sdis", steps=30)
        for _ in range(3):
            doc.note_revision()
            doc.flatten_local(ROOT)
            for step in range(8):
                if len(doc) and rng.random() < 0.4:
                    doc.delete(rng.randrange(len(doc)))
                else:
                    doc.insert(rng.randint(0, len(doc)), f"x{step}")
            doc.check()


class TestDiskProperties:
    @given(seed=st.integers(0, 2**31), mode=st.sampled_from(["sdis", "udis"]))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_any_history(self, seed, mode):
        doc = _random_doc(seed, mode)
        image = disk.save(doc.tree)
        loaded = disk.load(image)
        assert loaded.atoms() == doc.tree.atoms()
        assert [repr(p) for p in loaded.posids()] == [
            repr(p) for p in doc.tree.posids()
        ]
        loaded.check_invariants()


class TestMixedStorageProperties:
    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_compact_explode_round_trip(self, seed):
        doc = _random_doc(seed, "sdis", steps=40)
        doc.note_revision()
        doc.flatten_local(ROOT)
        content = doc.atoms()
        storage = MixedStorage(doc.tree)
        storage.compact()
        assert storage.atoms() == content
        storage.explode_all()
        assert doc.atoms() == content
        doc.check()

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_mixed_never_costs_more_than_tree(self, seed):
        doc = _random_doc(seed, "sdis", steps=40)
        doc.note_revision()
        doc.flatten_local(ROOT)
        pure, mixed = storage_cost(doc.tree)
        if len(doc) >= 2:
            assert mixed <= pure
        doc.check()
