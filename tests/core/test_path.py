"""PosID order and structural relations (section 3.1)."""

import pytest

from repro.core.disambiguator import Sdis, Udis
from repro.core.path import LEFT, RIGHT, PathElement, PosID, ROOT, parse_posid
from repro.errors import PathError


def pid(*elements) -> PosID:
    """Terse PosID literal: ints are plain bits, pairs are (bit, site)."""
    built = []
    for element in elements:
        if isinstance(element, tuple):
            bit, site = element
            built.append(PathElement(bit, Sdis(site)))
        else:
            built.append(PathElement(element))
    return PosID(built)


class TestBasicOrder:
    def test_left_child_before_parent(self):
        assert pid(0) < ROOT
        assert pid((0, 3)) < ROOT

    def test_right_child_after_parent(self):
        assert ROOT < pid(1)
        assert ROOT < pid((1, 3))

    def test_infix_of_figure_1(self):
        # Figure 1: "abcdef" in a tree: a=[00], b=[0], c=[01], d=[],
        # e=[10], f=[1] — wait, the figure's exact shape varies; check
        # the infix law instead: left-subtree < node < right-subtree.
        node = pid(1, 0)
        assert pid(1, 0, 0) < node < pid(1, 0, 1)

    def test_bit_order_dominates(self):
        assert pid(0, 1, 1, 1) < pid(1, 0, 0, 0)

    def test_mini_siblings_order_by_disambiguator(self):
        assert pid(1, (0, 1)) < pid(1, (0, 2))

    def test_paper_rule_zero_before_disambiguated(self):
        # 0 < (0:d) and 0 < (1:d) when the plain path ends there.
        assert pid(0) < pid((0, 5))
        assert pid(0) < pid((1, 5))

    def test_disambiguated_vs_plain_one(self):
        # (0:d) < 1 holds as in the paper. For (1:d) vs a plain path
        # *ending* in 1 we deviate (DESIGN.md 3.1): the plain atom of a
        # node precedes its mini-nodes, so [1] < [(1:d)]; the paper's
        # literal rule would break Algorithm 1's rules 5/7. The pair is
        # unreachable under the allocation discipline either way.
        assert pid((0, 5)) < pid(1)
        assert pid(1) < pid((1, 5))
        # A plain path *continuing* right does follow the mini-node:
        assert pid((1, 5)) < pid(1, 1)


class TestMixedPlainDisambiguated:
    """The refined same-bit plain-vs-disambiguated order (DESIGN 3.1)."""

    def test_plain_left_descent_precedes_mini_subtree(self):
        # Major node's left child subtree < any mini-node content.
        assert pid(0, 0) < pid((0, 1))
        assert pid(0, 0) < pid((0, 1), (1, 2))

    def test_plain_right_descent_follows_mini_subtree(self):
        # Major node's right child subtree > any mini-node content,
        # which is what makes rules 5/7's stripping sound.
        assert pid((0, 1)) < pid(0, 1)
        assert pid((0, 1), (1, 2)) < pid(0, 1)

    def test_rule4_betweenness_with_mini_child(self):
        # p = mini W; f = W's mini child X (a rule 6 output). Inserting
        # between them via rule 4 strips X's final disambiguator: the new
        # identifier [.. (0:W) 1 (0:d)] names a mini under the *major*
        # left child of X's position node and must land strictly between
        # W and X. (Under the paper's literal element order it would land
        # after X — the deviation DESIGN.md 3.1 documents.)
        w = pid(1, 0, (0, 1))
        x = pid(1, 0, (0, 1), (1, 2))
        new = pid(1, 0, (0, 1), 1, (0, 3))
        assert w < x
        assert w < new < x
        # Appending after X (rule 7, stripped) lands after it:
        after = pid(1, 0, (0, 1), 1, (1, 3))
        assert x < after

    def test_section_3_2_scenario_through_the_api(self):
        # The paper's worked example (Y between c and d, W concurrent
        # with Y, X between W and Y) — replayed through the real
        # allocator. The concrete identifiers differ from Figure 3's
        # (DESIGN.md 3.1: the figure's shape relies on an element order
        # that contradicts Algorithm 1), but the *document orders* the
        # example demonstrates must all hold.
        from repro.core.treedoc import Treedoc

        site_a, site_b = Treedoc(site=1, mode="sdis"), Treedoc(site=2, mode="sdis")
        for index, atom in enumerate("abcdef"):
            op = site_a.insert(index, atom)
            site_b.apply(op)
        # Concurrently: A inserts Y between c and d, B inserts W there.
        op_y = site_a.insert(3, "Y")
        op_w = site_b.insert(3, "W")
        site_a.apply(op_w)
        site_b.apply(op_y)
        assert site_a.text() == site_b.text()
        assert set(site_a.text()[3:5]) == {"W", "Y"}
        # Then X between W and Y (wherever they converged).
        first = site_a.text().index("W") if site_a.text().index("W") < site_a.text().index("Y") else site_a.text().index("Y")
        op_x = site_a.insert(first + 1, "X")
        site_b.apply(op_x)
        assert site_a.text() == site_b.text()
        middle = site_a.text()[3:6]
        assert middle in ("WXY", "YXW")


class TestOrderLaws:
    def test_equality_is_element_equality(self):
        assert pid(1, (0, 2)) == pid(1, (0, 2))
        assert pid(1, (0, 2)) != pid(1, (0, 3))
        assert pid(1) != pid((1, 1))

    def test_hashable_consistent_with_eq(self):
        assert hash(pid(1, 0)) == hash(pid(1, 0))
        assert len({pid(1, 0), pid(1, 0), pid(0)}) == 2


class TestStructuralRelations:
    def test_prefix(self):
        assert pid(1).is_prefix_of(pid(1, 0))
        assert not pid(1).is_prefix_of(pid(1))
        assert not pid((1, 2)).is_prefix_of(pid(1, 0))

    def test_ancestor_loose_final_element(self):
        # The paper's worked example: c = [(1:dC)] is an ancestor of
        # d = [1 (0:dD)] — the final disambiguator matches loosely.
        assert pid((1, 3)).is_ancestor_of(pid(1, (0, 4)))
        assert pid(1).is_ancestor_of(pid((1, 3), (0, 4)))

    def test_ancestor_interior_elements_strict(self):
        # A different interior disambiguator is a different subtree, and
        # an interior disambiguated route (through a mini-node's child)
        # is distinct from the plain route through the major node.
        assert not pid((1, 3), (0, 4)).is_ancestor_of(pid(1, (0, 5), 1))
        assert not pid((1, 3), (0, 4)).is_ancestor_of(pid(1, (0, 4), 1))
        assert pid((1, 3), (0, 4)).is_ancestor_of(pid((1, 3), (0, 4), 1))
        assert pid((1, 3), (0, 4)).is_ancestor_of(pid((1, 3), 0, (1, 5)))

    def test_mini_siblings(self):
        assert pid(1, (0, 1)).is_mini_sibling_of(pid(1, (0, 2)))
        assert not pid(1, (0, 1)).is_mini_sibling_of(pid(1, (0, 1)))
        assert not pid(1, (0, 1)).is_mini_sibling_of(pid(1, (1, 2)))
        assert not pid(1, (0, 1)).is_mini_sibling_of(pid(0, (0, 2)))


class TestSizes:
    def test_size_bits_counts_elements_and_disambiguators(self):
        # 2 bits per element + 48 per SDIS.
        assert pid(1, 0).size_bits == 4
        assert pid(1, (0, 1)).size_bits == 4 + 48
        udis_path = PosID([PathElement(1, Udis(0, 1))])
        assert udis_path.size_bits == 2 + 80


class TestConstruction:
    def test_from_bits(self):
        assert pid(1, 0, (1, 4)) == PosID.from_bits([1, 0, 1], Sdis(4))

    def test_with_last_plain(self):
        assert pid(1, (0, 4)).with_last_plain() == pid(1, 0)

    def test_child(self):
        assert ROOT.child(RIGHT, Sdis(2)) == pid((1, 2))

    def test_empty_path_guards(self):
        with pytest.raises(PathError):
            ROOT.with_last_plain()
        with pytest.raises(PathError):
            _ = ROOT.last
        with pytest.raises(PathError):
            _ = ROOT.parent

    def test_bad_bit_rejected(self):
        with pytest.raises(PathError):
            PathElement(2)

    def test_parse_round_trip(self):
        for posid in (ROOT, pid(1, 0), pid(1, (0, 3)),
                      PosID([PathElement(0, Udis(2, 7)), PathElement(1)])):
            assert parse_posid(repr(posid)) == posid
