"""The shared run/segment codec: shapes, detection, state round trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core.node import canonical_posids
from repro.core.ops import DeleteOp, InsertOp
from repro.core.path import LEFT, PathElement, PosID
from repro.core.runs import (
    AtomRun,
    AtomTable,
    CANONICAL,
    PREFIX,
    find_runs,
    iter_state_segments,
    load_state_segments,
    prefix_path_bits,
    prefix_posids,
    read_run_record,
    run_from_ops,
    write_run_record,
)
from repro.core.tree import TreedocTree
from repro.core.treedoc import Treedoc
from repro.errors import EncodingError, TreeError
from repro.util.bits import BitReader, BitWriter


BASE = (PathElement(1),)


class TestShapes:
    @given(st.integers(1, 200))
    def test_prefix_posids_match_single_generator(self, count):
        batched = prefix_posids(BASE, count)
        for index, posid in enumerate(batched):
            bits = prefix_path_bits(count, index)
            assert posid == PosID(BASE + tuple(PathElement(b) for b in bits))

    @given(st.integers(1, 200))
    def test_prefix_posids_are_ordered(self, count):
        posids = prefix_posids(BASE, count)
        assert all(a < b for a, b in zip(posids, posids[1:]))

    @given(st.integers(1, 64))
    def test_full_trees_make_shapes_agree(self, depth_pow):
        # A full complete tree (n = 2^d - 1) is both shapes at once.
        count = (1 << max(1, depth_pow.bit_length() % 6 or 1)) - 1
        assert canonical_posids(BASE, count) == prefix_posids(BASE, count)

    def test_prefix_matches_place_run_allocation(self):
        # The prefix generator must reproduce the allocator's grouped
        # layout exactly: that is what makes local bursts runs.
        for count in (4, 5, 7, 12, 31, 40):
            doc = Treedoc(site=3)
            batch = doc.insert_text(0, [f"a{i}" for i in range(count)])
            run = run_from_ops(batch.ops)
            assert run is not None, count
            assert run.shape == PREFIX
            assert [op.posid for op in run.insert_ops(3)] == [
                op.posid for op in batch.ops
            ]


class TestDetection:
    def test_udis_burst_detected_with_consecutive_counters(self):
        doc = Treedoc(site=7)
        batch = doc.insert_text(0, list("abcdefgh"))
        run = run_from_ops(batch.ops)
        assert run is not None
        assert run.dis == ("udis", 7, 0)
        assert run.atoms == tuple("abcdefgh")

    def test_sdis_burst_detected(self):
        doc = Treedoc(site=5, mode="sdis")
        batch = doc.insert_text(0, list("abcdefgh"))
        run = run_from_ops(batch.ops)
        assert run is not None
        assert run.dis == ("sdis", 5)

    def test_tampered_counter_rejected(self):
        doc = Treedoc(site=7)
        ops = list(doc.insert_text(0, list("abcdefgh")).ops)
        ops[3], ops[4] = ops[4], ops[3]  # out of document order
        assert run_from_ops(ops) is None

    def test_short_windows_not_runs(self):
        doc = Treedoc(site=7)
        batch = doc.insert_text(0, list("abc"))
        assert run_from_ops(batch.ops) is None  # below RUN_MIN_ATOMS

    def test_replace_range_segments(self):
        doc = Treedoc(site=7)
        doc.insert_text(0, list("0123456789"))
        batch = doc.replace_range(2, 5, list("REPLACED"))
        segments = find_runs(batch.ops, batch.origin)
        kinds = [type(s).__name__ for s in segments]
        # Three singleton deletes, then the insert burst as one run.
        assert kinds == ["DeleteOp", "DeleteOp", "DeleteOp", "AtomRun"]
        run = segments[-1]
        assert [op.posid for op in run.insert_ops(batch.origin)] == [
            op.posid for op in batch.ops[3:]
        ]

    def test_canonical_region_detected_from_expanded_ops(self):
        run = AtomRun(BASE, tuple("abcdefg"), CANONICAL, None)
        back = run_from_ops(run.insert_ops(1))
        assert back is not None
        assert back.posids() == run.posids()
        assert back.atoms == run.atoms


class TestRunRecord:
    def test_record_round_trip(self):
        table = AtomTable()
        first = table.add_run(["x", "y", "z"])
        writer = BitWriter()
        write_run_record(writer, 3, first)
        count, ref = read_run_record(BitReader(writer.getvalue(),
                                               writer.bit_length))
        assert (count, ref) == (3, first)
        assert table.get_run(ref, count) == ["x", "y", "z"]

    def test_out_of_bounds_rejected(self):
        table = AtomTable()
        table.add("only")
        with pytest.raises(EncodingError):
            table.get_run(0, 2)
        with pytest.raises(EncodingError):
            table.get(5)


class TestRunModel:
    def test_rejects_root_region_and_empty_atoms(self):
        with pytest.raises(TreeError):
            AtomRun((), ("a",))
        with pytest.raises(TreeError):
            AtomRun(BASE, ())

    def test_rejects_disambiguated_base_tail(self):
        from repro.core.disambiguator import Udis

        with pytest.raises(TreeError):
            AtomRun((PathElement(1, Udis(0, 1)),), ("a",))


def _harvest_and_load(doc):
    segments = iter_state_segments(doc.tree, doc.site)
    fresh = TreedocTree()
    load_state_segments(fresh, segments, keep_tombstones=doc.keeps_tombstones)
    return segments, fresh


class TestStateSegments:
    def test_collapsed_doc_round_trips_into_leaves(self):
        from repro.core.path import ROOT

        doc = Treedoc(site=1, mode="sdis")
        doc.insert_text(0, [f"l{i}" for i in range(64)])
        doc.note_revision()
        doc.flatten_local(ROOT)
        doc.collapse_cold(min_age=0, min_atoms=8)
        assert doc.array_leaf_count > 0
        segments, fresh = _harvest_and_load(doc)
        assert any(isinstance(s, AtomRun) for s in segments)
        assert fresh.atoms() == doc.tree.atoms()
        assert fresh.posids() == doc.tree.posids()
        assert sum(1 for e in fresh.iter_entries()
                   if type(e).__name__ == "ArrayLeaf") > 0
        fresh.check_invariants()

    def test_tombstones_survive_state_transfer(self):
        doc = Treedoc(site=1, mode="sdis")
        doc.insert_text(0, list("abcdefghij"))
        doc.delete_range(2, 5)
        segments, fresh = _harvest_and_load(doc)
        assert any(isinstance(s, DeleteOp) for s in segments)
        assert fresh.atoms() == doc.tree.atoms()
        assert fresh.id_length == doc.tree.id_length
        fresh.check_invariants()

    def test_tombstone_segment_refused_under_udis(self):
        doc = Treedoc(site=1, mode="sdis")
        doc.insert_text(0, list("abcdefghij"))
        doc.delete_range(2, 5)
        segments = iter_state_segments(doc.tree, doc.site)
        with pytest.raises(TreeError):
            load_state_segments(TreedocTree(), segments,
                                keep_tombstones=False)

    def test_load_requires_empty_tree(self):
        doc = Treedoc(site=1)
        doc.insert_text(0, list("abcd"))
        segments = iter_state_segments(doc.tree, doc.site)
        other = Treedoc(site=2)
        other.insert_text(0, list("x"))
        with pytest.raises(TreeError):
            load_state_segments(other.tree, segments, keep_tombstones=False)

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_arbitrary_two_site_docs_round_trip(self, data):
        # Concurrent editing (mini-nodes), deletes (tombstones), local
        # flatten and collapse: the harvested segments must rebuild an
        # identifier-identical tree, whatever mixture results.
        a = Treedoc(site=1, mode="sdis")
        b = Treedoc(site=2, mode="sdis")
        script = data.draw(st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 999),
                      st.text("xyz", min_size=1, max_size=6)),
            min_size=1, max_size=12,
        ))
        for kind, where, text in script:
            editor, other = (a, b) if where % 2 else (b, a)
            index = where % (len(editor) + 1)
            if kind == 0 or len(editor) < 2:
                batch = editor.insert_text(index, list(text))
            elif kind == 1:
                end = min(len(editor), index + 2)
                start = min(index, end - 1)
                batch = editor.delete_range(start, end)
            else:
                end = min(len(editor), index + 2)
                start = min(index, end - 1)
                batch = editor.replace_range(start, end, list(text))
            other.apply_batch(batch)
        a.note_revision()
        a.collapse_cold(min_age=0, min_atoms=4)
        segments, fresh = _harvest_and_load(a)
        assert fresh.atoms() == a.tree.atoms()
        assert fresh.posids() == a.tree.posids()
        assert fresh.live_length == a.tree.live_length
        assert fresh.id_length == a.tree.id_length
        fresh.check_invariants()


class TestHuskGc:
    def test_explode_fully_detaches_the_husk(self):
        from repro.core.path import ROOT

        doc = Treedoc(site=1, mode="sdis")
        doc.insert_text(0, [f"l{i}" for i in range(32)])
        doc.note_revision()
        doc.flatten_local(ROOT)
        doc.collapse_cold(min_age=0, min_atoms=8)
        leaf = doc.tree.array_leaves()[0]
        leaf.explode()
        assert leaf.parent is None
        assert leaf.tree is None  # no backref: the husk cannot pin the tree
        with pytest.raises(TreeError):
            leaf.explode()

    def test_collapse_purges_stale_touch_stamps(self):
        # A *subtree* flatten stamps the rebuilt region root
        # (_touch_region); once that region goes cold and collapses,
        # the freed node's id() must leave the stamp table instead of
        # lingering forever.
        from repro.core.array_region import find_collapsible

        doc = Treedoc(site=1, mode="sdis")
        doc.insert_text(0, [f"l{i}" for i in range(64)])
        doc.note_revision()
        doc.note_revision()
        op = doc.flatten_cold(min_age=1, min_slots=8)
        assert op is not None
        doc.note_revision()
        doc.note_revision()
        regions = find_collapsible(doc.tree, doc._touch_stamps, doc.revision,
                                   min_age=1, min_atoms=8)
        assert regions
        freed_ids = {
            id(node) for _, root, _, _ in regions for node in root.iter_nodes()
        }
        assert freed_ids & set(doc._touch_stamps)
        doc.collapse_cold(min_age=1, min_atoms=8)
        assert not freed_ids & set(doc._touch_stamps)
        assert not freed_ids & set(doc._touch_seen)
