"""OpBatch semantics and the Treedoc batch fast paths."""

import random

import pytest

from repro.core.ops import DeleteOp, InsertOp, OpBatch, batch_digest
from repro.core.path import ROOT
from repro.core.treedoc import Treedoc
from repro.errors import TreeError

MODES = ["udis", "sdis"]


class TestOpBatch:
    def test_build_computes_digest_and_range(self):
        doc = Treedoc(site=1)
        batch = doc.insert_text(0, "abc")
        assert len(batch) == 3
        assert batch.origin == 1
        assert (batch.seq_start, batch.seq_end) == (0, 3)
        assert batch.digest == batch_digest(batch.ops)
        assert batch.verify()

    def test_tampering_breaks_verify(self):
        doc = Treedoc(site=1)
        batch = doc.insert_text(0, "abc")
        forged = OpBatch(batch.ops[:2], batch.origin, batch.seq_start,
                         batch.seq_end, batch.digest)
        assert not forged.verify()

    def test_merge_requires_same_origin_and_adjacency(self):
        doc = Treedoc(site=1)
        first = doc.insert_text(0, "ab")
        second = doc.insert_text(2, "cd")
        merged = first.merge(second)
        assert len(merged) == 4
        assert (merged.seq_start, merged.seq_end) == (0, 4)
        assert merged.verify()
        with pytest.raises(ValueError):
            second.merge(first)  # not adjacent in that order
        other = Treedoc(site=2).insert_text(0, "x")
        with pytest.raises(ValueError):
            first.merge(other)  # different origin

    def test_empty_batch_is_falsy(self):
        doc = Treedoc(site=1)
        batch = doc.insert_text(0, "")
        assert not batch
        assert len(batch) == 0
        assert batch.verify()

    def test_iteration_yields_ops_in_order(self):
        doc = Treedoc(site=1)
        batch = doc.insert_text(0, "xyz")
        assert [op.atom for op in batch] == ["x", "y", "z"]
        assert all(isinstance(op, InsertOp) for op in batch)

    def test_seq_ranges_cover_every_local_op(self):
        doc = Treedoc(site=1)
        doc.insert(0, "a")          # seq 0
        batch = doc.insert_text(1, "bc")   # seqs 1, 2
        assert (batch.seq_start, batch.seq_end) == (1, 3)
        doc.delete(0)               # seq 3
        batch = doc.delete_range(0, 2)     # seqs 4, 5
        assert (batch.seq_start, batch.seq_end) == (4, 6)


@pytest.mark.parametrize("mode", MODES)
class TestLocalBatchEdits:
    def test_insert_text_matches_singles(self, mode):
        batched = Treedoc(site=1, mode=mode)
        singles = Treedoc(site=1, mode=mode, balanced=False)
        batched.insert_text(0, "hello world")
        for i, c in enumerate("hello world"):
            singles.insert(i, c)
        assert batched.text() == singles.text() == "hello world"
        batched.check()

    def test_delete_range_matches_delete_loop(self, mode):
        a = Treedoc(site=1, mode=mode)
        b = Treedoc(site=1, mode=mode)
        a.insert_text(0, "hello world")
        b.insert_text(0, "hello world")
        batch = a.delete_range(2, 7)
        singles = [b.delete(2) for _ in range(5)]
        assert a.text() == b.text() == "heorld"
        assert [op.posid for op in batch.ops] == [op.posid for op in singles]
        a.check()

    def test_replace_range_is_one_batch(self, mode):
        doc = Treedoc(site=1, mode=mode)
        doc.insert_text(0, "colour")
        batch = doc.replace_range(0, 6, "color")
        assert doc.text() == "color"
        kinds = [op.kind for op in batch.ops]
        assert kinds == ["delete"] * 6 + ["insert"] * 5
        assert batch.verify()
        doc.check()

    def test_delete_range_bounds_checked(self, mode):
        doc = Treedoc(site=1, mode=mode)
        doc.insert_text(0, "abc")
        with pytest.raises(IndexError):
            doc.delete_range(1, 5)
        with pytest.raises(IndexError):
            doc.delete_range(-1, 2)

    def test_empty_ranges_are_noops(self, mode):
        doc = Treedoc(site=1, mode=mode)
        doc.insert_text(0, "abc")
        assert len(doc.delete_range(1, 1)) == 0
        assert len(doc.insert_text(2, "")) == 0
        assert doc.text() == "abc"


@pytest.mark.parametrize("mode", MODES)
class TestApplyBatch:
    def _random_batches(self, mode, seed, steps=80):
        rng = random.Random(seed)
        source = Treedoc(site=1, mode=mode)
        batches = []
        for step in range(steps):
            roll = rng.random()
            if len(source) > 8 and roll < 0.3:
                start = rng.randrange(len(source) - 4)
                batches.append(
                    source.delete_range(start, start + rng.randint(1, 4)))
            elif len(source) > 8 and roll < 0.45:
                start = rng.randrange(len(source) - 4)
                batches.append(source.replace_range(
                    start, start + 2, [f"r{step}"]))
            else:
                index = rng.randint(0, len(source))
                batches.append(source.insert_text(
                    index, [f"s{step}.{k}"
                            for k in range(rng.randint(1, 12))]))
        return source, batches

    def test_apply_batch_equals_sequential_apply(self, mode):
        source, batches = self._random_batches(mode, seed=101)
        fast = Treedoc(site=2, mode=mode)
        slow = Treedoc(site=3, mode=mode)
        for batch in batches:
            fast.apply_batch(batch)
            for op in batch.ops:
                slow.apply(op)
        assert fast.atoms() == slow.atoms() == source.atoms()
        fast.check()
        slow.check()

    def test_apply_batch_is_idempotent_for_duplicates(self, mode):
        source, batches = self._random_batches(mode, seed=55, steps=20)
        replica = Treedoc(site=2, mode=mode)
        for batch in batches:
            replica.apply_batch(batch)
            replica.apply_batch(batch)  # duplicate delivery
        assert replica.atoms() == source.atoms()
        replica.check()

    def test_flatten_inside_batch_flushes_bulk_section(self, mode):
        doc = Treedoc(site=1, mode=mode)
        ops = []
        ops.extend(doc.insert_text(0, "abcdef").ops)
        ops.extend(doc.delete_range(1, 3).ops)
        doc.note_revision()
        ops.append(doc.flatten_local(ROOT))
        ops.extend(doc.insert_text(0, "xy").ops)
        replica = Treedoc(site=2, mode=mode)
        replica.apply_batch(OpBatch.build(ops, 1, 0))
        assert replica.atoms() == doc.atoms()
        replica.check()

    def test_apply_accepts_batches(self, mode):
        source = Treedoc(site=1, mode=mode)
        batch = source.insert_text(0, "abc")
        replica = Treedoc(site=2, mode=mode)
        replica.apply(batch)
        assert replica.text() == "abc"


class TestBulkSections:
    def test_nested_bulk_rejected(self):
        doc = Treedoc(site=1)
        doc.tree.begin_bulk()
        with pytest.raises(TreeError):
            doc.tree.begin_bulk()
        doc.tree.end_bulk()

    def test_end_bulk_without_begin_is_harmless(self):
        doc = Treedoc(site=1)
        doc.tree.end_bulk()
        doc.insert_text(0, "ok")
        assert doc.text() == "ok"

    def test_counts_correct_after_interleaved_bulk_edits(self):
        doc = Treedoc(site=1, mode="udis")
        doc.insert_text(0, [f"a{i}" for i in range(64)])
        doc.delete_range(10, 40)
        doc.insert_text(5, [f"b{i}" for i in range(20)])
        assert len(doc) == 64 - 30 + 20
        doc.check()  # recounts from scratch and compares
