"""The Treedoc facade: local editing, remote replay, queries."""

import pytest

from repro.core.ops import DeleteOp, InsertOp
from repro.core.treedoc import Treedoc
from repro.errors import MissingAtomError, TreeError


class TestLocalEditing:
    def test_insert_returns_broadcastable_op(self):
        doc = Treedoc(site=7)
        op = doc.insert(0, "x")
        assert isinstance(op, InsertOp)
        assert op.origin == 7 and op.atom == "x"

    def test_text_and_atoms(self):
        doc = Treedoc(site=1)
        for i, c in enumerate("hello"):
            doc.insert(i, c)
        assert doc.text() == "hello"
        assert doc.atoms() == list("hello")
        assert doc.text("-") == "h-e-l-l-o"
        assert len(doc) == 5

    def test_atom_at_and_posid_at(self):
        doc = Treedoc(site=1)
        doc.insert(0, "a")
        doc.insert(1, "b")
        assert doc.atom_at(1) == "b"
        assert doc.posid_at(0) < doc.posid_at(1)

    def test_insert_out_of_range(self):
        doc = Treedoc(site=1)
        with pytest.raises(IndexError):
            doc.insert(1, "x")
        with pytest.raises(IndexError):
            doc.insert(-1, "x")

    def test_delete_out_of_range(self):
        doc = Treedoc(site=1)
        with pytest.raises(IndexError):
            doc.delete(0)

    def test_delete_posid(self):
        doc = Treedoc(site=1)
        doc.insert(0, "a")
        posid = doc.posid_at(0)
        op = doc.delete_posid(posid)
        assert isinstance(op, DeleteOp) and op.posid == posid
        assert len(doc) == 0
        with pytest.raises(MissingAtomError):
            doc.delete_posid(posid)

    def test_insert_run_empty_is_noop(self):
        doc = Treedoc(site=1)
        assert doc.insert_run(0, []) == []


class TestRemoteReplay:
    def test_ops_replay_on_fresh_replica(self):
        source = Treedoc(site=1)
        ops = [source.insert(i, c) for i, c in enumerate("shared text")]
        ops.append(source.delete(0))
        replica = Treedoc(site=2)
        replica.apply_all(ops)
        assert replica.text() == source.text() == "hared text"

    def test_unknown_operation_rejected(self):
        doc = Treedoc(site=1)
        with pytest.raises(TreeError):
            doc.apply("not an op")

    def test_modes_must_match_for_tombstone_semantics(self):
        source = Treedoc(site=1, mode="sdis")
        ops = [source.insert(i, c) for i, c in enumerate("abc")]
        ops.append(source.delete(1))
        replica = Treedoc(site=2, mode="sdis")
        replica.apply_all(ops)
        assert replica.tree.id_length == 3  # tombstone retained
        udis_replica = Treedoc(site=3, mode="udis")
        udis_replica.apply_all(ops)
        assert udis_replica.tree.id_length == 2  # discarded


class TestCommutativity:
    """Section 2.2's case analysis, as concrete tests."""

    def _two_synced_replicas(self, mode="udis"):
        a, b = Treedoc(site=1, mode=mode), Treedoc(site=2, mode=mode)
        for op in [a.insert(i, c) for i, c in enumerate("base")]:
            b.apply(op)
        return a, b

    def test_concurrent_inserts_commute(self):
        a, b = self._two_synced_replicas()
        op_a = a.insert(2, "A")
        op_b = b.insert(2, "B")
        a.apply(op_b)
        b.apply(op_a)
        assert a.text() == b.text()

    def test_concurrent_insert_and_delete_commute(self):
        a, b = self._two_synced_replicas()
        op_a = a.insert(1, "A")
        op_b = b.delete(3)
        a.apply(op_b)
        b.apply(op_a)
        assert a.text() == b.text()

    def test_concurrent_deletes_of_same_atom_commute(self):
        for mode in ("udis", "sdis"):
            a, b = self._two_synced_replicas(mode)
            op_a = a.delete(1)
            op_b = b.delete(1)
            assert op_a.posid == op_b.posid
            a.apply(op_b)  # idempotent second delete
            b.apply(op_a)
            assert a.text() == b.text() == "bse"

    def test_insert_happens_before_its_delete(self):
        # An insert and a delete of the same PosID can never be
        # concurrent; delivered in causal order they always apply.
        a, b = self._two_synced_replicas()
        op_ins = a.insert(0, "X")
        op_del = a.delete(0)
        b.apply(op_ins)
        b.apply(op_del)
        assert b.text() == a.text() == "base"

    def test_three_replicas_permuted_delivery(self):
        import itertools

        a = Treedoc(site=1)
        base_ops = [a.insert(i, c) for i, c in enumerate("xyz")]
        op1 = a.insert(1, "1")
        op2 = a.insert(3, "2")
        op3 = a.delete(0)
        reference = a.text()
        # op1..op3 originate at the same site, so their causal order is
        # fixed; but independent ops from different sites may interleave:
        b = Treedoc(site=2)
        c1 = Treedoc(site=3)
        for replica in (b, c1):
            replica.apply_all(base_ops)
        ins_b = b.insert(2, "B")
        ins_c = c1.insert(2, "C")
        for ops in itertools.permutations([ins_b, ins_c]):
            replica = Treedoc(site=9)
            replica.apply_all(base_ops)
            replica.apply_all(ops)
            replica.check()
        b.apply(ins_c)
        c1.apply(ins_b)
        assert b.text() == c1.text()
        assert reference  # silence unused warning


class TestRevisionBookkeeping:
    def test_note_revision_monotonic(self):
        doc = Treedoc(site=1)
        assert doc.note_revision() == 1
        assert doc.note_revision() == 2

    def test_repr_mentions_site_and_size(self):
        doc = Treedoc(site=12, mode="sdis")
        doc.insert(0, "a")
        text = repr(doc)
        assert "12" in text and "sdis" in text
