"""Wire encoding: bit-level round trips and size accounting."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core import encoding
from repro.core.disambiguator import Sdis, Udis
from repro.core.ops import DeleteOp, FlattenOp, InsertOp
from repro.core.path import PathElement, PosID, ROOT
from repro.errors import EncodingError
from repro.util.bits import BitReader, BitWriter
from tests.conftest import posid_strategy


class TestBitPrimitives:
    def test_bit_round_trip(self):
        writer = BitWriter()
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1]
        for bit in bits:
            writer.write_bit(bit)
        reader = BitReader(writer.getvalue(), writer.bit_length)
        assert [reader.read_bit() for _ in bits] == bits

    @given(st.integers(0, 2**30), st.integers(31, 40))
    def test_fixed_width_round_trip(self, value, width):
        writer = BitWriter()
        writer.write_bits(value, width)
        assert BitReader(writer.getvalue()).read_bits(width) == value

    @given(st.integers(1, 10_000))
    def test_elias_gamma_round_trip(self, value):
        writer = BitWriter()
        writer.write_elias_gamma(value)
        assert BitReader(writer.getvalue()).read_elias_gamma() == value

    def test_value_too_wide_rejected(self):
        writer = BitWriter()
        with pytest.raises(EncodingError):
            writer.write_bits(4, 2)

    def test_exhausted_stream_raises(self):
        reader = BitReader(b"", 0)
        with pytest.raises(EncodingError):
            reader.read_bit()


class TestPosidEncoding:
    @given(posid_strategy)
    @settings(max_examples=200)
    def test_round_trip(self, posid):
        data, bits = encoding.encode_posid(posid)
        assert encoding.decode_posid(data, bits) == posid

    def test_sdis_and_udis_disambiguators(self):
        sdis_path = PosID([PathElement(1, Sdis(42))])
        udis_path = PosID([PathElement(0, Udis(7, 42))])
        for posid in (sdis_path, udis_path, ROOT):
            data, bits = encoding.encode_posid(posid)
            assert encoding.decode_posid(data, bits) == posid

    def test_size_accounting_matches_posid_size_bits(self):
        # The Table 1 metric (PosID.size_bits) must equal the wire
        # format's element payload, excluding framing: the gamma length
        # prefix and one UDIS/SDIS tag bit per disambiguator.
        posid = PosID([PathElement(1, Sdis(3)), PathElement(0),
                       PathElement(1, Udis(2, 5))])
        _, framed_bits = encoding.encode_posid(posid)
        length_prefix = BitWriter()
        length_prefix.write_elias_gamma(posid.depth + 1)
        dis_tags = sum(1 for e in posid if e.dis is not None)
        assert (
            framed_bits - length_prefix.bit_length - dis_tags
            == posid.size_bits
        )


class TestOperationEncoding:
    def _sample_ops(self):
        posid = PosID([PathElement(1, Udis(3, 9)), PathElement(0)])
        return [
            InsertOp(posid, "hello world", 9),
            DeleteOp(posid, 9),
            FlattenOp(PosID([PathElement(1)]), "ab" * 32, 9),
        ]

    def test_round_trips(self):
        for op in self._sample_ops():
            data, bits = encoding.encode_operation(op)
            back = encoding.decode_operation(data, bits)
            assert back.kind == op.kind
            assert back.origin == op.origin

    def test_insert_carries_atom(self):
        op = self._sample_ops()[0]
        back = encoding.decode_operation(*encoding.encode_operation(op))
        assert back.atom == "hello world"
        assert back.posid == op.posid

    def test_network_cost_dominated_by_posid_and_atom(self):
        # Section 5.2: the network cost of an edit is a PosID plus, for
        # inserts, the atom.
        posid = PosID([PathElement(1, Sdis(1))])
        insert_cost = encoding.operation_cost_bits(InsertOp(posid, "x" * 40, 1))
        delete_cost = encoding.operation_cost_bits(DeleteOp(posid, 1))
        assert insert_cost > delete_cost
        assert insert_cost - delete_cost >= 40 * 8

    def test_unicode_atom(self):
        op = InsertOp(PosID([PathElement(1, Sdis(1))]), "héllo ⊕ wörld", 1)
        back = encoding.decode_operation(*encoding.encode_operation(op))
        assert back.atom == "héllo ⊕ wörld"
