"""Allocation: Algorithm 1's rules and the section 4.1 balancing."""

import math
import random

import pytest

from repro.core.alloc import Allocator
from repro.core.disambiguator import DisambiguatorFactory, Sdis
from repro.core.node import MiniNode, slot_posid
from repro.core.path import PosID, ROOT
from repro.core.tree import TreedocTree
from repro.core.treedoc import Treedoc


def build(mode="sdis", balanced=True):
    doc = Treedoc(site=1, mode=mode, balanced=balanced)
    return doc


class TestAlgorithmOneRules:
    """Each rule exercised structurally, checking betweenness."""

    def _insert_between_posids(self, doc, left_index, atom):
        before = doc.posids()
        op = doc.insert(left_index, atom)
        after = doc.posids()
        assert after == sorted(after), "identifier order broken"
        return op

    def test_rule4_new_left_child_of_f(self):
        doc = build(balanced=False)
        doc.insert(0, "p")
        doc.insert(1, "f")  # p's right child region
        # inserting between p and f: p is f's ancestor -> rule 4
        doc.insert(1, "x")
        assert doc.text() == "pxf"
        ids = doc.posids()
        assert ids == sorted(ids)

    def test_rule5_rule7_strip_to_major_right_child(self):
        doc = build(balanced=False)
        doc.insert(0, "a")
        doc.insert(1, "b")
        # b's PosID routes through the major node, not through mini a:
        # rules 5/7 strip the disambiguator.
        id_b = doc.posid_at(1)
        assert id_b.elements[-2].dis is None or id_b.depth == 1

    def test_rule6_child_of_mini_between_siblings(self):
        # Two sites insert concurrently at the same place -> mini-
        # siblings; inserting between them descends under the first mini.
        a, b = Treedoc(site=1, mode="sdis"), Treedoc(site=2, mode="sdis")
        for op in [a.insert(0, "x"), a.insert(1, "y")]:
            b.apply(op)
        op_a = a.insert(1, "1")
        op_b = b.insert(1, "2")
        a.apply(op_b)
        b.apply(op_a)
        assert a.text() == b.text()
        # now insert between the two concurrent atoms at site a
        middle = a.text().index("1" if a.text().index("1") < a.text().index("2") else "2") + 1
        a.insert(middle, "m")
        assert a.text()[middle] == "m"
        ids = a.posids()
        assert ids == sorted(ids)
        a.check()

    def test_empty_document_first_insert(self):
        doc = build()
        op = doc.insert(0, "first")
        assert op.posid.depth == 1
        assert op.posid.elements[0].bit == 1


class TestBalancing:
    def test_append_growth_is_logarithmic(self):
        doc = build(balanced=True)
        n = 200
        for i in range(n):
            doc.insert(i, i)
        # With log-growth + slot reuse, appends yield O(log^2 n)-ish
        # depth rather than the naive chain's O(n).
        assert doc.tree.height <= 4 * math.ceil(math.log2(n)) ** 2
        doc.check()

    def test_naive_append_grows_linearly(self):
        doc = build(balanced=False)
        for i in range(50):
            doc.insert(i, i)
        assert doc.tree.height >= 25  # the paths grow with each atom

    def test_growth_reuses_empty_positions_in_infix_order(self):
        # Figure 5: after growing, consecutive appends consume the empty
        # positions of the grown subtree; cycle k holds 2^k - 1 atoms at
        # depth ~sum(k), so append depth is O(log^2 n) — not the naive
        # chain's O(n).
        doc = build(balanced=True)
        n = 64
        for i in range(n):
            doc.insert(i, i)
        depths = [doc.posid_at(i).depth for i in range(n)]
        assert max(depths) <= math.ceil(math.log2(n)) ** 2
        # and the growth subtrees really are being consumed: many atoms
        # share each grown region rather than chaining one-per-level.
        assert sorted(set(depths))[:3] == [1, 2, 3]
        doc.check()

    def test_insert_run_builds_minimal_subtree(self):
        doc = build(balanced=True)
        doc.insert_run(0, list(range(31)))
        # A 31-atom run fits a depth-5 complete subtree (+1 for the
        # run's anchor position).
        assert doc.tree.height <= 6
        assert doc.atoms() == list(range(31))
        doc.check()

    def test_run_betweenness(self):
        doc = build(balanced=True)
        doc.insert_run(0, ["a", "z"])
        doc.insert_run(1, ["b", "c", "d", "e"])
        assert doc.text() == "abcdez"
        doc.check()


class TestSdisSafety:
    def test_no_remint_of_tombstoned_identifier(self):
        # Section 3.3.2's scenario: delete then insert at the same place
        # from the same site must mint a fresh identifier.
        doc = build(mode="sdis", balanced=True)
        for i, c in enumerate("abc"):
            doc.insert(i, c)
        dead = doc.delete(1)
        op = doc.insert(1, "B")
        assert op.posid != dead.posid
        assert doc.text() == "aBc"
        doc.check()

    def test_repeated_delete_insert_cycles_stay_sound(self):
        doc = build(mode="sdis", balanced=True)
        doc.insert(0, "a")
        doc.insert(1, "b")
        seen = {doc.posid_at(0), doc.posid_at(1)}
        for cycle in range(20):
            doc.delete(1)
            op = doc.insert(1, f"b{cycle}")
            assert op.posid not in seen
            seen.add(op.posid)
        doc.check()


class TestAllocatorDirect:
    def test_place_between_returns_empty_mini(self):
        tree = TreedocTree()
        allocator = Allocator(tree)
        slot = allocator.place_between(None, None, Sdis(1))
        assert isinstance(slot, MiniNode)
        assert slot.state == "empty"

    def test_sequential_fill_is_sorted(self):
        tree = TreedocTree()
        allocator = Allocator(tree, balanced=True)
        factory = DisambiguatorFactory(site=1, mode="udis")
        previous = None
        for n in range(100):
            slot = allocator.place_between(previous, None, factory.fresh())
            tree.set_live(slot, n)
            previous = slot
        posids = tree.posids()
        assert posids == sorted(posids)
        assert tree.atoms() == list(range(100))
