"""Hot/cold mechanics: partial explode, tombstone-bitmap leaves, the
disk-v3 sidecar, re-collapse hysteresis and the incremental sweep
(DESIGN.md section 12).

Every identity assertion compares against a plain replica with the
identical op history: the mixed representation must stay atom- and
identifier-identical through every one of these paths.
"""

from __future__ import annotations

import pytest

from repro.core import disk
from repro.core.path import ROOT
from repro.core.tree import TreedocTree
from repro.core.treedoc import Treedoc
from repro.errors import EncodingError
from repro.metrics.overhead import measure_tree


def make_pair(n, mode="sdis", min_atoms=8):
    """A collapsed mixed doc and a plain replica, identical histories."""
    mixed = Treedoc(site=1, mode=mode)
    plain = Treedoc(site=2, mode=mode)
    plain.apply_batch(mixed.insert_text(0, [f"a{i}" for i in range(n)]))
    op = mixed.make_flatten(ROOT)
    mixed.apply_flatten(op)
    plain.apply_flatten(op)
    for _ in range(3):
        mixed.note_revision()
    mixed.collapse_cold(min_age=1, min_atoms=min_atoms)
    assert mixed.array_leaf_count >= 1
    return mixed, plain


def assert_identical(mixed, plain):
    assert mixed.atoms() == plain.atoms()
    assert [repr(p) for p in mixed.posids()] == [
        repr(p) for p in plain.posids()
    ]
    mixed.check()
    plain.check()


class TestPartialExplode:
    def test_interior_edit_partial_explodes_large_leaf(self):
        n = TreedocTree.PARTIAL_EXPLODE_MIN * 2
        mixed, plain = make_pair(n)
        assert any(
            leaf.id_count >= TreedocTree.PARTIAL_EXPLODE_MIN
            for leaf in mixed.tree.array_leaves()
        )
        plain.apply_batch(mixed.insert_text(n // 2 + 65, ["mid"]))
        assert mixed.tree.partial_explodes >= 1
        # O(edit) materialization: the untouched flanks stay collapsed.
        assert mixed.array_leaf_count >= 2
        assert_identical(mixed, plain)

    def test_edit_at_canonical_split_boundary_stays_identical(self):
        # An insert landing exactly between two flank regions resolves
        # its neighbours across the split; the flanks it routes through
        # explode, and identifiers must still match the plain replica.
        n = TreedocTree.PARTIAL_EXPLODE_MIN * 2
        mixed, plain = make_pair(n)
        plain.apply_batch(mixed.insert_text(n // 2, ["mid"]))
        assert mixed.tree.partial_explodes >= 1
        assert_identical(mixed, plain)

    def test_remote_interior_edit_partial_explodes(self):
        n = TreedocTree.PARTIAL_EXPLODE_MIN * 2
        mixed, plain = make_pair(n)
        mixed.apply_batch(plain.insert_text(n // 2 + 65, ["mid"]))
        assert mixed.tree.partial_explodes >= 1
        assert_identical(mixed, plain)

    def test_small_leaves_explode_wholesale(self):
        mixed, plain = make_pair(32)
        plain.apply_batch(mixed.insert_text(16, ["mid"]))
        assert mixed.tree.partial_explodes == 0
        assert mixed.tree.explodes >= 1
        assert_identical(mixed, plain)


class TestBitmapLeaves:
    def _deleted_pair(self):
        """Tombstones inside collapsed regions, re-collapsed with the
        dead-slot bitmap (no purge, no flatten)."""
        mixed, plain = make_pair(64, min_atoms=4)
        plain.apply_batch(mixed.delete_range(10, 14))
        plain.apply_batch(mixed.delete_range(30, 31))
        for _ in range(4):
            mixed.note_revision()
        mixed.collapse_cold(min_age=1, min_atoms=4)
        return mixed, plain

    def test_tombstoned_regions_collapse_with_bitmap(self):
        mixed, plain = self._deleted_pair()
        assert any(leaf.dead for leaf in mixed.tree.array_leaves())
        assert_identical(mixed, plain)

    def test_reads_mask_dead_slots(self):
        mixed, plain = self._deleted_pair()
        assert len(mixed) == len(plain)
        assert mixed.text() == plain.text()
        for index in (0, 5, 9, 10, 25, len(mixed) - 1):
            assert mixed.atom_at(index) == plain.atom_at(index)

    def test_remote_delete_into_dead_leaf_converges(self):
        mixed, plain = self._deleted_pair()
        mixed.apply_batch(plain.delete_range(5, 7))
        assert_identical(mixed, plain)

    def test_udis_discard_regions_collapse_without_bitmap(self):
        mixed, plain = make_pair(64, mode="udis", min_atoms=4)
        plain.apply_batch(mixed.delete_range(10, 14))
        for _ in range(4):
            mixed.note_revision()
        mixed.collapse_cold(min_age=1, min_atoms=4)
        assert all(leaf.dead == 0 for leaf in mixed.tree.array_leaves())
        assert_identical(mixed, plain)

    def test_measure_tree_counts_bitmap_tombstones(self):
        mixed, _ = self._deleted_pair()
        stats = measure_tree(mixed.tree)
        assert stats.tombstones >= 5  # the two deleted ranges
        assert stats.used_ids == stats.live_atoms + stats.tombstones


class TestDiskV3:
    def test_bitmap_leaves_roundtrip(self):
        mixed, _ = TestBitmapLeaves()._deleted_pair()
        image = disk.save(mixed.tree)
        assert image.version == disk.FORMAT_VERSION
        loaded = disk.load(image)
        assert loaded.atoms() == mixed.atoms()
        assert [repr(p) for p in loaded.posids()] == [
            repr(p) for p in mixed.posids()
        ]
        assert sorted(
            leaf.dead for leaf in loaded.array_leaves()
        ) == sorted(leaf.dead for leaf in mixed.tree.array_leaves())
        loaded.check_invariants()

    def test_v2_save_rejects_dead_leaves(self):
        mixed, _ = TestBitmapLeaves()._deleted_pair()
        with pytest.raises(EncodingError):
            disk.save(mixed.tree, version=2)

    def test_v2_image_without_bitmaps_still_loads(self):
        mixed, _ = make_pair(48)
        image = disk.save(mixed.tree, version=2)
        assert image.version == 2
        loaded = disk.load(image)
        assert loaded.atoms() == mixed.atoms()
        assert len(loaded.array_leaves()) == mixed.array_leaf_count
        loaded.check_invariants()


class TestIncrementalSweep:
    def _lockstep(self, auto, manual, batch):
        manual.apply_batch(batch)

    def test_auto_boundary_matches_manual_full_pass(self):
        # Same history, same boundaries: the incremental sweep (off the
        # touch-stamp log) must collapse exactly what a full survey
        # pass collapses.
        auto = Treedoc(site=1, mode="sdis", collapse_every=1,
                       collapse_min_age=2, collapse_min_atoms=4)
        manual = Treedoc(site=2, mode="sdis",
                         collapse_min_age=2, collapse_min_atoms=4)
        manual.apply_batch(
            auto.insert_text(0, [f"a{i}" for i in range(48)]))
        op = auto.make_flatten(ROOT)
        auto.apply_flatten(op)
        manual.apply_flatten(op)

        def tick():
            auto.note_revision()  # boundary: runs the auto sweep
            manual.note_revision()
            manual.collapse_cold()

        for _ in range(4):
            tick()
        assert auto.array_leaf_count == manual.array_leaf_count > 0
        for step in range(6):
            manual.apply_batch(auto.insert_text(24, [f"h{step}"]))
            tick()
        for _ in range(8):
            tick()
        assert auto.array_leaf_count == manual.array_leaf_count
        assert_identical(auto, manual)

    def test_detached_pending_survives_full_rebuild(self):
        doc = Treedoc(site=1, mode="sdis", collapse_every=1,
                      collapse_min_age=1, collapse_min_atoms=4)
        doc.insert_text(0, [f"a{i}" for i in range(32)])
        doc.note_revision()
        doc.flatten_local(ROOT)
        for _ in range(3):
            doc.note_revision()
        assert doc.array_leaf_count >= 1
        doc.insert_text(8, ["edit"])  # queues the touched region
        # A whole-document flatten rebuilds every node: the queued
        # entries now point at detached structure.
        doc.flatten_local(ROOT)
        before = doc.atoms()
        for _ in range(4):
            doc.note_revision()  # sweeps must skip the dead entries
        assert doc.atoms() == before
        assert doc.array_leaf_count >= 1  # and still re-collapse
        doc.check()

    def test_damping_defers_recollapse(self):
        doc = Treedoc(site=1, mode="sdis", collapse_every=1,
                      collapse_min_age=1, collapse_min_atoms=2)
        doc.insert_text(0, [f"a{i}" for i in range(16)])
        doc.note_revision()
        doc.flatten_local(ROOT)
        doc.note_revision()
        doc.note_revision()
        assert doc.array_leaf_count == 1
        # A delete touches the leaf without changing the canonical
        # shape: the region explodes (hysteresis records it) and stays
        # tree-form through its damped window.
        doc.delete_range(3, 4)
        assert doc._explode_history
        assert doc.array_leaf_count == 0
        doc.note_revision()  # age 1 < damped requirement (base << 1)
        assert doc.array_leaf_count == 0
        assert doc._sweep_pending  # withheld regions stay queued
        doc.note_revision()  # age 2: the damped window has passed
        assert doc.array_leaf_count == 1
        assert any(leaf.dead for leaf in doc.tree.array_leaves())
        doc.check()

    def test_load_state_resets_sweep_state(self):
        source = Treedoc(site=1, mode="sdis", collapse_every=1,
                         collapse_min_age=1, collapse_min_atoms=4)
        source.insert_text(0, [f"a{i}" for i in range(32)])
        source.note_revision()
        source.flatten_local(ROOT)
        source.note_revision()
        source.note_revision()
        source.insert_text(8, ["edit"])  # pending + explode history
        assert source._sweep_pending and source._explode_history

        sink = Treedoc(site=2, mode="sdis", collapse_every=1,
                       collapse_min_age=1, collapse_min_atoms=4)
        sink.load_state(source.capture_state())
        assert not sink._sweep_pending
        assert not sink._explode_history
        assert sink._needs_full_sweep
        assert sink.atoms() == source.atoms()
        # The explode listener is rewired to the fresh tree: a touch
        # into a collapsed region records history again.
        for _ in range(3):
            sink.note_revision()
        assert sink.array_leaf_count >= 1
        # Index 24 sits inside a collapsed leaf (index 8's region still
        # holds the non-canonical "edit" atom, so it never collapsed).
        sink.insert_text(24, ["again"])
        assert sink._explode_history
        sink.check()


class TestCounters:
    def test_measure_tree_mirrors_tree_counters(self):
        mixed, _ = make_pair(64, min_atoms=4)
        mixed.text()
        mixed.insert_text(20, ["mid"])  # explode + splice
        stats = measure_tree(mixed.tree)
        tree = mixed.tree
        assert stats.explodes == tree.explodes >= 1
        assert stats.partial_explodes == tree.partial_explodes
        assert stats.cache_drops == tree.cache_drops
        assert stats.cache_splices == tree.cache_splices >= 1
