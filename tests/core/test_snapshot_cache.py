"""Snapshot-cache identity: the incremental read path never lies.

The tree's live-snapshot cache (DESIGN.md section 6) is maintained by
splices; these properties pin it to the ground truth — a fresh
``iter_live_slots()`` infix walk — after arbitrary interleavings of
local batches, remote batches, flatten/explode, tombstone purge and
``recount_subtree``. A second suite checks snapshot identity over all
four CRDTs, and a third exercises the edit finger with the snapshot
cache disabled.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import LogootDoc, RgaDoc, TreedocAdapter, WootDoc
from repro.core.flatten import explode
from repro.core.node import TOMBSTONE, slot_posid
from repro.core.path import ROOT
from repro.core.treedoc import Treedoc


def fresh_walk_atoms(tree):
    """Ground truth: the visible atoms by a fresh infix walk."""
    return [slot.atom for slot in tree.iter_live_slots()]


def assert_cache_identity(doc: Treedoc) -> None:
    """The cached snapshot, index lookups and ranks all agree with a
    fresh walk (and with each other)."""
    walk = list(doc.tree.iter_live_slots())
    assert doc.atoms() == [slot.atom for slot in walk]
    assert len(doc) == len(walk)
    for index, slot in enumerate(walk):
        assert doc.tree.live_slot_at(index) is slot
        assert doc.tree.live_rank(slot) == index
    doc.check()  # includes the cache-vs-walk structural invariant


# One step of the interleaving: (kind, position seed, payload seed).
_step = st.tuples(
    st.sampled_from(
        ["local_insert", "local_delete", "remote_batch", "flatten",
         "purge", "recount", "read", "collapse", "leaf_explode"]
    ),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=6),
)


class TestCachedSnapshotIdentity:
    @pytest.mark.parametrize("mode", ["udis", "sdis"])
    @given(steps=st.lists(_step, min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_interleavings_match_fresh_walk(self, mode, steps):
        # Three replicas in causal lockstep (the commitment protocol
        # guarantees exactly this around a flatten): ``doc`` edits
        # locally, ``peer`` mints the remote batches, ``mirror`` only
        # ever replays — so doc exercises the local splice paths, peer
        # the mixed paths, and mirror the pure apply_batch path.
        doc = Treedoc(site=1, mode=mode)
        mirror = Treedoc(site=2, mode=mode)
        peer = Treedoc(site=3, mode=mode)
        tag = 0
        for kind, position, payload in steps:
            if kind == "local_insert":
                index = position % (len(doc) + 1)
                atoms = [f"a{tag}.{k}" for k in range(payload)]
                tag += 1
                batch = doc.insert_text(index, atoms)
                mirror.apply_batch(batch)
                peer.apply_batch(batch)
            elif kind == "local_delete":
                if len(doc):
                    start = position % len(doc)
                    end = min(len(doc), start + payload)
                    batch = doc.delete_range(start, end)
                    mirror.apply_batch(batch)
                    peer.apply_batch(batch)
            elif kind == "remote_batch":
                # A batch minted elsewhere, replayed through apply_batch.
                index = position % (len(peer) + 1)
                atoms = [f"p{tag}.{k}" for k in range(payload)]
                tag += 1
                batch = peer.insert_text(index, atoms)
                doc.apply_batch(batch)
                mirror.apply_batch(batch)
            elif kind == "flatten":
                # Whole-document flatten, committed on every replica.
                op = doc.make_flatten(ROOT)
                doc.apply_flatten(op)
                mirror.apply_flatten(op)
                peer.apply_flatten(op)
            elif kind == "purge":
                tombstones = [
                    slot for slot in doc.tree.iter_id_slots()
                    if slot.state == TOMBSTONE
                ]
                if tombstones:
                    target = tombstones[position % len(tombstones)]
                    posid = slot_posid(target)
                    doc.tree.purge_tombstone(target)
                    # Purge is sound only once causally stable — model
                    # that by purging the same identifier everywhere.
                    for other in (mirror, peer):
                        other_slot = other.tree.lookup(posid)
                        if other_slot is not None and (
                            other_slot.state == TOMBSTONE
                        ):
                            other.tree.purge_tombstone(other_slot)
            elif kind == "recount":
                doc.tree.recount_subtree(doc.tree.root)
            elif kind == "collapse":
                # Purely local representation change: leaf entries join
                # the cache as opaque segments, spliced around (never
                # dropped) by the surrounding steps.
                doc.note_revision()
                doc.collapse_cold(min_age=1, min_atoms=2)
                assert doc.atoms() == doc.tree.walk_atoms()
            elif kind == "leaf_explode":
                leaves = doc.tree.array_leaves()
                if leaves:
                    leaves[position % len(leaves)].explode()
            elif kind == "read":
                # walk_atoms handles mixed storage (a collapse step may
                # have left array leaves in the tree).
                assert doc.atoms() == doc.tree.walk_atoms()
        # Explode any remaining leaves (itself a splice path) so the
        # slot-level identity below can walk every slot.
        for leaf in doc.tree.array_leaves():
            leaf.explode()
        assert_cache_identity(doc)
        # The mirror applied every batch remotely: same visible content,
        # and its own cache holds the identity too.
        assert mirror.atoms() == doc.atoms()
        assert_cache_identity(mirror)

    @pytest.mark.parametrize("mode", ["udis", "sdis"])
    def test_batch_inserting_then_deleting_same_identifier(self, mode):
        # A merged batch can insert an atom and delete that same
        # identifier: at flush time every added slot is dead again and
        # the splice must degrade to a no-op, not crash.
        source = Treedoc(site=1, mode=mode)
        receiver = Treedoc(site=2, mode=mode)
        b1 = source.insert_text(0, ["x"])
        b2 = source.delete_range(0, 1)
        receiver.apply_batch(b1.merge(b2))
        assert receiver.atoms() == []
        assert_cache_identity(receiver)

    def test_shipped_batches_carry_a_pretransport_digest(self):
        from repro.replica import Replica

        a = Replica(site=1)
        a.edit(0, 0, "hi")
        (batch,) = a.pending()
        # The outbox sealed the digest at ship time: verify() compares
        # against a stamp minted before transport, so a forged copy
        # fails it.
        assert batch._digest is not None
        from repro.core.ops import OpBatch

        forged = OpBatch(batch.ops[:1], batch.origin, batch.seq_start,
                         batch.seq_end, batch.digest)
        assert batch.verify() and not forged.verify()

    def test_explode_invalidates_fresh_tree_cache(self):
        tree = explode(list("abcdef"))
        assert tree.atoms() == list("abcdef")
        assert [s.atom for s in tree.iter_live_slots()] == list("abcdef")

    @pytest.mark.parametrize("mode", ["udis", "sdis"])
    def test_structural_ops_invalidate_not_stale(self, mode):
        doc = Treedoc(site=1, mode=mode)
        doc.insert_text(0, list("hello world"))
        doc.delete_range(2, 5)
        doc.note_revision()
        doc.note_revision()
        generation = doc.generation
        doc.flatten_local(ROOT)
        # Flatten rewrote the structure: the cache must have been
        # dropped (never stale) and the generation bumped so derived
        # caches (text/lines/snapshots) refresh.
        assert doc.generation > generation
        assert doc.tree._live is None
        assert_cache_identity(doc)

    def test_text_fast_path_handles_non_string_atoms(self):
        doc = Treedoc(site=1)
        doc.insert_text(0, ["a", 7, "b"])
        assert doc.text() == "a7b"
        assert doc.text("-") == "a-7-b"
        doc2 = Treedoc(site=2)
        doc2.insert_text(0, list("pure strings"))
        assert doc2.text() == "pure strings"

    def test_text_cache_tracks_generation(self):
        doc = Treedoc(site=1)
        doc.insert_text(0, list("abc"))
        assert doc.text() == "abc"
        assert doc.text() == "abc"  # cached hit
        doc.insert_text(3, list("d"))
        assert doc.text() == "abcd"  # generation bump refreshed it


class TestBulkHintDrift:
    """The flush-time drift detectors (previously ``pragma: no cover``
    safety nets): a bulk hint that does not match the changes actually
    made must invalidate the cache — never leave it stale, never crash.
    Each test doctors one mismatch and checks the next read rebuilds."""

    def _leafy_doc(self):
        doc = Treedoc(site=1, mode="sdis")
        doc.insert_text(0, [f"l{i}" for i in range(16)])
        doc.note_revision()
        doc.flatten_local(ROOT)
        for _ in range(3):
            doc.note_revision()
        doc.collapse_cold(min_age=1, min_atoms=4)
        assert doc.array_leaf_count >= 1
        doc.atoms()
        assert doc.tree._live_has_leaf
        return doc

    def test_wrong_removed_range_hint_invalidates(self):
        doc = Treedoc(site=1, mode="sdis")
        doc.insert_text(0, list("abcdef"))
        doc.atoms()
        tree = doc.tree
        slot = tree.live_slot_at(0)
        tree.begin_bulk()
        tree.make_tombstone(slot)
        tree.hint_bulk_removed_range(0, 0)  # lies: one removal happened
        tree.end_bulk()
        assert tree._live is None
        assert doc.atoms() == list("bcdef")
        assert_cache_identity(doc)

    def test_removed_range_hint_into_leaf_interior_invalidates(self):
        doc = self._leafy_doc()
        before = doc.atoms()
        tree = doc.tree
        tree.begin_bulk()
        tree._bulk_removed = True  # a removal recorded, range mid-leaf
        tree.hint_bulk_removed_range(1, 2)
        tree.end_bulk()
        assert tree._live is None
        assert doc.atoms() == before
        assert doc.atoms() == doc.tree.walk_atoms()
        doc.check()

    def test_wrong_added_at_hint_invalidates(self):
        doc = Treedoc(site=1, mode="sdis")
        doc.insert_text(0, list("abc"))
        doc.atoms()
        tree = doc.tree
        slot = tree.live_slot_at(0)
        tree.begin_bulk()
        tree._bulk_added.extend([slot, slot])  # drifted: listed twice
        tree.hint_bulk_added_at(1)
        tree.end_bulk()
        assert tree._live is None
        assert doc.atoms() == list("abc")
        assert_cache_identity(doc)

    def test_added_at_hint_into_leaf_interior_invalidates(self):
        doc = self._leafy_doc()
        before = doc.atoms()
        tree = doc.tree
        tree.begin_bulk()
        tree._bulk_added.append(tree.root)
        tree.hint_bulk_added_at(1)  # offset 1 lands inside the leaf
        tree.end_bulk()
        assert tree._live is None
        assert doc.atoms() == before
        assert doc.atoms() == doc.tree.walk_atoms()
        doc.check()


FACTORIES = {
    "treedoc-udis": lambda site: TreedocAdapter(site, mode="udis"),
    "treedoc-sdis": lambda site: TreedocAdapter(site, mode="sdis"),
    "logoot": lambda site: LogootDoc(site, seed=7),
    "woot": WootDoc,
    "rga": RgaDoc,
}


class TestSnapshotIdentityAllCrdts:
    """Snapshot identity over every sequence CRDT: repeated reads are
    stable, two replicas that applied the same batches snapshot
    identically, and (for Treedoc) the cache equals a fresh walk."""

    @pytest.mark.parametrize("name", sorted(FACTORIES))
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_snapshot_identity(self, name, seed):
        factory = FACTORIES[name]
        rng = random.Random(seed)
        source, sink = factory(1), factory(2)
        for round_number in range(8):
            if len(source) and rng.random() < 0.4:
                start = rng.randrange(len(source))
                end = min(len(source), start + rng.randint(1, 4))
                batch = source.delete_range(start, end)
            else:
                index = rng.randint(0, len(source))
                run = [f"r{round_number}.{k}" for k in range(rng.randint(1, 5))]
                batch = source.insert_text(index, run)
            sink.apply_batch(batch)
            first = source.atoms()
            assert source.atoms() == first  # repeated reads are stable
            assert sink.atoms() == first    # replicas snapshot identically
        if isinstance(source, TreedocAdapter):
            assert source.atoms() == fresh_walk_atoms(source.doc.tree)
            assert sink.atoms() == fresh_walk_atoms(sink.doc.tree)


class TestEditFinger:
    """The finger path: cache disabled, localized edits resolve by
    chain walks and must match list semantics exactly."""

    @pytest.mark.parametrize("mode", ["udis", "sdis"])
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_localized_single_ops_match_model(self, mode, seed):
        doc = Treedoc(site=1, mode=mode)
        doc.tree.configure_read_cache(snapshot=False, finger=True)
        rng = random.Random(seed)
        model = []
        cursor = 0
        for tag in range(60):
            cursor = max(0, min(len(model), cursor + rng.randint(-3, 3)))
            if model and rng.random() < 0.35:
                index = min(cursor, len(model) - 1)
                doc.delete(index)
                model.pop(index)
            else:
                doc.insert(cursor, tag)
                model.insert(cursor, tag)
        assert doc.atoms() == model
        assert [doc.atom_at(i) for i in range(len(model))] == model

    def test_finger_survives_distant_jumps(self):
        doc = Treedoc(site=1)
        doc.tree.configure_read_cache(snapshot=False, finger=True)
        doc.insert_text(0, list(range(500)))
        walk = list(doc.tree.iter_live_slots())
        # Jump far beyond the window, then probe neighbours.
        for index in (0, 499, 250, 251, 249, 3, 498):
            assert doc.tree.live_slot_at(index) is walk[index]

    def test_disabled_everything_still_correct(self):
        doc = Treedoc(site=1)
        doc.tree.configure_read_cache(snapshot=False, finger=False)
        doc.insert_text(0, list("abcdef"))
        doc.delete_range(1, 3)
        assert doc.atoms() == list("adef")
        assert doc.text() == "adef"
