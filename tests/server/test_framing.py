"""Stream framing: every wire kind, every chunking, damage recovery.

The satellite contract: feed every wire frame kind through the
:class:`FrameReader` split at every byte boundary and merged across
frames, and assert byte-level identity with the one-shot
``decode_wire`` path; then prove truncation and bit flips mid-stream
surface only as typed errors and the reader recovers.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import encoding
from repro.core.path import PathElement, PosID
from repro.core.treedoc import Treedoc
from repro.errors import DecodeError, EncodingError, FrameSyncError
from repro.replication.clock import VectorClock
from repro.replication.commit import AbortMsg, PrepareMsg, VoteMsg
from repro.replication.wire import (
    DECLINE_BUSY,
    AckFrame,
    EnvelopeFrame,
    SyncDecline,
    SyncDelta,
    SyncRequest,
    SyncResponse,
    decode_wire,
    encode_wire,
    peek_wire_kind,
)
from repro.server.framing import (
    HEADER_BYTES,
    MAGIC,
    FrameReader,
    encode_segment,
)


def _sample_frames():
    """One encoded frame of every wire kind (all nine)."""
    doc = Treedoc(site=1, mode="sdis")
    payload, bits = encoding.encode_batch(doc.insert_text(0, list("stream")))
    envelope = EnvelopeFrame(1, VectorClock({1: 1}), payload, bits)
    path = PosID([PathElement(1), PathElement(0)])
    return [
        encode_wire(envelope),
        encode_wire(AckFrame(2, VectorClock({1: 3, 2: 9}))),
        encode_wire(SyncRequest(3, VectorClock({1: 1}))),
        SyncResponse(1, VectorClock({1: 1}), doc.capture_state()).to_wire(),
        encode_wire(PrepareMsg("1.0", path, VectorClock({1: 2}), 1)),
        encode_wire(VoteMsg("1.0", 2, True)),
        encode_wire(AbortMsg("1.0")),
        SyncDelta(1, VectorClock({1: 2}), VectorClock({1: 1})).to_wire(),
        encode_wire(SyncDecline(4, DECLINE_BUSY, 2)),
    ]


FRAMES = _sample_frames()
STREAM = b"".join(encode_segment(frame) for frame in FRAMES)


def read_all(reader, swallow_errors=False):
    frames = []
    while True:
        try:
            frame = reader.next_frame()
        except FrameSyncError:
            if not swallow_errors:
                raise
            continue
        if frame is None:
            return frames
        frames.append(frame)


class TestEveryKindEveryBoundary:
    def test_all_nine_kinds_covered(self):
        kinds = {peek_wire_kind(frame) for frame in FRAMES}
        assert kinds == {
            "envelope", "ack", "sync_request", "sync_response",
            "prepare", "vote", "abort", "sync_delta", "sync_decline",
        }

    def test_split_at_every_byte_boundary(self):
        # Two-chunk delivery split at every possible position: the
        # reassembled payloads are byte-identical to the originals and
        # decode to equal frames via the one-shot path.
        for position in range(len(STREAM) + 1):
            reader = FrameReader()
            reader.feed(STREAM[:position])
            recovered = read_all(reader)
            reader.feed(STREAM[position:])
            recovered += read_all(reader)
            assert recovered == FRAMES
            assert reader.resyncs == 0
        for original in FRAMES:
            assert decode_wire(original) == decode_wire(bytes(original))

    def test_byte_at_a_time(self):
        reader = FrameReader()
        recovered = []
        for index in range(len(STREAM)):
            reader.feed(STREAM[index:index + 1])
            recovered += read_all(reader)
        assert recovered == FRAMES

    def test_single_merged_chunk(self):
        # All nine frames in one read(): the opposite extreme.
        reader = FrameReader()
        reader.feed(STREAM)
        recovered = read_all(reader)
        assert recovered == FRAMES
        assert reader.frames_delivered == len(FRAMES)
        assert [decode_wire(r) for r in recovered] \
            == [decode_wire(f) for f in FRAMES]

    @settings(max_examples=120, deadline=None)
    @given(st.data())
    def test_random_chunkings_are_equivalent(self, data):
        # Arbitrary split/merge patterns — including empty chunks —
        # always reassemble the identical byte sequences.
        cuts = sorted(data.draw(st.lists(
            st.integers(0, len(STREAM)), max_size=24,
        )))
        positions = [0] + cuts + [len(STREAM)]
        reader = FrameReader()
        recovered = []
        for start, end in zip(positions, positions[1:]):
            reader.feed(STREAM[start:end])
            recovered += read_all(reader)
        assert recovered == FRAMES


def _assert_stream_recovers(reader, recovered, prefix):
    """The sound post-damage properties: the prefix before the damage
    is intact, every non-original delivery fails decode_wire *typed*,
    and the stream stays live — after enough fresh valid traffic to
    flush any plausible-but-wrong length field, frames flow again."""
    assert recovered[:len(prefix)] == prefix
    for payload in recovered:
        if any(payload == frame for frame in FRAMES):
            continue
        with pytest.raises(DecodeError):
            decode_wire(payload)
    sentinel = encode_segment(FRAMES[1])
    repeats = reader.max_frame_bytes // len(sentinel) + 2
    reader.feed(sentinel * repeats)
    tail = read_all(reader, swallow_errors=True)
    assert tail and tail[-1] == FRAMES[1]


class TestDamageRecovery:
    def test_corrupt_magic_resyncs_and_recovers(self):
        # Destroy frame k's magic: typed FrameSyncError(s), frames
        # before k intact, the stream stays usable after.
        for k in range(len(FRAMES)):
            segments = [encode_segment(frame) for frame in FRAMES]
            damaged = bytearray(segments[k])
            damaged[0] ^= 0xFF
            segments[k] = bytes(damaged)
            reader = FrameReader(max_frame_bytes=4096)
            reader.feed(b"".join(segments))
            with pytest.raises(FrameSyncError) as err:
                read_all(reader)
            assert err.value.offset > 0
            recovered = read_all(reader, swallow_errors=True)
            assert reader.resyncs >= 1
            assert reader.bytes_discarded > 0
            _assert_stream_recovers(reader, FRAMES[:k] + recovered,
                                    FRAMES[:k])

    def test_truncated_payload_misframes_then_recovers(self):
        # Cut bytes out of frame k's segment: the reader mis-frames
        # (decode_wire's CRC rejects the garbage), then realigns on
        # later magic. Everything surfaces typed; the stream survives.
        for k in range(len(FRAMES) - 1):
            for cut in (1, 3):
                segments = [encode_segment(frame) for frame in FRAMES]
                segments[k] = segments[k][:-cut]
                reader = FrameReader(max_frame_bytes=4096)
                reader.feed(b"".join(segments))
                recovered = read_all(reader, swallow_errors=True)
                _assert_stream_recovers(reader, recovered, FRAMES[:k])

    def test_oversized_length_field_resyncs(self):
        # A flipped high bit in the length field demands gigabytes; the
        # reader treats the implausible header as corruption instead of
        # buffering toward it.
        segments = [encode_segment(frame) for frame in FRAMES]
        damaged = bytearray(segments[0])
        damaged[len(MAGIC)] |= 0x80  # length's top byte
        segments[0] = bytes(damaged)
        reader = FrameReader()
        reader.feed(b"".join(segments))
        with pytest.raises(FrameSyncError):
            read_all(reader)
        recovered = read_all(reader, swallow_errors=True)
        assert recovered == FRAMES[1:]

    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_random_header_flips_never_escape_typed_errors(self, data):
        # Flip bits anywhere in the segment headers: the reader may
        # lose frames, but it only ever raises DecodeError subclasses
        # and keeps accepting fresh valid traffic afterwards.
        flips = data.draw(st.lists(
            st.integers(0, len(STREAM) * 8 - 1), min_size=1, max_size=4,
            unique=True,
        ))
        damaged = bytearray(STREAM)
        for position in flips:
            damaged[position // 8] ^= 0x80 >> (position % 8)
        reader = FrameReader(max_frame_bytes=len(STREAM))
        reader.feed(bytes(damaged))
        recovered = []
        for _ in range(len(STREAM)):
            try:
                frame = reader.next_frame()
            except DecodeError:
                continue
            if frame is None:
                break
            recovered.append(frame)
        # The reader is still usable: a fresh valid frame goes through.
        reader.feed(encode_segment(FRAMES[0]))
        tail = read_all(reader, swallow_errors=True)
        assert tail and tail[-1] == FRAMES[0]

    def test_interleaved_garbage_between_segments(self):
        reader = FrameReader()
        reader.feed(b"\x00\x01\x02" + encode_segment(FRAMES[1])
                    + b"junkjunk" + encode_segment(FRAMES[2]))
        recovered = read_all(reader, swallow_errors=True)
        assert recovered == [FRAMES[1], FRAMES[2]]
        assert reader.resyncs >= 2


class TestSegmentCodec:
    def test_header_layout(self):
        segment = encode_segment(b"abc")
        assert segment[:2] == MAGIC
        assert segment[2:6] == (3).to_bytes(4, "big")
        assert segment[6:] == b"abc"
        assert len(segment) == HEADER_BYTES + 3

    def test_empty_payload_round_trips(self):
        reader = FrameReader()
        reader.feed(encode_segment(b""))
        assert read_all(reader) == [b""]

    def test_non_bytes_payload_rejected(self):
        with pytest.raises(EncodingError):
            encode_segment("text")

    def test_counters_track_traffic(self):
        reader = FrameReader()
        reader.feed(STREAM)
        read_all(reader)
        assert reader.bytes_fed == len(STREAM)
        assert reader.frames_delivered == len(FRAMES)
        assert reader.buffered == 0
