"""Helpers for the daemon tests: ports, loops, loopback clusters."""

from __future__ import annotations

import asyncio
import socket
from typing import Dict, List, Optional, Tuple

import pytest

from repro.server.daemon import DaemonConfig, SiteDaemon


def free_port() -> int:
    """An OS-assigned free TCP port (released immediately — a small
    race window exists, acceptable for loopback tests)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def free_ports(count: int) -> List[int]:
    """Distinct free ports, all held open during allocation so they
    cannot collide with each other."""
    sockets = []
    for _ in range(count):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sockets.append(sock)
    ports = [sock.getsockname()[1] for sock in sockets]
    for sock in sockets:
        sock.close()
    return ports


def make_cluster_configs(
    n_sites: int,
    ports: Optional[List[int]] = None,
    peer_overrides: Optional[Dict[Tuple[int, int], Tuple[str, int]]] = None,
    **config_kwargs,
) -> List[DaemonConfig]:
    """Fully-meshed daemon configs for sites 1..n on loopback.

    ``peer_overrides`` maps (site, peer) to an alternative address —
    how a FaultyTransport proxy is spliced into one direction's dials.
    """
    ports = ports or free_ports(n_sites)
    overrides = peer_overrides or {}
    configs = []
    for index in range(n_sites):
        site = index + 1
        peers = {}
        for other_index in range(n_sites):
            other = other_index + 1
            if other == site:
                continue
            peers[other] = overrides.get(
                (site, other), ("127.0.0.1", ports[other_index])
            )
        configs.append(DaemonConfig(
            site=site, port=ports[index], peers=peers, **config_kwargs
        ))
    return configs


async def start_cluster(configs: List[DaemonConfig]) -> List[SiteDaemon]:
    daemons = [SiteDaemon(config) for config in configs]
    for daemon in daemons:
        await daemon.start()
    return daemons


async def stop_cluster(daemons: List[SiteDaemon]) -> None:
    for daemon in daemons:
        await daemon.shutdown()


async def wait_until(predicate, timeout: float = 20.0,
                     interval: float = 0.05) -> bool:
    """Poll ``predicate()`` until true or the deadline passes."""
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


@pytest.fixture
def run():
    """Run a coroutine on a fresh event loop (no pytest-asyncio in the
    toolchain; a plain asyncio.run keeps the tests self-contained)."""
    def runner(coroutine):
        return asyncio.run(coroutine)

    return runner
