"""In-process daemon clusters over real loopback sockets.

The acceptance shape of the tentpole, at test-suite speed: daemons
speaking the unchanged wire grammar over TCP converge PosID-
identically (the ``identity_digest`` oracle, not just visible text),
survive fault-injecting proxies between them, reconnect after severed
links, answer a line-JSON admin protocol, and restart from a durable
store with their document intact.  The multi-process variant with
SIGKILL lives in ``test_daemon_process.py``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.server.admin import identity_digest
from repro.server.daemon import SiteDaemon
from repro.server.faults import FaultPlan, FaultyTransport

from tests.server.conftest import (
    free_ports,
    make_cluster_configs,
    start_cluster,
    stop_cluster,
    wait_until,
)


def converged(daemons, expected_len=None):
    """All daemons agree on the full PosID identity sequence."""
    digests = {identity_digest(daemon.site) for daemon in daemons}
    if len(digests) != 1:
        return False
    if expected_len is not None:
        return all(len(d.site) == expected_len for d in daemons)
    return True


async def admin_request(port, op, **fields):
    """One line-JSON admin round trip on the running loop (the
    blocking AdminClient is for other processes; tests share the
    daemon's own loop)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        payload = dict(fields)
        payload["op"] = op
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()
        line = await reader.readline()
        return json.loads(line)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class TestTwoDaemonConvergence:
    def test_edit_replicates_and_digests_agree(self, run):
        async def scenario():
            daemons = await start_cluster(make_cluster_configs(2))
            d1, d2 = daemons
            try:
                assert await wait_until(
                    lambda: 2 in d1.transport.connected
                    and 1 in d2.transport.connected
                )
                d1.site.insert_text(0, list("hello"))
                assert await wait_until(lambda: d2.site.text() == "hello")
                assert converged(daemons, expected_len=5)
                # Concurrent edits from both ends also converge.
                d1.site.insert_text(5, list(" world"))
                d2.site.insert_text(0, list(">> "))
                assert await wait_until(
                    lambda: converged(daemons, expected_len=14)
                )
                assert d1.site.text() == ">> hello world"
            finally:
                await stop_cluster(daemons)

        run(scenario())


class TestAdminProtocol:
    def test_full_op_surface_over_the_socket(self, run):
        async def scenario():
            daemons = await start_cluster(make_cluster_configs(2))
            d1, d2 = daemons
            try:
                assert await wait_until(
                    lambda: 2 in d1.transport.connected
                )
                port = d1.admin_port
                assert (await admin_request(port, "ping")) == {
                    "ok": True, "site": 1,
                }
                edited = await admin_request(port, "edit",
                                             index=0, text="abc")
                assert edited["ok"] and edited["atoms"] == 3
                text = await admin_request(port, "text")
                assert text["text"] == "abc"
                deleted = await admin_request(port, "delete",
                                              index=1, count=1)
                assert deleted["ok"] and deleted["atoms"] == 2
                assert await wait_until(lambda: d2.site.text() == "ac")
                # The digest matches the in-process oracle exactly.
                digest = await admin_request(port, "digest")
                assert digest["digest"] == identity_digest(d1.site)
                remote = await admin_request(d2.admin_port, "digest")
                assert remote["digest"] == digest["digest"]
                status = await admin_request(port, "status")
                assert status["ok"] and status["site"] == 1
                assert status["connected"] == [2]
                assert status["frames_applied"] >= 1
                storage = status["storage"]
                assert set(storage) == {
                    "array_leaves", "explodes", "partial_explodes",
                    "cache_drops", "cache_splices",
                }
                assert all(value >= 0 for value in storage.values())
                synced = await admin_request(port, "sync", peer=2)
                assert synced["ok"]
                # Errors are typed JSON, never closed sockets.
                bad_op = await admin_request(port, "warp")
                assert not bad_op["ok"] and bad_op["kind"] == "bad-request"
                bad_index = await admin_request(port, "edit",
                                                index=99, text="x")
                assert not bad_index["ok"]
                assert bad_index["kind"] == "bad-request"
            finally:
                await stop_cluster(daemons)

        run(scenario())

    def test_shutdown_op_drains_and_closes(self, run):
        async def scenario():
            daemons = await start_cluster(make_cluster_configs(1))
            daemon = daemons[0]
            response = await admin_request(daemon.admin_port, "shutdown")
            assert response == {"ok": True, "closing": True}
            await asyncio.wait_for(daemon.wait_closed(), timeout=10.0)
            assert daemon.closing

        run(scenario())


class TestDurableRestart:
    def test_graceful_shutdown_then_restart_preserves_identity(
            self, run, tmp_path):
        store = str(tmp_path / "site1")

        async def first_life():
            (config,) = make_cluster_configs(1, store_path=store)
            daemons = await start_cluster([config])
            daemon = daemons[0]
            daemon.site.insert_text(0, list("durable"))
            daemon.site.delete_range(0, 2)
            digest = identity_digest(daemon.site)
            await daemon.shutdown()  # drains, checkpoints, closes WAL
            return digest

        async def second_life(expected_digest):
            (config,) = make_cluster_configs(1, store_path=store)
            daemons = await start_cluster([config])
            daemon = daemons[0]
            try:
                assert daemon.site.text() == "rable"
                assert identity_digest(daemon.site) == expected_digest
            finally:
                await daemon.shutdown()

        digest = run(first_life())
        run(second_life(digest))


class TestReconnect:
    def test_severed_link_redials_and_repairs(self, run):
        async def scenario():
            ports = free_ports(2)
            # Site 2 dials site 1 (larger id dials smaller), so the
            # proxy sits on that one dial path.
            proxy = FaultyTransport("127.0.0.1", ports[0])
            await proxy.start()
            configs = make_cluster_configs(
                2, ports=ports,
                peer_overrides={(2, 1): ("127.0.0.1", proxy.port)},
                heartbeat_interval=0.1, idle_timeout=1.0,
            )
            daemons = await start_cluster(configs)
            d1, d2 = daemons
            try:
                assert await wait_until(
                    lambda: 1 in d2.transport.connected
                )
                d1.site.insert_text(0, list("pre"))
                assert await wait_until(lambda: d2.site.text() == "pre")

                proxy.sever()
                assert await wait_until(
                    lambda: 1 not in d2.transport.connected
                )
                # Edits while the link is down...
                d1.site.insert_text(3, list("-down"))
                d2.site.insert_text(0, list("x"))
                # ...heal after the supervisor redials through the
                # proxy and anti-entropy repairs the gap.
                assert await wait_until(
                    lambda: 1 in d2.transport.connected
                )
                assert await wait_until(
                    lambda: converged(daemons, expected_len=9)
                )
                assert proxy.connections >= 2  # the redial happened
            finally:
                await stop_cluster(daemons)
                await proxy.stop()

        run(scenario())


class TestFrontierLagDetector:
    def test_lost_envelope_repaired_via_heartbeat_lag(self, run):
        # The failure the simulator can never produce: an envelope
        # written into a dying socket is gone — not buffered anywhere,
        # so the replication layer sees no causal gap. The lagging
        # daemon must notice from heartbeat acks that a peer's
        # frontier is ahead and pull a sync on its own.
        async def scenario():
            ports = free_ports(2)
            proxy = FaultyTransport("127.0.0.1", ports[0])
            await proxy.start()
            configs = make_cluster_configs(
                2, ports=ports,
                peer_overrides={(2, 1): ("127.0.0.1", proxy.port)},
                heartbeat_interval=0.1, idle_timeout=1.0,
                lag_sync_after=0.3,
            )
            daemons = await start_cluster(configs)
            d1, d2 = daemons
            try:
                assert await wait_until(
                    lambda: 1 in d2.transport.connected
                )
                proxy.sever()
                assert await wait_until(
                    lambda: 2 not in d1.transport.connected
                )
                # The edit parks in d1's queue for the dead link —
                # clearing it is exactly the loss a dying socket
                # inflicts: the envelope is nowhere, no gap buffers.
                d1.site.insert_text(0, list("lost"))
                d1.transport.queues[2].clear()
                assert await wait_until(
                    lambda: 1 in d2.transport.connected
                )
                assert await wait_until(
                    lambda: d2.site.text() == "lost", timeout=30.0
                )
                assert d2.lag_syncs >= 1  # the detector did the repair
                assert converged(daemons, expected_len=4)
            finally:
                await stop_cluster(daemons)
                await proxy.stop()

        run(scenario())


class TestFiveDaemonFaultyCluster:
    def test_convergence_under_split_merge_latency_and_sever(self, run):
        # Five daemons, three dial paths routed through fault proxies
        # that split segments at arbitrary byte boundaries, merge
        # chunks across frame boundaries, and add latency; one proxy
        # is severed mid-run. Everything must still converge to one
        # PosID identity digest.
        async def scenario():
            ports = free_ports(5)
            plan = FaultPlan(seed=42, split=True, merge_probability=0.3,
                             latency=0.01)
            # Larger id dials smaller: (3,1), (4,2), (5,3) are real
            # dial paths to splice proxies into.
            proxies = {
                (3, 1): FaultyTransport("127.0.0.1", ports[0], plan),
                (4, 2): FaultyTransport("127.0.0.1", ports[1], plan),
                (5, 3): FaultyTransport("127.0.0.1", ports[2], plan),
            }
            for proxy in proxies.values():
                await proxy.start()
            overrides = {
                pair: ("127.0.0.1", proxy.port)
                for pair, proxy in proxies.items()
            }
            configs = make_cluster_configs(
                5, ports=ports, peer_overrides=overrides,
                heartbeat_interval=0.1, idle_timeout=2.0,
            )
            daemons = await start_cluster(configs)
            try:
                assert await wait_until(
                    lambda: all(len(d.transport.connected) == 4
                                for d in daemons)
                )
                words = ["alpha ", "bravo ", "charlie ", "delta ", "echo "]
                for daemon, word in zip(daemons, words):
                    daemon.site.insert_text(0, list(word))
                    await asyncio.sleep(0.02)
                # Mid-run fault: kill every connection through one
                # proxy; the supervisors redial through it.
                proxies[(4, 2)].sever()
                for index, daemon in enumerate(daemons):
                    daemon.site.insert_text(
                        len(daemon.site), list(f"+{index + 1}")
                    )
                    await asyncio.sleep(0.02)
                total = sum(len(w) for w in words) + 2 * len(daemons)
                assert await wait_until(
                    lambda: converged(daemons, expected_len=total),
                    timeout=30.0,
                )
                texts = {d.site.text() for d in daemons}
                assert len(texts) == 1
                # The faults actually happened.
                assert sum(p.splits for p in proxies.values()) > 0
                assert sum(p.merges for p in proxies.values()) > 0
                assert proxies[(4, 2)].disconnects >= 1
                # And the stream framing absorbed them: no daemon saw
                # decode errors or resyncs from split/merge chunking.
                for daemon in daemons:
                    assert daemon.decode_errors == 0
                    assert daemon.stream_resyncs == 0
            finally:
                await stop_cluster(daemons)
                for proxy in proxies.values():
                    await proxy.stop()

        run(scenario())
