"""Bounded queues: band priority, watermark shedding, overload gates.

The acceptance property: a slow or stalled consumer costs a *bounded*
number of buffered frames — watermark shedding is observed, depth
never exceeds the cap, and refusals are typed, not silent drops of
unrecoverable work.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core import encoding
from repro.core.treedoc import Treedoc
from repro.errors import OverloadedError
from repro.replication.clock import VectorClock
from repro.replication.wire import (
    DECLINE_BUSY,
    AckFrame,
    EnvelopeFrame,
    SyncDecline,
    SyncRequest,
    encode_wire,
)
from repro.server.framing import FrameReader, encode_segment
from repro.server.transport import SendQueue, SocketTransport

from tests.server.conftest import (
    free_ports,
    make_cluster_configs,
    start_cluster,
    wait_until,
)


def _envelope_bytes(text="x", origin=1, seq=1):
    doc = Treedoc(site=origin)
    payload, bits = encoding.encode_batch(doc.insert_text(0, list(text)))
    return encode_wire(
        EnvelopeFrame(origin, VectorClock({origin: seq}), payload, bits)
    )


def _ack_bytes(site=1):
    return encode_wire(AckFrame(site, VectorClock({site: 1})))


class TestSendQueue:
    def _queue(self, high_watermark=4, max_depth=8):
        async def build():
            return SendQueue(high_watermark, max_depth)

        return asyncio.run(build())

    def test_high_band_drains_first(self):
        queue = self._queue()
        ack = _ack_bytes()
        envelope = _envelope_bytes()
        queue.push(ack)
        queue.push(envelope)
        assert queue.pop() == envelope  # causal traffic jumps the acks
        assert queue.pop() == ack
        assert queue.pop() is None

    def test_low_band_sheds_at_watermark(self):
        queue = self._queue(high_watermark=3, max_depth=8)
        for _ in range(3):
            assert queue.push(_ack_bytes())
        assert not queue.push(_ack_bytes())  # watermark: acks shed
        assert queue.push(_envelope_bytes())  # envelopes still admitted
        assert queue.shed_low == 1
        assert queue.shed_high == 0
        assert queue.depth == 4

    def test_high_band_sheds_at_hard_cap(self):
        queue = self._queue(high_watermark=2, max_depth=4)
        for seq in range(4):
            assert queue.push(_envelope_bytes(seq=seq + 1))
        assert not queue.push(_envelope_bytes(seq=9))
        assert queue.shed_high == 1
        assert queue.depth == 4  # never exceeds the cap
        assert queue.max_depth_seen == 4

    def test_depth_stays_bounded_under_any_mix(self):
        queue = self._queue(high_watermark=5, max_depth=10)
        for round_number in range(100):
            queue.push(_ack_bytes())
            queue.push(_envelope_bytes(seq=round_number + 1))
            assert queue.depth <= queue.max_depth
        assert queue.shed_low > 0
        assert queue.shed_high > 0

    def test_clear_reports_dropped(self):
        queue = self._queue()
        queue.push(_ack_bytes())
        queue.push(_envelope_bytes())
        assert queue.clear() == 2
        assert queue.depth == 0

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            self._queue(high_watermark=0)
        with pytest.raises(ValueError):
            self._queue(high_watermark=9, max_depth=8)


class TestSocketTransport:
    def test_eager_queues_park_preconnection_broadcasts(self):
        # A recovering site broadcasts its WAL tail before any peer is
        # connected: the frames must wait in bounded queues, not die.
        transport = SocketTransport(1, {2: ("h", 1), 3: ("h", 2)})
        transport.broadcast(1, _envelope_bytes())
        assert transport.queues[2].depth == 1
        assert transport.queues[3].depth == 1

    def test_unknown_destination_counts_not_raises(self):
        transport = SocketTransport(1, {2: ("h", 1)})
        transport.send(1, 99, _envelope_bytes())
        assert transport.unroutable == 1

    def test_roster_follows_connectivity(self):
        transport = SocketTransport(2, {1: ("h", 1), 3: ("h", 2)})
        assert transport.sites == (2,)
        transport.mark_connected(3)
        assert transport.sites == (2, 3)
        assert transport.reachable(2, 3)
        assert not transport.reachable(2, 1)
        transport.mark_disconnected(3)
        assert transport.sites == (2,)

    def test_rejects_foreign_site_registration(self):
        transport = SocketTransport(1, {})
        with pytest.raises(ValueError):
            transport.register(2, lambda src, data: None)


class TestStalledConsumer:
    def test_stalled_peer_costs_bounded_memory(self, run, tmp_path):
        # A peer that completes the hello and then never reads again:
        # TCP buffers fill, the writer task stalls in drain(), and the
        # per-peer queue sheds at its bounds instead of growing.
        async def scenario():
            import socket as socket_module

            hello = encode_segment(encode_wire(
                AckFrame(2, VectorClock())
            ))

            handler_tasks = []

            async def stalled_peer(reader, writer):
                handler_tasks.append(asyncio.current_task())
                writer.write(hello)
                await writer.drain()
                try:
                    await asyncio.sleep(3600)  # never reads, never answers
                except asyncio.CancelledError:
                    writer.close()

            # Tiny receive buffer (set before listen so accepted
            # sockets inherit it and auto-tuning is off): the kernel
            # cannot absorb the blast on the consumer's behalf.
            raw = socket_module.socket()
            raw.setsockopt(socket_module.SOL_SOCKET,
                           socket_module.SO_RCVBUF, 4096)
            raw.bind(("127.0.0.1", 0))
            raw.listen()
            stall_port = raw.getsockname()[1]
            stall_server = await asyncio.start_server(stalled_peer, sock=raw)
            (config,) = make_cluster_configs(
                1, high_watermark=8, max_depth=16, tick_interval=10.0,
                heartbeat_interval=30.0, idle_timeout=3600.0,
            )
            config.site = 3  # larger id: this side dials the stalled peer
            config.peers = {2: ("127.0.0.1", stall_port)}
            daemons = await start_cluster([config])
            daemon = daemons[0]
            try:
                assert await wait_until(
                    lambda: 2 in daemon.transport.connected, timeout=5.0
                )
                connection = daemon.connections[2]
                sock = connection.writer.get_extra_info("socket")
                sock.setsockopt(socket_module.SOL_SOCKET,
                                socket_module.SO_SNDBUF, 4096)
                connection.writer.transport.set_write_buffer_limits(
                    high=4096, low=1024
                )
                queue = daemon.transport.queues[2]
                # Blast far more than cap + buffers can hold: large
                # pre-built envelopes straight through the transport
                # (the queue/writer path is under test, not the editor).
                bulk = encode_wire(EnvelopeFrame(
                    3, VectorClock({3: 1}), b"\x00" * 8192, 8192 * 8
                ))
                for _ in range(300):
                    daemon.transport.send(3, 2, bulk)
                    await asyncio.sleep(0)
                assert queue.depth <= queue.max_depth
                assert queue.shed_high > 0  # hard cap engaged
                assert queue.max_depth_seen <= queue.max_depth
                # Low-band traffic sheds at the watermark while full.
                before = queue.shed_low
                daemon.site.request_sync(2)
                assert queue.shed_low == before + 1
            finally:
                await daemons[0].shutdown()
                for task in handler_tasks:
                    task.cancel()
                stall_server.close()
                await stall_server.wait_closed()

        run(scenario())


class TestAdmissionGate:
    def test_sync_requests_declined_busy_when_saturated(self, run):
        # max_inflight_syncs=0: every remote SyncRequest is refused
        # with a typed SyncDecline(busy) the requester can score.
        async def scenario():
            configs = make_cluster_configs(
                2, tick_interval=10.0, heartbeat_interval=30.0,
            )
            configs[1].max_inflight_syncs = 0
            daemons = await start_cluster(configs)
            d1, d2 = daemons
            try:
                assert await wait_until(
                    lambda: 2 in d1.transport.connected, timeout=5.0
                )
                d1.site.request_sync(2)
                assert await wait_until(
                    lambda: d1.site.sync_declines_received >= 1,
                    timeout=5.0,
                )
                assert d2.declined_syncs >= 1
            finally:
                for daemon in daemons:
                    await daemon.shutdown()

        run(scenario())

    def test_local_writes_refused_typed_when_full(self, run):
        async def scenario():
            (config,) = make_cluster_configs(
                1, inbound_depth=4, tick_interval=10.0,
            )
            daemons = await start_cluster([config])
            daemon = daemons[0]
            try:
                for _ in range(4):
                    daemon._inbound.put_nowait((9, b"\x00"))
                with pytest.raises(OverloadedError):
                    daemon.check_admission()
                # The wire-side gate sheds and declines, typed.
                before = daemon.shed_inbound
                request = encode_wire(SyncRequest(9, VectorClock()))
                await daemon.admit(9, request)
                assert daemon.shed_inbound == before + 1
            finally:
                await daemon.shutdown()

        run(scenario())
