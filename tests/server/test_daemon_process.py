"""The acceptance gauntlet: real daemon processes, real faults.

Five ``python -m repro.server`` processes on loopback, three dial
paths routed through fault-injecting proxies (segment splits, merges,
latency), every site edited through its admin socket, one daemon
SIGKILLed mid-run and restarted on its durable store — and all five
must converge to one PosID identity digest, then exit 0 on SIGTERM.

This is the one test where the whole stack runs exactly as deployed:
separate interpreters, separate stores, bytes on real sockets, and a
crash that no amount of in-process mocking can fake.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.server.admin import AdminClient
from repro.server.faults import FaultPlan, FaultyTransport

from tests.server.conftest import free_ports

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: (dialer, dialee) pairs carrying proxies — larger site dials
#: smaller, so these are real dial paths in a five-site mesh.
PROXIED_PATHS = [(3, 1), (4, 2), (5, 3)]


class ProxyLoop:
    """FaultyTransports need an event loop; the test is synchronous
    subprocess herding, so the proxies live on a dedicated thread."""

    def __init__(self):
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )
        self.thread.start()

    def submit(self, coroutine):
        return asyncio.run_coroutine_threadsafe(
            coroutine, self.loop
        ).result(timeout=10.0)

    def call(self, function):
        done = threading.Event()
        self.loop.call_soon_threadsafe(lambda: (function(), done.set()))
        assert done.wait(timeout=10.0)

    def stop(self):
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)
        self.loop.close()


def daemon_argv(site, ports, admin_ports, store, proxy_ports):
    argv = [
        sys.executable, "-m", "repro.server",
        "--site", str(site),
        "--port", str(ports[site - 1]),
        "--admin-port", str(admin_ports[site - 1]),
        "--store", str(store),
        "--tick-interval", "0.05",
        "--heartbeat-interval", "0.2",
        "--idle-timeout", "5.0",
    ]
    for peer in range(1, len(ports) + 1):
        if peer == site:
            continue
        port = proxy_ports.get((site, peer), ports[peer - 1])
        argv += ["--peer", f"{peer}=127.0.0.1:{port}"]
    return argv


def spawn(argv):
    return subprocess.Popen(
        argv, env={**os.environ, "PYTHONPATH": SRC},
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )


def wait_admin(port, timeout=15.0):
    """Retry until the daemon's admin socket answers a ping."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with AdminClient("127.0.0.1", port, timeout=2.0) as client:
                if client.request("ping").get("ok"):
                    return True
        except (OSError, ConnectionError, ValueError):
            time.sleep(0.1)
    return False


def admin(port, op, **fields):
    with AdminClient("127.0.0.1", port, timeout=5.0) as client:
        return client.request(op, **fields)


def wait_converged(admin_ports, expected_atoms, timeout=60.0):
    """Poll every daemon's digest until all agree (hard deadline)."""
    deadline = time.monotonic() + timeout
    last = {}
    while time.monotonic() < deadline:
        try:
            last = {port: admin(port, "digest") for port in admin_ports}
        except (OSError, ConnectionError, ValueError):
            time.sleep(0.2)
            continue
        digests = {reply["digest"] for reply in last.values()}
        atoms = {reply["atoms"] for reply in last.values()}
        if len(digests) == 1 and atoms == {expected_atoms}:
            return last
        time.sleep(0.2)
    raise AssertionError(
        f"no convergence within {timeout}s: "
        + str({port: (reply.get('atoms'), reply.get('digest', '?')[:12])
               for port, reply in last.items()})
    )


@pytest.mark.slow
class TestFiveProcessCluster:
    def test_sigkill_recovery_and_identical_digests(self, tmp_path):
        n = 5
        ports = free_ports(2 * n)
        peer_ports, admin_ports = ports[:n], ports[n:]
        stores = {s: tmp_path / f"site{s}" for s in range(1, n + 1)}
        plan = FaultPlan(seed=7, split=True, merge_probability=0.25,
                         latency=0.005)

        proxy_loop = ProxyLoop()
        proxies = {}
        proxy_ports = {}
        processes = {}
        try:
            for dialer, dialee in PROXIED_PATHS:
                proxy = FaultyTransport(
                    "127.0.0.1", peer_ports[dialee - 1], plan
                )
                proxy_loop.submit(proxy.start())
                proxies[(dialer, dialee)] = proxy
                proxy_ports[(dialer, dialee)] = proxy.port

            for site in range(1, n + 1):
                processes[site] = spawn(daemon_argv(
                    site, peer_ports, admin_ports, stores[site],
                    proxy_ports,
                ))
            for site in range(1, n + 1):
                assert wait_admin(admin_ports[site - 1]), \
                    f"site {site} admin never came up"

            # Round one: every site contributes through its admin
            # socket while the proxies mangle the dial paths.
            expected = 0
            for site in range(1, n + 1):
                word = f"s{site} "
                reply = admin(admin_ports[site - 1], "edit",
                              index=0, text=word)
                assert reply["ok"], reply
                expected += len(word)
            wait_converged(admin_ports, expected)

            # The crash: SIGKILL site 4 *right after* an edit, so its
            # WAL tail holds work no peer may have seen yet.
            victim = 4
            word = "unflushed "
            assert admin(admin_ports[victim - 1], "edit",
                         index=0, text=word)["ok"]
            expected += len(word)
            processes[victim].kill()  # SIGKILL: no drain, no checkpoint
            processes[victim].wait(timeout=10.0)

            # Survivors keep editing while the victim is down.
            for site in (1, 2, 3, 5):
                word = f"+{site} "
                assert admin(admin_ports[site - 1], "edit",
                             index=0, text=word)["ok"]
                expected += len(word)

            # Restart on the same store: WAL replay, checkpoint load,
            # rejoin, and rebroadcast of the unacknowledged tail.
            processes[victim] = spawn(daemon_argv(
                victim, peer_ports, admin_ports, stores[victim],
                proxy_ports,
            ))
            assert wait_admin(admin_ports[victim - 1]), \
                "victim never came back"
            status = admin(admin_ports[victim - 1], "status")
            assert status["recovered_events"] > 0  # the WAL did work

            replies = wait_converged(admin_ports, expected)
            # PosID identity, not just text: the digest covers every
            # position identifier binding.
            assert len({r["digest"] for r in replies.values()}) == 1

            # The proxies really were in the path.
            assert sum(p.splits for p in proxies.values()) > 0
            assert sum(p.connections for p in proxies.values()) > 0

            # Clean exit: SIGTERM drains, checkpoints, exits 0.
            for site, process in processes.items():
                process.send_signal(signal.SIGTERM)
            for site, process in processes.items():
                assert process.wait(timeout=15.0) == 0, \
                    f"site {site} exited {process.returncode}"
        finally:
            for process in processes.values():
                if process.poll() is None:
                    process.kill()
                    process.wait(timeout=10.0)
            for proxy in proxies.values():
                try:
                    proxy_loop.submit(proxy.stop())
                except Exception:
                    pass
            proxy_loop.stop()
