"""WAL record framing: round-trips, torn tails, exhaustive truncation.

The central recovery contract (ISSUE satellite: exhaustive-truncation):
for EVERY byte-prefix of a valid WAL segment, a scan either recovers
all records or truncates to the last intact one — never a foreign
exception, never a phantom record.
"""

import pytest

from repro.errors import DecodeError, StorageError
from repro.storage import (
    RECORD_DRAIN,
    RECORD_ENVELOPE,
    RECORD_HEADER_BYTES,
    RECORD_LOCAL,
    RECORD_META,
    pack_record,
    read_segment,
    scan_records,
    tear_file,
)
from repro.storage.wal import check_payload


def _segment(payloads):
    return b"".join(pack_record(kind, data) for kind, data in payloads)


PAYLOADS = [
    (RECORD_META, b'{"site": 1}'),
    (RECORD_ENVELOPE, b"hello wire frame"),
    (RECORD_LOCAL, b""),
    (RECORD_ENVELOPE, bytes(range(256))),
    (RECORD_DRAIN, b""),
]


class TestRoundTrip:
    def test_records_round_trip(self):
        data = _segment(PAYLOADS)
        records, good_end = scan_records(data)
        assert good_end == len(data)
        assert [(r.kind, r.payload) for r in records] == PAYLOADS

    def test_offsets_are_contiguous(self):
        data = _segment(PAYLOADS)
        records, _ = scan_records(data)
        expected = 0
        for record in records:
            assert record.offset == expected
            assert record.end == (expected + RECORD_HEADER_BYTES
                                  + len(record.payload))
            expected = record.end

    def test_unknown_kind_is_refused_at_write_time(self):
        with pytest.raises(StorageError):
            pack_record(99, b"x")

    def test_empty_segment(self):
        assert scan_records(b"") == ([], 0)

    def test_check_payload_raises_typed_error(self):
        import zlib

        check_payload(b"abc", zlib.crc32(b"abc"))  # intact: no raise
        with pytest.raises(DecodeError):
            check_payload(b"abc", zlib.crc32(b"abd"))


class TestExhaustiveTruncation:
    """Every byte-prefix of a valid segment recovers cleanly."""

    def test_every_prefix_truncates_to_last_intact_record(self):
        data = _segment(PAYLOADS)
        full, _ = scan_records(data)
        boundaries = [0] + [r.end for r in full]
        for cut in range(len(data) + 1):
            records, good_end = scan_records(data[:cut])
            # good_end is the largest record boundary <= cut.
            expected_end = max(b for b in boundaries if b <= cut)
            assert good_end == expected_end, f"prefix {cut}"
            assert [(r.kind, r.payload) for r in records] == \
                PAYLOADS[:len(records)]
            assert (records[-1].end if records else 0) == expected_end

    def test_every_single_bit_flip_loses_at_most_a_suffix(self):
        """A flipped bit anywhere yields only intact true records up to
        the damage; nothing fabricated, no exception."""
        data = _segment(PAYLOADS[:3])
        for byte in range(len(data)):
            for bit in (0x01, 0x80):
                damaged = bytearray(data)
                damaged[byte] ^= bit
                records, good_end = scan_records(bytes(damaged))
                assert good_end <= len(data)
                # Every surviving record before the damaged byte is a
                # true record (the flip can only end the scan early or,
                # if it hit a later record, leave earlier ones alone).
                for record, expected in zip(records, PAYLOADS):
                    if record.end <= byte:
                        assert (record.kind, record.payload) == expected


class TestTearFile:
    def test_tear_and_rescan(self, tmp_path):
        path = tmp_path / "seg.log"
        data = _segment(PAYLOADS)
        path.write_bytes(data)
        full, _ = scan_records(data)
        cut = full[1].end + 3  # mid-record 3
        discarded = tear_file(path, cut)
        assert discarded == len(data) - cut
        records, good_end, size = read_segment(path)
        assert size == cut
        assert good_end == full[1].end
        assert len(records) == 2
