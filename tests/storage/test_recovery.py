"""DurableStore checkpointing, rotation, and replica recovery."""

import json

import pytest

from repro import Replica
from repro.errors import PendingEditsError, StaleStateError, StorageError
from repro.replication.cluster import Cluster
from repro.storage import (
    CrashError,
    CrashInjector,
    DurableStore,
    RECORD_ENVELOPE,
    tear_store,
)


def _store(root, **kwargs):
    kwargs.setdefault("fsync", False)  # tests simulate crashes; the
    # process survives, so the OS page cache is "durable enough".
    return DurableStore(root, **kwargs)


class TestStoreBasics:
    def test_fresh_directory_recovers_empty(self, tmp_path):
        store = _store(tmp_path / "s")
        recovered = store.recover()
        assert recovered.fresh
        assert recovered.checkpoint is None
        assert recovered.records == []

    def test_append_then_recover(self, tmp_path):
        store = _store(tmp_path / "s")
        store.recover()
        store.append(RECORD_ENVELOPE, b"one")
        store.append(RECORD_ENVELOPE, b"two")
        store.close()
        again = _store(tmp_path / "s")
        recovered = again.recover()
        assert [r.payload for r in recovered.records] == [b"one", b"two"]
        assert recovered.truncated_bytes == 0

    def test_torn_tail_truncates_physically(self, tmp_path):
        store = _store(tmp_path / "s")
        store.recover()
        store.append(RECORD_ENVELOPE, b"keep me")
        store.append(RECORD_ENVELOPE, b"lose me")
        store.close()
        path = store.wal_path
        size = path.stat().st_size
        tear_store(tmp_path / "s", offset=size - 3)
        again = _store(tmp_path / "s")
        recovered = again.recover()
        assert [r.payload for r in recovered.records] == [b"keep me"]
        assert recovered.truncated_bytes > 0
        # The repair is physical: a third recovery sees a clean file.
        third = _store(tmp_path / "s").recover()
        assert third.truncated_bytes == 0
        assert [r.payload for r in third.records] == [b"keep me"]

    def test_append_after_recovery_continues_the_log(self, tmp_path):
        store = _store(tmp_path / "s")
        store.recover()
        store.append(RECORD_ENVELOPE, b"a")
        store.close()
        again = _store(tmp_path / "s")
        again.recover()
        again.append(RECORD_ENVELOPE, b"b")
        again.close()
        final = _store(tmp_path / "s").recover()
        assert [r.payload for r in final.records] == [b"a", b"b"]

    def test_closed_store_refuses_appends(self, tmp_path):
        store = _store(tmp_path / "s")
        store.close()
        with pytest.raises(StorageError):
            store.append(RECORD_ENVELOPE, b"x")

    def test_attach_refuses_wrong_site(self, tmp_path):
        store = _store(tmp_path / "s")
        store.recover()
        store.attach(1, "udis")
        with pytest.raises(StorageError):
            store.attach(2, "udis")
        with pytest.raises(StorageError):
            store.attach(1, "sdis")


class TestCheckpointRotation:
    def _checkpoint_frame(self, site=1):
        from repro.replication.clock import VectorClock
        from repro.replication.wire import SyncResponse
        from repro.core.treedoc import Treedoc

        doc = Treedoc(site)
        doc.insert_text(0, "abc")
        return SyncResponse(site, VectorClock(), doc.capture_state()).to_wire()

    def test_checkpoint_rotates_and_prunes(self, tmp_path):
        store = _store(tmp_path / "s", retain=0)
        store.recover()
        store.append(RECORD_ENVELOPE, b"pre")
        store.write_checkpoint(self._checkpoint_frame())
        assert store.segment_id == 1
        assert not (tmp_path / "s" / "wal-00000000.log").exists()
        assert (tmp_path / "s" / "checkpoint-00000001.bin").exists()
        manifest = store.manifest()
        assert manifest["checkpoint"] == 1

    def test_retain_keeps_previous_generation(self, tmp_path):
        store = _store(tmp_path / "s", retain=1)
        store.recover()
        store.append(RECORD_ENVELOPE, b"pre")
        store.write_checkpoint(self._checkpoint_frame())
        store.append(RECORD_ENVELOPE, b"mid")
        store.write_checkpoint(self._checkpoint_frame())
        root = tmp_path / "s"
        assert (root / "checkpoint-00000002.bin").exists()
        assert (root / "checkpoint-00000001.bin").exists()
        assert not (root / "wal-00000000.log").exists()
        assert (root / "wal-00000001.log").exists()

    def test_recovery_skips_corrupt_checkpoint(self, tmp_path):
        store = _store(tmp_path / "s", retain=1)
        store.recover()
        store.append(RECORD_ENVELOPE, b"pre")
        store.write_checkpoint(self._checkpoint_frame())
        store.append(RECORD_ENVELOPE, b"tail1")
        store.write_checkpoint(self._checkpoint_frame())
        store.append(RECORD_ENVELOPE, b"tail2")
        store.close()
        # At-rest bit flip in the NEWEST checkpoint: recovery falls
        # back to the retained previous generation and replays more WAL.
        newest = tmp_path / "s" / "checkpoint-00000002.bin"
        data = bytearray(newest.read_bytes())
        data[len(data) // 2] ^= 0x40
        newest.write_bytes(bytes(data))
        recovered = _store(tmp_path / "s").recover()
        assert recovered.checkpoint_id == 1
        assert recovered.corrupt_checkpoints == 1
        assert [r.payload for r in recovered.records] == [b"tail1", b"tail2"]

    def test_checkpoint_requires_crc_terminated_frame(self, tmp_path):
        store = _store(tmp_path / "s")
        store.recover()
        with pytest.raises(StorageError):
            store.write_checkpoint(b"not a wire frame")

    def test_meta_survives_in_manifest_and_wal(self, tmp_path):
        store = _store(tmp_path / "s")
        store.recover()
        store.attach(7, "udis")
        store.append(RECORD_ENVELOPE, b"x")
        store.write_checkpoint(self._checkpoint_frame(7),
                               meta={"op_seq": 42, "dis_counter": 9})
        store.close()
        manifest = json.loads((tmp_path / "s" / "MANIFEST.json").read_text())
        assert manifest["site"] == 7 and manifest["op_seq"] == 42
        recovered = _store(tmp_path / "s").recover()
        assert recovered.meta["op_seq"] == 42
        assert recovered.meta["dis_counter"] == 9


class TestCrashPoints:
    def test_crash_before_checkpoint_rename_keeps_old_generation(
            self, tmp_path):
        injector = CrashInjector()
        store = _store(tmp_path / "s", crash_points=injector)
        store.recover()
        store.append(RECORD_ENVELOPE, b"pre")
        injector.arm("checkpoint.rename")
        from repro.core.treedoc import Treedoc
        from repro.replication.clock import VectorClock
        from repro.replication.wire import SyncResponse

        doc = Treedoc(1)
        doc.insert_text(0, "abc")
        frame = SyncResponse(1, VectorClock(), doc.capture_state()).to_wire()
        with pytest.raises(CrashError):
            store.write_checkpoint(frame)
        assert injector.fired == ["checkpoint.rename"]
        # The crash died before the rename: no checkpoint, WAL intact.
        recovered = _store(tmp_path / "s").recover()
        assert recovered.checkpoint is None
        assert [r.payload for r in recovered.records] == [b"pre"]

    def test_crash_between_checkpoint_and_rotation_is_safe(self, tmp_path):
        injector = CrashInjector()
        store = _store(tmp_path / "s", crash_points=injector)
        store.recover()
        store.append(RECORD_ENVELOPE, b"pre")
        injector.arm("checkpoint.after_write")
        from repro.core.treedoc import Treedoc
        from repro.replication.clock import VectorClock
        from repro.replication.wire import SyncResponse

        doc = Treedoc(1)
        doc.insert_text(0, "abc")
        frame = SyncResponse(1, VectorClock(), doc.capture_state()).to_wire()
        with pytest.raises(CrashError):
            store.write_checkpoint(frame)
        # Checkpoint 1 exists but segment 0 was never rotated away:
        # recovery uses the checkpoint and DROPS segment 0 — safe,
        # because the checkpoint was written after every record in it
        # took effect, so its contents are already in the snapshot.
        recovered = _store(tmp_path / "s").recover()
        assert recovered.checkpoint is not None
        assert recovered.checkpoint_id == 1
        assert recovered.records == []

    def test_torn_append_loses_only_the_torn_record(self, tmp_path):
        injector = CrashInjector()
        store = _store(tmp_path / "s", crash_points=injector)
        store.recover()
        store.append(RECORD_ENVELOPE, b"intact")
        injector.arm("wal.append.torn", keep_bytes=5)
        with pytest.raises(CrashError):
            store.append(RECORD_ENVELOPE, b"torn away")
        recovered = _store(tmp_path / "s").recover()
        assert [r.payload for r in recovered.records] == [b"intact"]
        assert recovered.truncated_bytes == 5


class TestFacadeRecovery:
    def test_outbox_restored_until_drained(self, tmp_path):
        a = Replica(1, store=_store(tmp_path / "a"))
        a.edit(0, 0, "hi")
        a.store.close()
        b = Replica(1, store=_store(tmp_path / "a"))
        assert b.text() == "hi"
        assert len(b.pending(clear=False)) == 1
        # Drain, then crash: recovery must NOT resurrect the batch.
        drained = b.pending()
        assert len(drained) == 1
        b.store.close()
        c = Replica(1, store=_store(tmp_path / "a"))
        assert c.text() == "hi"
        assert c.pending(clear=False) == []

    def test_checkpoint_relogs_pending_outbox(self, tmp_path):
        a = Replica(1, store=_store(tmp_path / "a", checkpoint_every=2))
        a.edit(0, 0, "x")
        a.edit(1, 1, "y")  # cadence hits: checkpoint with pending outbox
        assert a.store.checkpoints_written == 1
        a.store.close()
        b = Replica(1, store=_store(tmp_path / "a"))
        assert b.text() == "xy"
        # Both batches still pending (never drained), but neither was
        # re-applied (the checkpoint already contains them).
        assert len(b.pending(clear=False)) == 2
        other = Replica(2)
        for batch in b.pending():
            other.merge(batch)
        assert other.text() == "xy"

    def test_counters_restored_identifiers_stay_fresh(self, tmp_path):
        a = Replica(1, store=_store(tmp_path / "a"))
        a.edit(0, 0, "abc")
        seq_before = a.doc.op_seq
        dis_before = a.doc.dis_counter
        a.store.close()
        b = Replica(1, store=_store(tmp_path / "a"))
        assert b.doc.op_seq >= seq_before
        assert b.doc.dis_counter >= dis_before
        batch = b.edit(3, 3, "d")
        assert batch.seq_start >= seq_before

    def test_remote_merges_survive(self, tmp_path):
        a = Replica(1, store=_store(tmp_path / "a"))
        remote = Replica(2)
        remote.edit(0, 0, "hello")
        for batch in remote.pending():
            a.merge(batch)
        a.edit(5, 5, "!")
        a.store.close()
        b = Replica(1, store=_store(tmp_path / "a"))
        assert b.text() == "hello!"
        assert b.merged_batches == 1

    def test_sync_refusal_explains_pending_outbox(self, tmp_path):
        a = Replica(1)
        b = Replica(2)
        a.edit(0, 0, "mine")
        with pytest.raises(PendingEditsError, match="pending in this "
                           "replica's outbox"):
            a.sync(b)
        a.pending()
        b.edit(0, 0, "theirs")
        with pytest.raises(PendingEditsError, match="unshipped batches"):
            a.sync(b)

    def test_sync_checkpoints_adoption(self, tmp_path):
        src = Replica(2)
        src.edit(0, 0, "state")
        src.pending()
        a = Replica(1, store=_store(tmp_path / "a"))
        a.sync(src)
        assert a.store.checkpoints_written == 1
        a.store.close()
        b = Replica(1, store=_store(tmp_path / "a"))
        assert b.text() == "state"


class TestSiteRecovery:
    def test_site_recovers_and_rejoins(self, tmp_path):
        cluster = Cluster(2, seed=3)
        store = _store(tmp_path / "s3", checkpoint_every=64)
        s3 = cluster.add_site(3, store=store)
        cluster[1].insert_text(0, "shared")
        cluster.settle()
        s3.insert_text(6, " text")
        cluster.settle()
        cluster.assert_converged()
        cluster.crash_site(3)
        cluster[2].insert_text(0, "new ")
        cluster.settle()
        s3b = cluster.add_site(3, store=_store(tmp_path / "s3"))
        assert s3b.text() == "shared text"  # checkpointless WAL replay
        s3b.request_sync(1)
        cluster.settle()
        atoms = cluster.assert_converged()
        assert "".join(map(str, atoms)) == "new shared text"
        # Identifier identity, not just text equality.
        posids_1 = [cluster[1].doc.posid_at(i)
                    for i in range(len(cluster[1].doc))]
        posids_3 = [s3b.doc.posid_at(i) for i in range(len(s3b.doc))]
        assert posids_1 == posids_3

    def test_site_checkpoint_cadence_bounds_replay(self, tmp_path):
        cluster = Cluster(1, seed=5)
        store = _store(tmp_path / "s2", checkpoint_every=4)
        s2 = cluster.add_site(2, store=store)
        for i in range(10):
            s2.insert_text(i, "x")
            cluster.settle()
        assert store.checkpoints_written >= 2
        cluster.crash_site(2)
        s2b = cluster.add_site(2, store=_store(tmp_path / "s2",
                                               checkpoint_every=4))
        assert s2b.text() == "x" * 10
        # Replay was bounded by the cadence, not the whole history.
        assert s2b.recovered_events <= 4

    def test_stale_state_transfer_names_lagging_origins(self, tmp_path):
        cluster = Cluster(2, seed=11)
        cluster[1].insert_text(0, "ahead")  # not settled: site 2 is behind
        with pytest.raises(StaleStateError, match=r"origin 1: offered 0 < "
                           r"local 1"):
            # Site 1 syncing from site 2's (empty-frontier) snapshot.
            cluster[1].sync_from(cluster[2])

    def test_own_unshipped_envelope_is_rebroadcast(self, tmp_path):
        injector = CrashInjector()
        cluster = Cluster(2, seed=13)
        store = _store(tmp_path / "s3", crash_points=injector)
        s3 = cluster.add_site(3, store=store)
        cluster[1].insert_text(0, "base")
        cluster.settle()
        # Crash AFTER the journal fsync but BEFORE the network send:
        # the edit is durable locally yet never shipped.
        injector.arm("wal.append.after")  # next append: the "!" mint
        with pytest.raises(CrashError):
            s3.insert_text(4, "!")
        cluster.crash_site(3)
        s3b = cluster.add_site(3, store=_store(tmp_path / "s3"))
        assert s3b.reshipped_envelopes == 1
        cluster.settle()
        atoms = cluster.assert_converged()
        assert "".join(map(str, atoms)) == "base!"

    def test_udis_counter_survives_crash(self, tmp_path):
        cluster = Cluster(1, seed=17)
        store = _store(tmp_path / "s2")
        s2 = cluster.add_site(2, store=store)
        s2.insert_text(0, "abc")
        cluster.settle()
        minted = s2.doc.dis_counter
        assert minted >= 3
        cluster.crash_site(2)
        s2b = cluster.add_site(2, store=_store(tmp_path / "s2"))
        assert s2b.doc.dis_counter >= minted
