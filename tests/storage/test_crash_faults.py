"""Property-based crash-fault suite (ISSUE satellite 3).

Random edit/merge/flatten/collapse interleavings run against a cluster
whose network drops and corrupts frames; the durable site is then
killed at a random byte offset into its WAL, recovered from disk, and
rejoined through the ordinary anti-entropy exchange. The properties:

- the cluster reconverges (same visible atom sequence everywhere);
- identifier identity holds — the recovered site exposes the *same
  PosIDs*, not merely the same text (a UDIS mint-counter rewind or a
  lost seq range would break this, invisibly to a text comparison);
- post-recovery mints stay globally unique (the restored counters).
"""

import random
import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.replication.cluster import Cluster
from repro.replication.network import NetworkConfig
from repro.storage import DurableStore, tear_store

DURABLE = 3  # the site that crashes

ATOMS = string.ascii_lowercase

step_strategy = st.one_of(
    st.tuples(st.just("insert"), st.integers(0, 2), st.integers(0, 100),
              st.text(ATOMS, min_size=1, max_size=4)),
    st.tuples(st.just("delete"), st.integers(0, 2), st.integers(0, 100),
              st.integers(1, 3)),
    st.tuples(st.just("settle"), st.just(0), st.just(0), st.just(0)),
    st.tuples(st.just("collapse"), st.just(0), st.just(0), st.just(0)),
    st.tuples(st.just("flatten"), st.integers(0, 2), st.just(0), st.just(0)),
)


def _run_steps(cluster, steps):
    ids = cluster.site_ids
    for verb, which, position, arg in steps:
        site = cluster.sites[ids[which % len(ids)]]
        if verb == "insert":
            site.insert_text(position % (len(site.doc) + 1), arg)
        elif verb == "delete":
            length = len(site.doc)
            if length:
                start = position % length
                end = min(length, start + arg)
                if end > start:
                    site.delete_range(start, end)
        elif verb == "settle":
            cluster.settle()
        elif verb == "collapse":
            site.note_revision()
            site.note_revision()
            site.collapse_cold(min_age=1, min_atoms=2)
        elif verb == "flatten":
            cluster.settle()  # a quiescent initiator tends to commit
            if len(site.doc):
                from repro.core.path import PosID

                site.initiate_flatten(PosID())
            cluster.settle()


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    steps=st.lists(step_strategy, min_size=2, max_size=12),
    seed=st.integers(0, 2**32 - 1),
    checkpoint_every=st.sampled_from([2, 5, 64]),
)
def test_kill_recover_rejoin_converges(tmp_path_factory, steps, seed,
                                       checkpoint_every):
    root = tmp_path_factory.mktemp("wal")
    config = NetworkConfig(drop_rate=0.1, corruption_rate=0.05,
                           duplicate_rate=0.05)
    cluster = Cluster(2, config=config, seed=seed)
    store = DurableStore(root / "site", checkpoint_every=checkpoint_every,
                         fsync=False)
    durable = cluster.add_site(DURABLE, store=store)
    cluster.bootstrap("the quick brown fox")

    _run_steps(cluster, steps)

    # Kill -9 at a random byte offset into the newest WAL segment.
    cluster.crash_site(DURABLE)
    rng = random.Random(seed)
    tear_store(root / "site", rng=rng)

    # Traffic continues while the site is down.
    cluster.sites[cluster.site_ids[0]].insert_text(0, "Z")
    cluster.settle()

    # Restart from disk, rejoin via anti-entropy.
    recovered = cluster.add_site(
        DURABLE, store=DurableStore(root / "site",
                                    checkpoint_every=checkpoint_every,
                                    fsync=False)
    )
    cluster.settle()
    recovered.request_sync(cluster.site_ids[0])
    cluster.settle()
    cluster.anti_entropy(max_rounds=16)

    # A post-recovery local mint must stay globally fresh.
    recovered.insert_text(len(recovered.doc), "q")
    cluster.settle()
    cluster.anti_entropy(max_rounds=16)

    atoms = cluster.assert_converged()
    assert atoms  # never converges on the empty document here

    # Identifier identity: same PosIDs at every site, not just text.
    reference = None
    for site in cluster:
        posids = [site.doc.posid_at(i) for i in range(len(site.doc))]
        if reference is None:
            reference = posids
        else:
            assert posids == reference


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    edits=st.lists(st.tuples(st.integers(0, 100),
                             st.text(ATOMS, min_size=1, max_size=3)),
                   min_size=1, max_size=8),
    offset_frac=st.floats(0.0, 1.0),
)
def test_facade_tear_at_every_offset_recovers(tmp_path_factory, edits,
                                              offset_frac):
    """The facade replica: tear the WAL at an arbitrary fraction of its
    length; recovery yields a document equal to some clean prefix of
    the edit history (truncate-to-last-intact, nothing fabricated)."""
    from repro import Replica

    root = tmp_path_factory.mktemp("wal")
    replica = Replica(1, store=DurableStore(root / "r", fsync=False,
                                            checkpoint_every=None))
    prefixes = [replica.text()]
    for position, text in edits:
        replica.edit(position % (len(replica.doc) + 1),
                     position % (len(replica.doc) + 1), text)
        prefixes.append(replica.text())
    store = replica.store
    offset = int(offset_frac * store.wal_bytes)
    store.close()
    tear_store(root / "r", offset=offset)

    recovered = Replica(1, store=DurableStore(root / "r", fsync=False,
                                              checkpoint_every=None))
    assert recovered.text() in prefixes
    # And the survivor can keep editing with fresh identifiers.
    recovered.edit(0, 0, "ok")
    assert recovered.text().startswith("ok")
