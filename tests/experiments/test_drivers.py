"""Experiment drivers: structure and headline shapes on a fast corpus.

The full corpora run in the benchmarks; here each driver is exercised on
the smallest documents (or trimmed grids) so the test suite stays fast,
and the paper's qualitative findings are asserted where they are stable.
"""

import pytest

from repro.experiments import figure6, table1, table2, table3, table4, table5
from repro.experiments.common import history_for, run_document
from repro.workloads.corpus import document_spec

FAST_DOC = document_spec("acf.tex")
SEED = 11


class TestRunDocument:
    def test_measurements_present(self):
        run = run_document(FAST_DOC, mode="sdis", flatten_every=2, seed=SEED)
        assert run.stats.live_atoms == FAST_DOC.final_atoms
        assert run.replay.flattens > 0
        assert run.stats.disk_overhead_bytes > 0

    def test_history_cache_reuses(self):
        a = history_for(FAST_DOC, SEED)
        b = history_for(FAST_DOC, SEED)
        assert a is b


class TestTableShapes:
    def test_table1_rows_for_one_document(self):
        rows = table1.run(seed=SEED, documents=[FAST_DOC])
        assert [r.flatten for r in rows] == ["no", "2", "8", "2+ar"]
        no_flatten, flatten2, flatten8, mixed = rows
        # Flattening shrinks everything (Table 1's headline).
        assert flatten2.nodes < no_flatten.nodes
        assert flatten2.avg_posid_bits < no_flatten.avg_posid_bits
        assert flatten2.disk_overhead_bytes < no_flatten.disk_overhead_bytes
        assert flatten2.non_tombstone_pct > no_flatten.non_tombstone_pct
        # Without collapse, the mixed overhead equals the pure-tree one;
        # with live mixed storage it can only shrink (section 4.2).
        assert flatten2.mixed_bytes == flatten2.node_bytes
        assert flatten2.array_leaves == 0
        assert mixed.mixed_bytes <= mixed.node_bytes
        rendered = table1.render(rows)
        assert "acf.tex" in rendered
        assert "Mixed bytes" in rendered

    def test_table2_summary(self):
        rows = table2.run(seed=SEED)
        labels = [r.label for r in rows]
        assert labels == ["average", "less active", "most active"]
        less, most = rows[1], rows[2]
        assert most.revisions == 870 and less.revisions == 51
        assert "Table 2" in table2.render(rows)

    def test_table5_ratio_structure(self):
        # One document suffices for the smoke check; Logoot pays more.
        from repro.baselines.logoot import LogootDoc
        from repro.workloads.replay import replay_into

        history = history_for(FAST_DOC, SEED)
        logoot = LogootDoc(site=1, seed=SEED)
        replay_into(logoot, history)
        treedoc = run_document(FAST_DOC, mode="udis", seed=SEED,
                               with_disk=False)
        assert logoot.total_id_bits() > treedoc.stats.total_posid_bits

    def test_figure6_samples_and_drops(self):
        samples = figure6.run(seed=SEED, flatten_every=2)
        assert len(samples) == FAST_DOC.revisions
        totals = [s.total_nodes for s in samples]
        assert max(totals) > totals[0]
        # flatten events appear as drops of the total curve
        assert any(b < a for a, b in zip(totals, totals[1:]))
        assert all(
            s.non_tombstone_nodes <= s.total_nodes for s in samples
        )
        rendered = figure6.render(samples)
        assert "Figure 6" in rendered


@pytest.mark.slow
class TestFullGridShapes:
    """The complete grids (minutes, exercised by the benchmarks too)."""

    def test_table3_ordering(self):
        rows = table3.run(seed=SEED)
        no_flatten, flatten8, flatten2 = rows
        for attribute in ("tombstone_pct_unbalanced", "tombstone_pct_balanced"):
            assert getattr(flatten2, attribute) < getattr(flatten8, attribute)
            assert getattr(flatten8, attribute) < getattr(no_flatten, attribute)

    def test_table4_udis_wins_without_flatten(self):
        rows = table4.run(seed=SEED)
        no_flatten = rows[0]
        for balanced in (False, True):
            sdis = no_flatten.cells[(balanced, "sdis")]
            udis = no_flatten.cells[(balanced, "udis")]
            # UDIS costs more per identifier but less in total.
            assert udis.avg_posid_bits > sdis.avg_posid_bits
            assert udis.overhead_per_atom_bits < sdis.overhead_per_atom_bits
