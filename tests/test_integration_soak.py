"""Full-stack soak: everything at once, for many rounds.

Five SDIS sites on a lossy, duplicating, reordering network; continuous
concurrent editing; periodic distributed flattens through the
commitment protocol; periodic ack gossip purging stable tombstones; a
partition and heal in the middle. At every checkpoint all replicas must
agree and every tree invariant must hold — the CRDT promise under
everything the paper's system model throws at it.
"""

import random

from repro.core.path import ROOT
from repro.replication.cluster import Cluster
from repro.replication.commit import CommitDecision
from repro.replication.network import NetworkConfig


def test_soak_everything_at_once():
    cluster = Cluster(
        5,
        mode="sdis",
        tombstone_gc=True,
        config=NetworkConfig(
            drop_rate=0.15, duplicate_rate=0.1,
            min_latency=1, max_latency=150,
        ),
        seed=20090622,  # ICDCS 2009's week, why not
    )
    cluster.bootstrap([f"w{i}" for i in range(30)])
    rng = random.Random(42)
    committed_flattens = 0

    for round_number in range(24):
        # Concurrent edit burst at every site.
        for site in cluster:
            for _ in range(rng.randint(0, 3)):
                if len(site) > 10 and rng.random() < 0.45:
                    site.delete(rng.randrange(len(site)))
                else:
                    site.insert(
                        rng.randint(0, len(site)),
                        f"s{site.site}r{round_number}",
                    )
        cluster.settle()
        cluster.assert_converged()

        if round_number == 8:
            with cluster.partitioned({1, 2}, {3, 4, 5}):
                cluster[1].insert(0, "left-side")
                cluster[4].insert(0, "right-side")
                cluster.settle()
                assert cluster[1].atoms() != cluster[4].atoms()
            cluster.settle()
            cluster.assert_converged()

        if round_number % 6 == 5:
            coordinator = cluster[(round_number % 5) + 1].initiate_flatten(ROOT)
            cluster.settle()
            assert coordinator.decision in (
                CommitDecision.COMMITTED, CommitDecision.ABORTED
            )
            if coordinator.decision is CommitDecision.COMMITTED:
                committed_flattens += 1
            cluster.assert_converged()
            assert all(site.locked_regions == 0 for site in cluster)

        if round_number % 4 == 3:
            cluster.gossip_acks()
            cluster.assert_converged()

    cluster.settle()
    cluster.gossip_acks()
    content = cluster.assert_converged()
    assert len(content) > 30  # the document grew through the churn
    # Quiescent + gossiped: every tombstone is stable and purged.
    for site in cluster:
        assert site.doc.tree.id_length == len(site.doc)
        site.doc.check()
    # At least one flatten committed during a quiet window.
    assert committed_flattens >= 1


def test_soak_udis_three_sites_heavy_churn():
    cluster = Cluster(
        3, mode="udis",
        config=NetworkConfig(drop_rate=0.3, duplicate_rate=0.2),
        seed=7,
    )
    cluster.bootstrap(list("seed"))
    rng = random.Random(7)
    for round_number in range(40):
        for site in cluster:
            for _ in range(rng.randint(0, 4)):
                if len(site) > 2 and rng.random() < 0.5:
                    site.delete(rng.randrange(len(site)))
                else:
                    # Atoms are text on the wire (the codec ships UTF-8
                    # payloads), so sites insert strings.
                    site.insert(rng.randint(0, len(site)),
                                f"r{round_number}")
        if round_number % 5 == 0:
            cluster.settle()
            cluster.assert_converged()
    cluster.settle()
    cluster.assert_converged()
    for site in cluster:
        # UDIS: no tombstones, ever.
        assert site.doc.tree.id_length == len(site.doc)
