"""State-transfer anti-entropy: catch-up, safety checks, causal hand-off."""

import pytest

from repro.core.path import ROOT
from repro.errors import SyncError
from repro.replica import Replica
from repro.replication.network import SimulatedNetwork
from repro.replication.site import ReplicaSite
from repro.replication.sync import StateTransfer


def _settled_pair(mode="sdis"):
    """Two converged sites with a committed flatten and a collapsed,
    quiescent document on site 1."""
    net = SimulatedNetwork(seed=7)
    a = ReplicaSite(1, net, mode=mode)
    b = ReplicaSite(2, net, mode=mode)
    a.insert_text(0, list("the quick brown fox jumps over the lazy dog"))
    net.run()
    coordinator = a.initiate_flatten(ROOT)
    net.run()
    assert coordinator.decision is not None
    a.note_revision()
    a.collapse_cold(min_age=0, min_atoms=4)
    return net, a, b


class TestSiteSync:
    def test_late_joiner_catches_up_identifier_identical(self):
        net, a, b = _settled_pair()
        c = ReplicaSite(3, net, mode="sdis")
        stats = c.sync_from(a)
        assert stats.atoms == len(a.doc)
        assert stats.run_segments > 0
        assert stats.loaded_leaves > 0  # runs landed as leaves, unexploded
        assert c.doc.posids() == a.doc.posids()
        assert c.text() == a.text()

    def test_post_sync_editing_converges(self):
        net, a, b = _settled_pair()
        c = ReplicaSite(3, net, mode="sdis")
        c.sync_from(a)
        c.insert_text(4, list("VERY "))
        b.insert_text(0, list(">> "))
        net.run()
        assert a.text() == b.text() == c.text()
        assert a.doc.posids() == b.doc.posids() == c.doc.posids()

    def test_diverged_receiver_refused_and_unchanged(self):
        net, a, b = _settled_pair()
        d = ReplicaSite(4, net, mode="sdis")
        d.insert_text(0, list("local-only"))
        before = d.text()
        with pytest.raises(SyncError):
            d.sync_from(a)
        assert d.text() == before
        # Once the sender has seen d's edits, the same sync is legal.
        net.run()
        d.sync_from(a)
        assert d.text() == a.text()
        assert d.doc.posids() == a.doc.posids()

    def test_self_sync_refused(self):
        net, a, b = _settled_pair()
        with pytest.raises(SyncError):
            a.apply_state_transfer(a.make_state_transfer())

    def test_mode_mismatch_refused(self):
        net, a, b = _settled_pair(mode="sdis")
        other_net = SimulatedNetwork(seed=9)
        u = ReplicaSite(5, other_net, mode="udis")
        with pytest.raises(SyncError):
            u.apply_state_transfer(a.make_state_transfer())

    def test_buffered_envelopes_covered_by_snapshot_are_dropped(self):
        net = SimulatedNetwork(seed=7)
        a = ReplicaSite(1, net, mode="sdis")
        a.insert_text(0, list("first "))
        net.run()
        c = ReplicaSite(3, net, mode="sdis")  # joined after the first batch
        a.insert_text(len(a.doc), list("second"))
        net.run()
        # c holds the second envelope but can never deliver it: the
        # first one predates its registration.
        assert c.broadcast.buffered == 1
        assert len(c.doc) == 0
        stats = c.sync_from(a)
        assert stats.atoms == len(a.doc)
        assert c.broadcast.buffered == 0  # duplicate of the snapshot
        assert c.text() == a.text()

    def test_catch_up_unblocks_future_deliveries(self):
        net = SimulatedNetwork(seed=7)
        a = ReplicaSite(1, net, mode="sdis")
        a.insert_text(0, list("first "))  # not yet run: only a has it
        c = ReplicaSite(3, net, mode="sdis")
        c.apply_state_transfer(a.make_state_transfer())
        net.run()  # the original envelope arrives late: dropped as dup
        assert c.text() == a.text()
        a.insert_text(len(a.doc), list("second"))
        net.run()
        assert c.text() == a.text()

    def test_synced_site_votes_no_on_stale_flatten_snapshots(self):
        net, a, b = _settled_pair()
        stale_snapshot = b.broadcast.clock.copy()
        a.insert_text(0, list("new "))
        net.run()
        c = ReplicaSite(3, net, mode="sdis")
        c.sync_from(a)
        from repro.replication.commit import PrepareMsg

        prepare = PrepareMsg("t0", ROOT, stale_snapshot, b.site)
        assert c._vote(prepare) is False

    def test_transfer_wire_bytes_accounting(self):
        net, a, b = _settled_pair()
        transfer = a.make_state_transfer()
        assert isinstance(transfer, StateTransfer)
        assert transfer.wire_bytes > transfer.state.frame_bytes
        assert transfer.state.run_segments > 0


class TestReplicaFacadeSync:
    def test_sync_replaces_and_reports(self):
        source = Replica(site=1)
        source.edit(0, 0, "state transfer moves settled documents cheaply")
        source.pending()
        source.doc.note_revision()
        source.doc.flatten_local(ROOT)
        source.doc.collapse_cold(min_age=0, min_atoms=4)
        target = Replica(site=2)
        report = target.sync(source)
        assert report.atoms == len(source)
        assert report.run_segments > 0
        assert target.doc.posids() == source.doc.posids()
        assert target.snapshot() == source.snapshot()
        assert target.synced_states == 1

    def test_pending_outbox_blocks_sync(self):
        source = Replica(site=1)
        source.edit(0, 0, "abc")
        source.pending()
        target = Replica(site=2)
        target.edit(0, 0, "unshipped")
        with pytest.raises(SyncError):
            target.sync(source)

    def test_unshipped_source_outbox_blocks_sync(self):
        # A snapshot taken while the source holds unshipped batches
        # embeds those edits; replaying the batches later against the
        # synced replica can fault (insert at a tombstoned identifier).
        source = Replica(site=1)
        source.edit(0, 0, "hello world")
        source.edit(0, 3)  # still in the outbox alongside the insert
        target = Replica(site=2)
        with pytest.raises(SyncError):
            target.sync(source)
        # Once shipped (and merged), the same sync is legal.
        target.merge(source.pending())
        target2 = Replica(site=3)
        target2.sync(source)
        assert target2.text() == source.text()

    def test_snapshot_cache_does_not_leak_across_sync(self):
        source = Replica(site=1)
        source.edit(0, 0, "fresh content")
        source.pending()
        target = Replica(site=2)
        stale = target.snapshot()
        target.sync(source)
        assert target.snapshot().text == "fresh content"
        assert target.snapshot() != stale
