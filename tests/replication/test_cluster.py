"""Cluster integration: multi-site editing under adverse conditions."""

import random

import pytest

from repro.errors import ReplicationError
from repro.replication.cluster import Cluster
from repro.replication.network import NetworkConfig


def _random_edits(cluster, rng, rounds, settle_every=None):
    for round_number in range(rounds):
        for site in cluster:
            for _ in range(rng.randint(0, 2)):
                if len(site) and rng.random() < 0.3:
                    site.delete(rng.randrange(len(site)))
                else:
                    site.insert(
                        rng.randint(0, len(site)),
                        f"s{site.site}r{round_number}",
                    )
        if settle_every and round_number % settle_every == 0:
            cluster.settle()


class TestConvergence:
    @pytest.mark.parametrize("mode", ["udis", "sdis"])
    @pytest.mark.parametrize("n_sites", [2, 3, 5])
    def test_concurrent_editing_converges(self, mode, n_sites):
        cluster = Cluster(n_sites, mode=mode, seed=n_sites)
        cluster.bootstrap(list("seed text here"))
        _random_edits(cluster, random.Random(n_sites), rounds=15)
        cluster.settle()
        cluster.assert_converged()

    def test_convergence_under_loss_reordering_duplication(self):
        cluster = Cluster(
            4, mode="sdis",
            config=NetworkConfig(
                drop_rate=0.25, duplicate_rate=0.15,
                min_latency=1, max_latency=300,
            ),
            seed=42,
        )
        cluster.bootstrap(list("abcdef"))
        _random_edits(cluster, random.Random(42), rounds=20)
        cluster.settle()
        content = cluster.assert_converged()
        assert content  # something survived

    def test_partition_diverges_then_heals(self):
        cluster = Cluster(4, mode="udis", seed=8)
        cluster.bootstrap(list("common"))
        with cluster.partitioned({1, 2}, {3, 4}):
            cluster[1].insert(0, "L")
            cluster[3].insert(0, "R")
            cluster.settle()
            left = cluster[1].atoms()
            right = cluster[3].atoms()
            assert left != right  # partitions diverge
            assert cluster[2].atoms() == left  # intra-group replication
            assert cluster[4].atoms() == right
        cluster.settle()
        cluster.assert_converged()

    def test_offline_site_catches_up(self):
        cluster = Cluster(3, mode="sdis", seed=4)
        cluster.bootstrap(list("abc"))
        rng = random.Random(4)
        with cluster.partitioned({3}):
            for _ in range(10):
                cluster[1].insert(rng.randint(0, len(cluster[1])), "x")
                cluster[2].insert(rng.randint(0, len(cluster[2])), "y")
            cluster.settle()
            assert len(cluster[3]) == 3  # unchanged while isolated
        cluster.settle()
        cluster.assert_converged()
        assert len(cluster[3]) == 23

    def test_assert_converged_requires_quiescence(self):
        cluster = Cluster(2, seed=1)
        cluster[1].insert(0, "a")
        with pytest.raises(ReplicationError):
            cluster.assert_converged()
        cluster.settle()
        cluster.assert_converged()

    def test_assert_converged_refuses_held_messages(self):
        # Regression: a partitioned cluster with messages held behind
        # the partition used to "pass" convergence — the held traffic
        # means some site has not seen everything, so agreement among
        # the others is vacuous.
        cluster = Cluster(3, seed=6)
        cluster.bootstrap(list("abc"))
        with cluster.partitioned({1, 2}, {3}):
            cluster[1].insert(0, "x")
            cluster.settle()
            assert cluster.network.held > 0
            with pytest.raises(ReplicationError, match="held"):
                cluster.assert_converged()
        cluster.settle()
        cluster.assert_converged()

    def test_minimum_cluster_size(self):
        with pytest.raises(ReplicationError):
            Cluster(0)


class TestPartitionedContext:
    def test_heals_on_normal_exit(self):
        cluster = Cluster(3, seed=7)
        cluster.bootstrap(list("abc"))
        with cluster.partitioned({1, 2}, {3}) as same:
            assert same is cluster
            cluster[1].insert(0, "x")
            cluster.settle()
            assert not cluster.network.reachable(1, 3)
            assert cluster.network.held > 0
        # Healed: the held envelope is released and deliverable.
        assert cluster.network.reachable(1, 3)
        assert cluster.network.held == 0
        cluster.settle()
        cluster.assert_converged()

    def test_heals_on_exception(self):
        # A failing assertion inside the block must not leak a split
        # network into teardown or the next test round.
        cluster = Cluster(3, seed=7)
        cluster.bootstrap(list("abc"))
        with pytest.raises(RuntimeError, match="mid-partition"):
            with cluster.partitioned({1}, {2, 3}):
                cluster[2].insert(0, "y")
                raise RuntimeError("boom mid-partition")
        assert cluster.network.reachable(1, 2)
        cluster.settle()
        cluster.assert_converged()

    def test_nests_like_repartition(self):
        # An inner partitioned() replaces the outer split (the network
        # holds one partition at a time); the inner exit heals fully —
        # same semantics as calling partition() twice then heal().
        cluster = Cluster(3, seed=9)
        cluster.bootstrap(list("ab"))
        with cluster.partitioned({1}, {2, 3}):
            with cluster.partitioned({1, 2}, {3}):
                assert cluster.network.reachable(1, 2)
                assert not cluster.network.reachable(2, 3)
            assert cluster.network.reachable(2, 3)
        cluster.settle()
        cluster.assert_converged()


class TestWireDiscipline:
    def test_cluster_traffic_is_bytes_only(self):
        # The acceptance bar of the bytes-first redesign: every payload
        # a cluster scenario puts on the network — envelopes, votes,
        # aborts, acks, sync traffic — is a bytes wire frame.
        from repro.core.path import ROOT
        from repro.replication.sync import AntiEntropyPolicy

        cluster = Cluster(
            3, mode="sdis", seed=11, tombstone_gc=True,
            policy=AntiEntropyPolicy(max_buffered=1, max_gap_age=0.0,
                                     min_request_interval=0.0),
        )
        observed = []
        original_send = cluster.network.send

        def spying_send(src, dst, payload):
            observed.append(payload)
            original_send(src, dst, payload)

        cluster.network.send = spying_send
        cluster.bootstrap(list("abcdefgh"))
        cluster[1].delete_range(0, 2)
        cluster[2].insert_text(0, list("xy"))
        cluster.settle()
        cluster[1].initiate_flatten(ROOT)
        cluster.settle()
        cluster.gossip_acks()
        late = cluster.add_site()
        cluster[1].insert_text(0, list("z "))
        cluster.anti_entropy()
        cluster.assert_converged()
        assert late.sync_responses_applied >= 1  # sync traffic included
        assert observed and all(
            isinstance(payload, bytes) for payload in observed
        )

    def test_network_rejects_object_payloads(self):
        cluster = Cluster(2, seed=1)
        with pytest.raises(ReplicationError):
            cluster.network.send(1, 2, {"not": "bytes"})


class TestOptimisticLocalEdits:
    def test_local_edit_visible_immediately(self):
        # "Common edit operations execute optimistically, with no
        # latency; replicas synchronise only in the background."
        cluster = Cluster(2, seed=1)
        cluster[1].insert(0, "now")
        assert cluster[1].atoms() == ["now"]
        assert cluster[2].atoms() == []
        cluster.settle()
        assert cluster[2].atoms() == ["now"]
