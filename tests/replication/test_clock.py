"""Vector and Lamport clock algebra."""

from hypothesis import given
from hypothesis import strategies as st

from repro.replication.clock import LamportClock, VectorClock

clock_strategy = st.dictionaries(
    st.integers(0, 4), st.integers(1, 10), max_size=5
).map(VectorClock)


class TestVectorClock:
    def test_tick_increments_only_own_component(self):
        clock = VectorClock().tick(1).tick(1).tick(2)
        assert clock.get(1) == 2
        assert clock.get(2) == 1
        assert clock.get(3) == 0

    def test_merge_is_componentwise_max(self):
        a = VectorClock({1: 3, 2: 1})
        b = VectorClock({2: 4, 3: 2})
        merged = a.merge(b)
        assert (merged.get(1), merged.get(2), merged.get(3)) == (3, 4, 2)

    def test_dominates_and_concurrency(self):
        base = VectorClock({1: 1})
        later = base.tick(1).tick(2)
        assert later.dominates(base)
        assert later.strictly_dominates(base)
        assert not base.dominates(later)
        other = base.tick(3)
        assert later.concurrent_with(other)

    def test_equality_ignores_zero_components(self):
        assert VectorClock({1: 2, 3: 0}) == VectorClock({1: 2})
        assert hash(VectorClock({1: 2, 3: 0})) == hash(VectorClock({1: 2}))

    def test_immutability_of_operations(self):
        base = VectorClock({1: 1})
        base.tick(1)
        base.merge(VectorClock({2: 5}))
        assert base.get(1) == 1 and base.get(2) == 0

    @given(clock_strategy, clock_strategy)
    def test_merge_dominates_both(self, a, b):
        merged = a.merge(b)
        assert merged.dominates(a) and merged.dominates(b)

    @given(clock_strategy, clock_strategy)
    def test_dominance_antisymmetric_up_to_equality(self, a, b):
        if a.dominates(b) and b.dominates(a):
            assert a == b

    @given(clock_strategy, clock_strategy, clock_strategy)
    def test_dominance_transitive(self, a, b, c):
        if a.dominates(b) and b.dominates(c):
            assert a.dominates(c)


class TestLamportClock:
    def test_tick_monotonic(self):
        clock = LamportClock()
        assert clock.tick() == 1
        assert clock.tick() == 2

    def test_observe_jumps_past_remote(self):
        clock = LamportClock(3)
        assert clock.observe(10) == 11
        assert clock.observe(2) == 12
