"""Scripted churn at scale: joins, graceful leaves, crashes, durable
recovery and partitions interleaved with live traffic under drop and
corruption faults — the cluster must converge with full PosID identity,
request fan-in must stay bounded, and the wire-byte accounting must
add up."""

import pytest

from repro.errors import ReplicationError
from repro.replication.cluster import ChurnEvent, Cluster
from repro.replication.network import NetworkConfig
from repro.replication.sync import AntiEntropyPolicy
from repro.storage.store import DurableStore

#: Churn policy: quick triggers so the scripted steps exercise the
#: sync machinery, full jitter so the fleet desynchronizes.
CHURN_POLICY = AntiEntropyPolicy(max_buffered=4, max_gap_age=150.0,
                                 min_request_interval=100.0,
                                 jitter=0.5, jitter_seed=42)

FAULTY = NetworkConfig(drop_rate=0.15, corruption_rate=0.05,
                       min_latency=1, max_latency=40)


class TestHundredSiteChurn:
    def test_100_sites_converge_under_scripted_churn(self, tmp_path):
        cluster = Cluster(100, mode="sdis", config=FAULTY, seed=11,
                          policy=CHURN_POLICY)
        cluster.bootstrap(list("hello world, treedoc under churn"))
        ids = cluster.site_ids
        # One durable site rides the crash/recover arc; volatile sites
        # only ever leave or crash for good.
        durable = cluster.add_site(
            store=DurableStore(tmp_path / "durable", fsync=False))
        schedule = [
            ChurnEvent(1, "crash", site=durable.site),
            ChurnEvent(2, "crash", site=ids[7]),
            ChurnEvent(3, "partition",
                       groups=(tuple(ids[:30]),)),
            ChurnEvent(5, "join"),
            ChurnEvent(6, "leave", site=ids[13]),
            ChurnEvent(7, "recover", site=durable.site),
            ChurnEvent(8, "heal"),
            ChurnEvent(9, "join"),
            ChurnEvent(11, "leave", site=ids[20]),
            ChurnEvent(12, "partition",
                       groups=(tuple(ids[40:70]),)),
            ChurnEvent(13, "heal"),
        ]
        report = cluster.run_churn(schedule, steps=16, edits_per_step=3,
                                   pump=400, seed=5)
        assert report["actions"] == len(schedule)
        assert report["edits"] > 0
        cluster.converge(max_cycles=40)
        atoms = cluster.assert_converged(identities=True)
        assert len(atoms) > len("hello world, treedoc under churn") // 2
        assert len(cluster) == 100  # -2 crashed/left +1 joins... net

        # Bounded fan-in: rotation + jitter keep any one responder
        # from absorbing the fleet's requests.
        requests = sum(s.sync_requests_sent for s in cluster)
        fan_in = max(s.sync_requests_received for s in cluster)
        assert fan_in <= max(10, requests // 4)

        # Delta service happened under churn (not only full snapshots).
        assert sum(s.sync_deltas_applied for s in cluster) > 0

        # Per-site wire accounting covers every participant, departed
        # ones included, and totals match the network's own counter.
        per_site = cluster.wire_bytes_per_site()
        assert sum(v["sent"] for v in per_site.values()) \
            == cluster.network.bytes_delivered
        assert all(v["received"] > 0 for s, v in per_site.items()
                   if s in cluster.sites)

    def test_mid_size_churn_with_tombstone_gc(self, tmp_path):
        # Piggybacked acks under churn: the stable frontier (and the
        # purge behind it) advances with zero dedicated ack frames.
        cluster = Cluster(20, mode="sdis", config=FAULTY, seed=23,
                          policy=CHURN_POLICY, tombstone_gc=True)
        cluster.bootstrap(list("tombstones under churn, ho"))
        ids = cluster.site_ids
        cluster[ids[2]].delete_range(3, 9)
        schedule = [
            ChurnEvent(2, "leave", site=ids[5]),
            ChurnEvent(4, "join"),
            ChurnEvent(6, "leave", site=ids[11]),
        ]
        cluster.run_churn(schedule, steps=10, edits_per_step=2,
                          pump=300, seed=7)
        cluster.converge(max_cycles=40)
        # Stability needs every member to have spoken past the deletes
        # (an unheard member pins the frontier, by design). Steady
        # traffic — one edit each, no ack frames — is enough.
        for site in cluster:
            site.insert(0, f"t{site.site}")
        cluster.settle()
        cluster.converge(max_cycles=40)
        cluster.assert_converged(identities=True)
        # The leavers were forgotten, so the frontier moved without
        # them — and envelope/sync piggybacks alone drove it (no site
        # ever called broadcast_ack).
        assert min(s.purged_tombstones for s in cluster) > 0


class TestChurnHarness:
    def test_leave_unpins_the_stable_frontier(self):
        cluster = Cluster(3, mode="sdis", seed=31, tombstone_gc=True,
                          policy=AntiEntropyPolicy(jitter=0.0))
        cluster.bootstrap(list("abcdef"))
        mute = cluster.site_ids[-1]
        cluster[1].delete_range(1, 3)
        cluster.settle()
        cluster.leave_site(mute)
        # Post-leave traffic completes the 2-member frontier.
        cluster[2].insert(0, "!")
        cluster[1].insert(0, "?")
        cluster.settle()
        assert cluster[1].purged_tombstones == 2
        assert cluster[2].purged_tombstones == 2
        cluster.assert_converged(identities=True)

    def test_volatile_recover_is_refused(self):
        cluster = Cluster(3, seed=1)
        cluster.bootstrap(list("abc"))
        with pytest.raises(ReplicationError, match="durable store"):
            cluster.run_churn([
                ChurnEvent(0, "crash", site=1),
                ChurnEvent(1, "recover", site=1),
            ], steps=2, edits_per_step=0)

    def test_unknown_action_is_refused(self):
        cluster = Cluster(2, seed=1)
        with pytest.raises(ReplicationError, match="unknown churn"):
            cluster.run_churn([ChurnEvent(0, "explode", site=1)],
                              steps=1, edits_per_step=0)

    def test_leave_of_unknown_site_is_refused(self):
        cluster = Cluster(2, seed=1)
        with pytest.raises(ReplicationError):
            cluster.leave_site(99)

    def test_durable_crash_recover_round_trip(self, tmp_path):
        cluster = Cluster(2, mode="sdis", seed=33,
                          policy=AntiEntropyPolicy(
                              max_buffered=1, max_gap_age=0.0,
                              min_request_interval=0.0, jitter=0.0))
        cluster.bootstrap(list("durable churn"))
        durable = cluster.add_site(
            store=DurableStore(tmp_path / "d", fsync=False))
        cluster[1].insert(0, "!")
        cluster.anti_entropy()  # the joiner closes its gap by snapshot
        assert durable.text() == cluster[1].text()
        cluster.run_churn([
            ChurnEvent(0, "crash", site=durable.site),
            ChurnEvent(2, "recover", site=durable.site),
        ], steps=4, edits_per_step=1, pump=100, seed=3)
        cluster.converge()
        cluster.assert_converged(identities=True)
        recovered = cluster[durable.site]
        assert recovered is not durable  # a fresh process over the store
        assert recovered.text() == cluster[1].text()

    def test_anti_entropy_advances_time_for_lazy_policies(self):
        # Default (lazy) policy thresholds never expire in a quiesced
        # simulation; anti_entropy now advances simulated time itself.
        from repro.replication.site import ReplicaSite
        from tests.replication.test_delta_sync import _future_envelope

        cluster = Cluster(2, mode="sdis", seed=35,
                          policy=AntiEntropyPolicy())  # lazy defaults
        cluster.bootstrap(list("lazy"))
        cluster[1].insert(0, "!")
        cluster.settle()
        cluster[2].broadcast.on_frame(_future_envelope(1, sequence=9))
        before = cluster.network.now
        requests = cluster.anti_entropy()
        assert requests >= 1
        assert cluster.network.now > before

    def test_wire_bytes_per_site_includes_departed(self):
        cluster = Cluster(3, seed=36)
        cluster.bootstrap(list("abc"))
        gone = cluster.site_ids[-1]
        cluster.leave_site(gone)
        per_site = cluster.wire_bytes_per_site()
        assert gone in per_site
        assert per_site[gone]["received"] > 0
