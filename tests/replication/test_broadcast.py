"""Causal broadcast: happened-before delivery under adverse networks.

The channel is bytes-only now: every broadcast is an encoded
EnvelopeFrame, and payloads are real operations or batches (the only
things the codec ships).
"""

from repro.core.ops import InsertOp, OpBatch
from repro.core.path import PathElement, PosID
from repro.core.treedoc import Treedoc
from repro.replication.broadcast import CausalBroadcast
from repro.replication.clock import VectorClock
from repro.replication.network import NetworkConfig, SimulatedNetwork
from repro.replication.wire import EnvelopeFrame, encode_wire


def _endpoint(net, site, log):
    return CausalBroadcast(
        site, net, lambda origin, payload: log.append((site, origin, payload))
    )


def _op(tag: int, origin: int = 1) -> InsertOp:
    """A distinct, encodable payload: tag encoded in the atom."""
    posid = PosID([PathElement(1)])
    return InsertOp(posid, f"payload-{tag}", origin)


def _frame(origin: int, clock: VectorClock, tag: int) -> EnvelopeFrame:
    """A hand-crafted envelope (for delivery-order tests)."""
    from repro.core.encoding import encode_operation

    payload, bits = encode_operation(_op(tag, origin))
    return EnvelopeFrame(origin, clock, payload, bits)


def _atoms(log, site, origin=None):
    return [
        payload.atom
        for s, o, payload in log
        if s == site and (origin is None or o == origin)
    ]


class TestCausalDelivery:
    def test_fifo_per_origin(self):
        net = SimulatedNetwork(seed=11)
        log = []
        a = _endpoint(net, 1, log)
        _endpoint(net, 2, log)
        for n in range(20):
            a.broadcast(_op(n, 1))
        net.run()
        assert _atoms(log, 2) == [f"payload-{n}" for n in range(20)]

    def test_causal_order_across_origins(self):
        # b's message depends on a's; c must deliver a's first even if
        # the network reorders.
        net = SimulatedNetwork(NetworkConfig(min_latency=1, max_latency=200),
                               seed=13)
        log = []
        a = _endpoint(net, 1, log)
        b = _endpoint(net, 2, log)
        _endpoint(net, 3, log)
        a.broadcast(_op(0, 1))  # "cause"
        net.run()
        b.broadcast(_op(1, 2))  # "effect": b saw the cause before sending
        net.run()
        at_c = [(origin, payload.atom)
                for site, origin, payload in log if site == 3]
        assert at_c == [(1, "payload-0"), (2, "payload-1")]

    def test_batch_payload_round_trips(self):
        net = SimulatedNetwork(seed=5)
        log = []
        a = _endpoint(net, 1, log)
        _endpoint(net, 2, log)
        doc = Treedoc(site=1)
        batch = doc.insert_text(0, list("hello")).seal()
        a.broadcast(batch)
        net.run()
        (site, origin, delivered), = [e for e in log if e[0] == 2]
        assert isinstance(delivered, OpBatch)
        assert tuple(delivered.ops) == tuple(batch.ops)
        assert delivered.verify()

    def test_buffering_reported(self):
        net = SimulatedNetwork(seed=1)
        log = []
        receiver = _endpoint(net, 2, log)
        # Hand-craft an envelope that depends on an undelivered message.
        future = _frame(1, VectorClock({1: 2}), 99)
        receiver.on_frame(future)
        assert receiver.buffered == 1
        assert receiver.blocked_since is not None
        assert receiver.buffered_origins() == [1]
        assert log == []
        first = _frame(1, VectorClock({1: 1}), 1)
        receiver.on_frame(first)
        assert receiver.buffered == 0
        assert receiver.blocked_since is None
        assert _atoms(log, 2) == ["payload-1", "payload-99"]

    def test_duplicates_filtered(self):
        net = SimulatedNetwork(seed=1)
        log = []
        receiver = _endpoint(net, 2, log)
        envelope = _frame(1, VectorClock({1: 1}), 7)
        receiver.on_frame(envelope)
        receiver.on_frame(envelope)
        assert _atoms(log, 2) == ["payload-7"]
        assert receiver.has_delivered(1, 1)

    def test_on_message_accepts_wire_bytes_only(self):
        import pytest

        from repro.errors import CausalityError, DecodeError
        from repro.replication.wire import AckFrame

        net = SimulatedNetwork(seed=1)
        log = []
        receiver = _endpoint(net, 2, log)
        with pytest.raises(DecodeError):
            receiver.on_message(1, b"\x00garbage-not-a-frame")
        # A valid frame of the wrong kind is a protocol violation.
        with pytest.raises(CausalityError):
            receiver.on_message(
                1, encode_wire(AckFrame(1, VectorClock({1: 1})))
            )
        assert log == []

    def test_undecodable_payload_is_not_recorded_as_delivered(self):
        # Regression: _drain used to dequeue the frame and merge its
        # clock BEFORE decoding, so a valid-CRC envelope whose inner
        # payload failed to decode was permanently marked delivered —
        # every retransmission then dropped as a duplicate and the
        # replicas silently diverged.
        import pytest

        from repro.errors import DecodeError

        net = SimulatedNetwork(seed=1)
        log = []
        receiver = _endpoint(net, 2, log)
        poison = EnvelopeFrame(1, VectorClock({1: 1}), b"\xff\xff\xff", 24)
        with pytest.raises(DecodeError):
            receiver.on_frame(poison)
        # Not delivered, not counted: the clock did not advance, so a
        # corrected retransmission of sequence 1 still goes through.
        assert receiver.clock.get(1) == 0
        assert not receiver.has_delivered(1, 1)
        assert receiver.buffered == 0  # ...and the buffer is not wedged
        good = _frame(1, VectorClock({1: 1}), 1)
        receiver.on_frame(good)
        assert _atoms(log, 2) == ["payload-1"]
        assert receiver.has_delivered(1, 1)

    def test_lossy_duplicating_network_delivers_each_once_in_order(self):
        net = SimulatedNetwork(
            NetworkConfig(drop_rate=0.3, duplicate_rate=0.3), seed=17
        )
        log = []
        a = _endpoint(net, 1, log)
        b = _endpoint(net, 2, log)
        _endpoint(net, 3, log)
        for n in range(15):
            a.broadcast(_op(n, 1))
            b.broadcast(_op(100 + n, 2))
        net.run()
        for site in (1, 2, 3):
            if site != 1:
                assert _atoms(log, site, origin=1) == [
                    f"payload-{n}" for n in range(15)
                ]
            if site != 2:
                assert _atoms(log, site, origin=2) == [
                    f"payload-{100 + n}" for n in range(15)
                ]
