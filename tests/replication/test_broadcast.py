"""Causal broadcast: happened-before delivery under adverse networks."""

from repro.replication.broadcast import CausalBroadcast, CausalEnvelope
from repro.replication.clock import VectorClock
from repro.replication.network import NetworkConfig, SimulatedNetwork


def _endpoint(net, site, log):
    return CausalBroadcast(
        site, net, lambda origin, payload: log.append((site, origin, payload))
    )


class TestCausalDelivery:
    def test_fifo_per_origin(self):
        net = SimulatedNetwork(seed=11)
        log = []
        a = _endpoint(net, 1, log)
        _endpoint(net, 2, log)
        for n in range(20):
            a.broadcast(n)
        net.run()
        delivered = [p for site, _, p in log if site == 2]
        assert delivered == list(range(20))

    def test_causal_order_across_origins(self):
        # b's message depends on a's; c must deliver a's first even if
        # the network reorders.
        net = SimulatedNetwork(NetworkConfig(min_latency=1, max_latency=200),
                               seed=13)
        log = []
        a = _endpoint(net, 1, log)
        b = _endpoint(net, 2, log)
        _endpoint(net, 3, log)
        a.broadcast("cause")
        net.run()
        b.broadcast("effect")  # b saw "cause" before sending
        net.run()
        at_c = [(origin, payload) for site, origin, payload in log if site == 3]
        assert at_c == [(1, "cause"), (2, "effect")]

    def test_buffering_reported(self):
        net = SimulatedNetwork(seed=1)
        log = []
        receiver = _endpoint(net, 2, log)
        # Hand-craft an envelope that depends on an undelivered message.
        future = CausalEnvelope(1, VectorClock({1: 2}), "too-early")
        receiver.on_message(1, future)
        assert receiver.buffered == 1
        assert log == []
        first = CausalEnvelope(1, VectorClock({1: 1}), "first")
        receiver.on_message(1, first)
        assert receiver.buffered == 0
        assert [p for _, _, p in log] == ["first", "too-early"]

    def test_duplicates_filtered(self):
        net = SimulatedNetwork(seed=1)
        log = []
        receiver = _endpoint(net, 2, log)
        envelope = CausalEnvelope(1, VectorClock({1: 1}), "once")
        receiver.on_message(1, envelope)
        receiver.on_message(1, envelope)
        assert [p for _, _, p in log] == ["once"]
        assert receiver.has_delivered(1, 1)

    def test_lossy_duplicating_network_delivers_each_once_in_order(self):
        net = SimulatedNetwork(
            NetworkConfig(drop_rate=0.3, duplicate_rate=0.3), seed=17
        )
        log = []
        a = _endpoint(net, 1, log)
        b = _endpoint(net, 2, log)
        _endpoint(net, 3, log)
        for n in range(15):
            a.broadcast(("a", n))
            b.broadcast(("b", n))
        net.run()
        for site in (1, 2, 3):
            from_a = [p for s, o, p in log if s == site and o == 1]
            from_b = [p for s, o, p in log if s == site and o == 2]
            if site != 1:
                assert from_a == [("a", n) for n in range(15)]
            if site != 2:
                assert from_b == [("b", n) for n in range(15)]
