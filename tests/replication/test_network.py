"""The discrete-event network: delivery, loss, duplication, corruption,
partitions, and the bytes-only wire discipline."""

import pytest

from repro.errors import DecodeError, ReplicationError
from repro.replication.network import NetworkConfig, SimulatedNetwork


def _collector(log, site):
    def handler(src, payload):
        log.append((site, src, payload))
    return handler


def _b(n: int) -> bytes:
    """A distinct bytes payload encoding ``n``."""
    return b"m%d" % n


class TestDelivery:
    def test_messages_arrive(self):
        net = SimulatedNetwork(seed=1)
        log = []
        for site in (1, 2):
            net.register(site, _collector(log, site))
        net.send(1, 2, b"hello")
        net.send(2, 1, b"world")
        assert net.run() == 2
        assert sorted(log) == [(1, 2, b"world"), (2, 1, b"hello")]

    def test_broadcast_reaches_everyone_but_sender(self):
        net = SimulatedNetwork(seed=1)
        log = []
        for site in (1, 2, 3, 4):
            net.register(site, _collector(log, site))
        net.broadcast(1, b"x")
        net.run()
        assert sorted(receiver for receiver, _, _ in log) == [2, 3, 4]

    def test_latency_reorders_messages(self):
        # With variable latency, some pair of messages must arrive out
        # of send order across many sends.
        net = SimulatedNetwork(seed=3)
        arrivals = []
        net.register(1, lambda src, payload: None)
        net.register(2, lambda src, payload: arrivals.append(payload))
        expected = [_b(n) for n in range(50)]
        for n in range(50):
            net.send(1, 2, _b(n))
        net.run()
        assert sorted(arrivals) == sorted(expected)
        assert arrivals != expected

    def test_unknown_destination_rejected(self):
        net = SimulatedNetwork(seed=1)
        net.register(1, lambda s, p: None)
        with pytest.raises(ReplicationError):
            net.send(1, 9, b"x")

    def test_non_bytes_payload_rejected(self):
        # The wire discipline: nothing but bytes may cross a link.
        net = SimulatedNetwork(seed=1)
        net.register(1, lambda s, p: None)
        net.register(2, lambda s, p: None)
        for payload in ("text", 42, object(), ["list"], None):
            with pytest.raises(ReplicationError):
                net.send(1, 2, payload)
        assert net.sent_messages == 0

    def test_duplicate_registration_rejected(self):
        net = SimulatedNetwork(seed=1)
        net.register(1, lambda s, p: None)
        with pytest.raises(ReplicationError):
            net.register(1, lambda s, p: None)

    def test_determinism_per_seed(self):
        def run_once(seed):
            net = SimulatedNetwork(
                NetworkConfig(drop_rate=0.2, duplicate_rate=0.1), seed=seed
            )
            arrivals = []
            net.register(1, lambda s, p: None)
            net.register(2, lambda s, p: arrivals.append(p))
            for n in range(30):
                net.send(1, 2, _b(n))
            net.run()
            return arrivals

        assert run_once(7) == run_once(7)
        assert run_once(7) != run_once(8)


class TestByteAccounting:
    def test_counters_track_payload_sizes(self):
        net = SimulatedNetwork(seed=2)
        net.register(1, lambda s, p: None)
        net.register(2, lambda s, p: None)
        net.register(3, lambda s, p: None)
        net.send(1, 2, b"12345")
        net.send(1, 3, b"1234567")
        net.send(2, 1, b"ab")
        net.run()
        assert net.bytes_sent == 5 + 7 + 2
        assert net.bytes_delivered == net.bytes_sent
        assert net.link_bytes == {(1, 2): 5, (1, 3): 7, (2, 1): 2}
        assert net.link_bytes_to(3) == 7
        assert net.link_bytes_to(1) == 2

    def test_duplicates_and_retransmissions_bill_the_link(self):
        net = SimulatedNetwork(
            NetworkConfig(drop_rate=0.4, duplicate_rate=0.4), seed=9
        )
        net.register(1, lambda s, p: None)
        received = []
        net.register(2, lambda s, p: received.append(p))
        for n in range(40):
            net.send(1, 2, b"x" * 10)
        net.run()
        assert net.bytes_sent == 400
        # Every extra delivery costs wire bytes too.
        assert net.bytes_delivered == len(received) * 10
        assert net.bytes_delivered > 400


class TestLossAndDuplication:
    def test_lossy_transport_still_delivers_everything(self):
        net = SimulatedNetwork(NetworkConfig(drop_rate=0.4), seed=5)
        received = []
        net.register(1, lambda s, p: None)
        net.register(2, lambda s, p: received.append(p))
        for n in range(100):
            net.send(1, 2, _b(n))
        net.run()
        assert sorted(received) == sorted(_b(n) for n in range(100))
        assert net.dropped_transmissions > 0

    def test_duplication_delivers_extra_copies(self):
        net = SimulatedNetwork(NetworkConfig(duplicate_rate=0.5), seed=5)
        received = []
        net.register(1, lambda s, p: None)
        net.register(2, lambda s, p: received.append(p))
        for n in range(60):
            net.send(1, 2, _b(n))
        net.run()
        assert len(received) > 60
        assert set(received) == {_b(n) for n in range(60)}


class TestCorruption:
    def test_rejected_corruption_is_retransmitted(self):
        # A receiver that rejects damaged frames (DecodeError) sees
        # every message intact eventually: corruption behaves as loss.
        # Payloads carry a checksum (as the real wire frames do), so a
        # flipped bit can never turn one valid message into another.
        import zlib

        def framed(n):
            body = b"msg-%03d" % n
            return body + zlib.crc32(body).to_bytes(4, "big")

        net = SimulatedNetwork(NetworkConfig(corruption_rate=0.5), seed=3)
        received = []

        def strict(src, payload):
            body, crc = payload[:-4], payload[-4:]
            if zlib.crc32(body) != int.from_bytes(crc, "big"):
                raise DecodeError("damaged")
            received.append(payload)

        net.register(1, lambda s, p: None)
        net.register(2, strict)
        for n in range(50):
            net.send(1, 2, framed(n))
        net.run()
        assert sorted(received) == sorted(framed(n) for n in range(50))
        assert net.corrupted_transmissions > 0
        assert net.decode_rejections == net.corrupted_transmissions

    def test_corrupted_bytes_differ_by_one_bit(self):
        net = SimulatedNetwork(NetworkConfig(corruption_rate=1.0), seed=4)
        seen = []

        def tolerant(src, payload):
            seen.append(payload)

        net.register(1, lambda s, p: None)
        net.register(2, tolerant)
        original = b"\x00" * 8
        net.send(1, 2, original)
        net.run()
        (damaged,) = seen
        flipped = [
            bit
            for byte_o, byte_d in zip(original, damaged)
            for bit in range(8)
            if (byte_o ^ byte_d) & (1 << bit)
        ]
        assert len(flipped) == 1  # exactly one bit inverted

    def test_undecodable_sender_bytes_do_not_abort_the_simulation(self):
        # A receiver rejecting *intact* bytes (sender framing defect)
        # is still loss to the transport: retried until attempts run
        # out, then abandoned — other traffic keeps flowing.
        net = SimulatedNetwork(
            NetworkConfig(max_transmit_attempts=3, retransmit_delay=1.0),
            seed=8,
        )
        delivered = []

        def strict(src, payload):
            if payload == b"poison":
                raise DecodeError("always undecodable")
            delivered.append(payload)

        net.register(1, lambda s, p: None)
        net.register(2, strict)
        net.send(1, 2, b"poison")
        net.send(1, 2, b"fine")
        net.run()
        assert delivered == [b"fine"]
        assert net.decode_rejections == 3  # one per attempt, then dropped

    def test_final_attempt_is_never_corrupted(self):
        # Eventual delivery: with certain corruption and a strict
        # receiver, the max_transmit_attempts'th try goes through clean.
        net = SimulatedNetwork(
            NetworkConfig(corruption_rate=1.0, max_transmit_attempts=4,
                          retransmit_delay=1.0),
            seed=6,
        )
        received = []

        def strict(src, payload):
            if payload != b"intact":
                raise DecodeError("damaged")
            received.append(payload)

        net.register(1, lambda s, p: None)
        net.register(2, strict)
        net.send(1, 2, b"intact")
        net.run()
        assert received == [b"intact"]
        assert net.corrupted_transmissions == 3  # attempts 1..3 damaged


class TestPartitions:
    def test_partition_holds_messages_until_heal(self):
        net = SimulatedNetwork(seed=2)
        received = []
        net.register(1, lambda s, p: None)
        net.register(2, lambda s, p: received.append(p))
        net.partition({1}, {2})
        net.send(1, 2, b"blocked")
        net.run()
        assert received == []
        assert net.held == 1
        net.heal()
        net.run()
        assert received == [b"blocked"]

    def test_intra_group_traffic_flows_during_partition(self):
        net = SimulatedNetwork(seed=2)
        received = []
        for site in (1, 2, 3):
            net.register(site, _collector(received, site))
        net.partition({1, 2}, {3})
        net.send(1, 2, b"ok")
        net.send(1, 3, b"blocked")
        net.run()
        assert [(r, s, p) for r, s, p in received] == [(2, 1, b"ok")]

    def test_unmentioned_sites_form_their_own_group(self):
        net = SimulatedNetwork(seed=2)
        log = []
        for site in (1, 2, 3):
            net.register(site, _collector(log, site))
        net.partition({1})
        net.send(2, 3, b"peer")
        net.send(1, 2, b"cut")
        net.run()
        assert [(r, s, p) for r, s, p in log] == [(3, 2, b"peer")]
