"""The discrete-event network: delivery, loss, duplication, partitions."""

import pytest

from repro.errors import ReplicationError
from repro.replication.network import NetworkConfig, SimulatedNetwork


def _collector(log, site):
    def handler(src, payload):
        log.append((site, src, payload))
    return handler


class TestDelivery:
    def test_messages_arrive(self):
        net = SimulatedNetwork(seed=1)
        log = []
        for site in (1, 2):
            net.register(site, _collector(log, site))
        net.send(1, 2, "hello")
        net.send(2, 1, "world")
        assert net.run() == 2
        assert sorted(log) == [(1, 2, "world"), (2, 1, "hello")]

    def test_broadcast_reaches_everyone_but_sender(self):
        net = SimulatedNetwork(seed=1)
        log = []
        for site in (1, 2, 3, 4):
            net.register(site, _collector(log, site))
        net.broadcast(1, "x")
        net.run()
        assert sorted(receiver for receiver, _, _ in log) == [2, 3, 4]

    def test_latency_reorders_messages(self):
        # With variable latency, some pair of messages must arrive out
        # of send order across many sends.
        net = SimulatedNetwork(seed=3)
        arrivals = []
        net.register(1, lambda src, payload: None)
        net.register(2, lambda src, payload: arrivals.append(payload))
        for n in range(50):
            net.send(1, 2, n)
        net.run()
        assert sorted(arrivals) == list(range(50))
        assert arrivals != list(range(50))

    def test_unknown_destination_rejected(self):
        net = SimulatedNetwork(seed=1)
        net.register(1, lambda s, p: None)
        with pytest.raises(ReplicationError):
            net.send(1, 9, "x")

    def test_duplicate_registration_rejected(self):
        net = SimulatedNetwork(seed=1)
        net.register(1, lambda s, p: None)
        with pytest.raises(ReplicationError):
            net.register(1, lambda s, p: None)

    def test_determinism_per_seed(self):
        def run_once(seed):
            net = SimulatedNetwork(
                NetworkConfig(drop_rate=0.2, duplicate_rate=0.1), seed=seed
            )
            arrivals = []
            net.register(1, lambda s, p: None)
            net.register(2, lambda s, p: arrivals.append(p))
            for n in range(30):
                net.send(1, 2, n)
            net.run()
            return arrivals

        assert run_once(7) == run_once(7)
        assert run_once(7) != run_once(8)


class TestLossAndDuplication:
    def test_lossy_transport_still_delivers_everything(self):
        net = SimulatedNetwork(NetworkConfig(drop_rate=0.4), seed=5)
        received = []
        net.register(1, lambda s, p: None)
        net.register(2, lambda s, p: received.append(p))
        for n in range(100):
            net.send(1, 2, n)
        net.run()
        assert sorted(received) == list(range(100))
        assert net.dropped_transmissions > 0

    def test_duplication_delivers_extra_copies(self):
        net = SimulatedNetwork(NetworkConfig(duplicate_rate=0.5), seed=5)
        received = []
        net.register(1, lambda s, p: None)
        net.register(2, lambda s, p: received.append(p))
        for n in range(60):
            net.send(1, 2, n)
        net.run()
        assert len(received) > 60
        assert set(received) == set(range(60))


class TestPartitions:
    def test_partition_holds_messages_until_heal(self):
        net = SimulatedNetwork(seed=2)
        received = []
        net.register(1, lambda s, p: None)
        net.register(2, lambda s, p: received.append(p))
        net.partition({1}, {2})
        net.send(1, 2, "blocked")
        net.run()
        assert received == []
        assert net.held == 1
        net.heal()
        net.run()
        assert received == ["blocked"]

    def test_intra_group_traffic_flows_during_partition(self):
        net = SimulatedNetwork(seed=2)
        received = []
        for site in (1, 2, 3):
            net.register(site, _collector(received, site))
        net.partition({1, 2}, {3})
        net.send(1, 2, "ok")
        net.send(1, 3, "blocked")
        net.run()
        assert [(r, s, p) for r, s, p in received] == [(2, 1, "ok")]

    def test_unmentioned_sites_form_their_own_group(self):
        net = SimulatedNetwork(seed=2)
        log = []
        for site in (1, 2, 3):
            net.register(site, _collector(log, site))
        net.partition({1})
        net.send(2, 3, "peer")
        net.send(1, 2, "cut")
        net.run()
        assert [(r, s, p) for r, s, p in log] == [(3, 2, "peer")]
