"""The peer protocol codec: frame round trips, CRC integrity, typing."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core import encoding
from repro.core.path import PathElement, PosID, ROOT
from repro.core.treedoc import Treedoc
from repro.errors import CorruptFrameError, DecodeError
from repro.replication.clock import VectorClock
from repro.replication.commit import AbortMsg, PrepareMsg, VoteMsg
from repro.replication.wire import (
    AckFrame,
    EnvelopeFrame,
    StateTransfer,
    SyncRequest,
    SyncResponse,
    decode_wire,
    encode_wire,
    read_clock,
    write_clock,
)
from repro.util.bits import BitReader, BitWriter

clock_strategy = st.dictionaries(
    st.integers(1, 2**40), st.integers(1, 2**20), max_size=8
).map(VectorClock)


def _envelope(origin=1, clock=None, text="hello wire"):
    doc = Treedoc(site=origin)
    payload, bits = encoding.encode_batch(doc.insert_text(0, list(text)))
    return EnvelopeFrame(origin, clock or VectorClock({origin: 1}),
                         payload, bits)


class TestClockCodec:
    @settings(max_examples=100)
    @given(clock_strategy)
    def test_round_trip(self, clock):
        writer = BitWriter()
        write_clock(writer, clock)
        assert read_clock(BitReader(writer.getvalue(),
                                    writer.bit_length)) == clock

    def test_cost_tracks_sites_not_history(self):
        # The varint layout: a huge counter costs log(counter) bits,
        # not a fixed 32, and one site is one entry.
        small = BitWriter()
        write_clock(small, VectorClock({1: 1}))
        big = BitWriter()
        write_clock(big, VectorClock({1: 1_000_000}))
        assert big.bit_length - small.bit_length < 64
        many = BitWriter()
        write_clock(many, VectorClock({s: 1 for s in range(1, 9)}))
        assert many.bit_length > 8 * 48  # dominated by per-site ids


class TestFrameRoundTrips:
    def test_envelope(self):
        frame = _envelope(origin=3, clock=VectorClock({3: 5, 1: 2}))
        back = decode_wire(encode_wire(frame))
        assert back == frame
        assert back.sequence == 5
        decoded = back.decode_payload()
        assert decoded.origin == 3
        assert [op.atom for op in decoded.ops] == list("hello wire")

    def test_ack(self):
        frame = AckFrame(7, VectorClock({7: 9, 2: 4}))
        assert decode_wire(encode_wire(frame)) == frame

    def test_sync_request(self):
        frame = SyncRequest(2, VectorClock({1: 3}))
        assert decode_wire(encode_wire(frame)) == frame
        empty = SyncRequest(4, VectorClock())
        assert decode_wire(encode_wire(empty)) == empty

    def test_sync_response_with_delete_log(self):
        doc = Treedoc(site=1, mode="sdis")
        doc.insert_text(0, list("abcdefgh"))
        doc.delete_range(2, 4)
        log = ((doc.posids()[0], 1, 3), (doc.posids()[1], 2, 8))
        response = SyncResponse(1, VectorClock({1: 4}), doc.capture_state(),
                                log)
        back = decode_wire(response.to_wire())
        assert isinstance(back, SyncResponse)
        assert back.site == 1 and back.clock == response.clock
        assert back.delete_log == log
        assert back.state.digest == response.state.digest
        assert back.state.frame == response.state.frame
        # StateTransfer is the same frame under its historical name.
        assert StateTransfer is SyncResponse
        # wire_bytes is the measured encoded length, cached.
        assert response.wire_bytes == len(response.to_wire())

    def test_commit_messages(self):
        path = PosID([PathElement(1), PathElement(0)])
        for frame in (
            PrepareMsg("3.17", path, VectorClock({3: 2}), 3),
            VoteMsg("3.17", 5, True),
            VoteMsg("3.17", 5, False),
            AbortMsg("3.17"),
        ):
            assert decode_wire(encode_wire(frame)) == frame

    def test_flatten_txn_survives_the_wire(self):
        # The commitment outcome rides the causal channel; participants
        # match it to their vote lock by the txn tag.
        from repro.core.ops import FlattenOp

        op = FlattenOp(ROOT, "ab" * 32, 4, txn="4.0")
        data, bits = encoding.encode_operation(op)
        back = encoding.decode_operation(data, bits)
        assert back.txn == "4.0"
        untagged = FlattenOp(ROOT, "ab" * 32, 4)
        data, bits = encoding.encode_operation(untagged)
        assert encoding.decode_operation(data, bits).txn is None


class TestIntegrity:
    def test_every_single_bit_flip_is_detected(self):
        frame = encode_wire(SyncRequest(2, VectorClock({1: 3, 5: 9})))
        for position in range(len(frame) * 8):
            damaged = bytearray(frame)
            damaged[position // 8] ^= 0x80 >> (position % 8)
            with pytest.raises(CorruptFrameError) as err:
                decode_wire(bytes(damaged))
            # Satellite: the error attributes the failure — payload
            # length always; the frame kind whenever the flip did not
            # land in the header byte itself.
            assert err.value.length == len(frame)
            if position >= 8:
                assert err.value.frame_kind == "sync_request"

    def test_truncation_detected(self):
        frame = encode_wire(AckFrame(1, VectorClock({1: 1})))
        for cut in range(1, len(frame)):
            with pytest.raises(DecodeError) as err:
                decode_wire(frame[:cut])
            assert err.value.length == cut
            assert err.value.frame_kind == "ack"
        with pytest.raises(DecodeError):
            decode_wire(b"")

    def test_corrupt_frame_error_is_a_decode_error(self):
        assert issubclass(CorruptFrameError, DecodeError)

    def test_crc_mismatch_context_has_no_offset(self):
        # A checksum says the bytes are damaged, not where: kind and
        # length are attributed, the offset stays None.
        frame = bytearray(encode_wire(SyncRequest(2, VectorClock({1: 3}))))
        frame[-1] ^= 0xFF
        with pytest.raises(CorruptFrameError) as err:
            decode_wire(bytes(frame))
        assert err.value.frame_kind == "sync_request"
        assert err.value.length == len(frame)
        assert err.value.offset is None
        assert "kind=sync_request" in err.value.context()
        assert f"length={len(frame)}" in err.value.context()

    def test_valid_crc_malformed_body_reports_offset(self):
        # Rebuild a truncated body under a *valid* CRC: the parse gets
        # past the integrity check and stops mid-stream, so the error
        # names the byte offset where decoding died.
        import zlib

        frame = encode_wire(_envelope())
        body = frame[:-4][:6]  # header + a few bytes, then the cliff
        forged = body + zlib.crc32(body).to_bytes(4, "big")
        with pytest.raises(DecodeError) as err:
            decode_wire(forged)
        assert not isinstance(err.value, CorruptFrameError)
        assert err.value.frame_kind == "envelope"
        assert err.value.offset is not None
        assert 0 <= err.value.offset <= len(body)
        assert err.value.length == len(forged)

    def test_peek_wire_kind_names_every_kind(self):
        from repro.replication.wire import peek_wire_kind

        doc = Treedoc(site=1, mode="sdis")
        doc.insert_text(0, list("peek"))
        frames = {
            "envelope": encode_wire(_envelope()),
            "ack": encode_wire(AckFrame(1, VectorClock({1: 1}))),
            "sync_request": encode_wire(
                SyncRequest(2, VectorClock({1: 3}))),
            "sync_response": SyncResponse(
                1, VectorClock({1: 1}), doc.capture_state()).to_wire(),
        }
        for kind, data in frames.items():
            assert peek_wire_kind(data) == kind
        assert peek_wire_kind(b"") is None
        assert peek_wire_kind(b"\x00\x01") is None  # core-frame tag
        assert peek_wire_kind("text") is None

    def test_non_bytes_rejected(self):
        with pytest.raises(DecodeError):
            decode_wire("not bytes")

    def test_payload_byte_count_must_match_bit_length(self):
        # A payload with surplus bytes would encode (valid CRC) but
        # desync the reader, which recovers the count as ceil(bits/8).
        from repro.errors import EncodingError

        bad = EnvelopeFrame(1, VectorClock({1: 1}), b"\x00\x00", 8)
        with pytest.raises(EncodingError):
            encode_wire(bad)

    def test_received_response_reports_received_length(self):
        # The receiver's wire_bytes is the measured length of the bytes
        # that arrived — served from the decode, not a re-encode.
        doc = Treedoc(site=1, mode="sdis")
        doc.insert_text(0, list("abcdef"))
        sent = SyncResponse(1, VectorClock({1: 1}),
                            doc.capture_state()).to_wire()
        received = decode_wire(sent)
        assert received.wire_bytes == len(sent)
        assert received.to_wire() == sent  # round-trip stable

    def test_core_frames_are_not_wire_frames(self):
        # decode_frame and decode_wire guard each other's territory.
        doc = Treedoc(site=1)
        data, bits = encoding.encode_batch(doc.insert_text(0, list("ab")))
        with pytest.raises(DecodeError):
            decode_wire(data + b"\x00\x00\x00\x00")
        wire = encode_wire(_envelope())
        with pytest.raises(DecodeError):
            encoding.decode_frame(wire)


class TestEnvelopeFuzz:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_flips_never_escape_decode_error(self, data):
        # Satellite: random bit flips on wire frames surface only as
        # typed DecodeErrors — no foreign exception ever escapes the
        # decoder, which is what lets the network treat corruption as
        # loss.
        frame = encode_wire(_envelope(
            origin=data.draw(st.integers(1, 2**30)),
            clock=data.draw(clock_strategy).merge(VectorClock({1: 1})),
        ))
        flips = data.draw(st.lists(
            st.integers(0, len(frame) * 8 - 1), min_size=1, max_size=6,
            unique=True,
        ))
        damaged = bytearray(frame)
        for position in flips:
            damaged[position // 8] ^= 0x80 >> (position % 8)
        try:
            decoded = decode_wire(bytes(damaged))
        except DecodeError:
            pass  # the only acceptable failure
        else:  # pragma: no cover - needs a 2^-32 CRC collision
            decoded
