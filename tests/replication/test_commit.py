"""The flatten commitment protocol (section 4.2.1)."""

import pytest

from repro.core.path import PosID, ROOT
from repro.errors import CommitError
from repro.replication.cluster import Cluster
from repro.replication.commit import (
    CommitDecision,
    FlattenCoordinator,
    RegionLockTable,
    VoteMsg,
    paths_overlap,
)
from repro.replication.site import RegionLockedError


class TestCoordinatorStateMachine:
    def _coordinator(self, participants, outcomes):
        return FlattenCoordinator(
            "t1", ROOT, participants,
            on_commit=lambda: outcomes.append("commit"),
            on_abort=lambda: outcomes.append("abort"),
        )

    def test_unanimous_yes_commits(self):
        outcomes = []
        coordinator = self._coordinator({2, 3}, outcomes)
        coordinator.on_vote(VoteMsg("t1", 2, True))
        assert coordinator.decision is CommitDecision.PENDING
        coordinator.on_vote(VoteMsg("t1", 3, True))
        assert coordinator.decision is CommitDecision.COMMITTED
        assert outcomes == ["commit"]

    def test_single_no_aborts_immediately(self):
        outcomes = []
        coordinator = self._coordinator({2, 3}, outcomes)
        coordinator.on_vote(VoteMsg("t1", 2, False))
        assert coordinator.decision is CommitDecision.ABORTED
        assert outcomes == ["abort"]
        # late yes is ignored
        coordinator.on_vote(VoteMsg("t1", 3, True))
        assert outcomes == ["abort"]

    def test_non_participant_vote_rejected(self):
        coordinator = self._coordinator({2}, [])
        with pytest.raises(CommitError):
            coordinator.on_vote(VoteMsg("t1", 9, True))

    def test_decide_alone(self):
        outcomes = []
        coordinator = self._coordinator(set(), outcomes)
        coordinator.decide_alone()
        assert coordinator.decision is CommitDecision.COMMITTED


class TestRegionLocks:
    def test_overlap_is_prefix_relation(self):
        assert paths_overlap((), (1, 0))
        assert paths_overlap((1, 0), (1,))
        assert paths_overlap((1, 0), (1, 0, 1))
        assert not paths_overlap((1, 0), (1, 1))

    def test_lock_table(self):
        table = RegionLockTable()
        table.lock("t1", PosID.from_bits([1, 0]))
        assert table.is_locked((1, 0, 1))
        assert table.is_locked((1,))
        assert not table.is_locked((0,))
        table.unlock("t1")
        assert not table.is_locked((1, 0))
        table.unlock("t1")  # idempotent


class TestEndToEnd:
    def test_quiescent_flatten_commits_everywhere(self):
        cluster = Cluster(3, mode="sdis", seed=5)
        cluster.bootstrap(list("abcdefgh"))
        cluster[1].delete(2)
        cluster[2].delete(4)
        cluster.settle()
        coordinator = cluster[1].initiate_flatten(ROOT)
        cluster.settle()
        assert coordinator.decision is CommitDecision.COMMITTED
        cluster.assert_converged()
        for site in cluster:
            assert site.doc.tree.id_length == len(site.doc)  # no tombstones
            assert site.locked_regions == 0

    def test_in_flight_edit_aborts_flatten(self):
        cluster = Cluster(3, mode="sdis", seed=9)
        cluster.bootstrap(list("abcdefgh"))
        cluster[2].insert(3, "Z")  # not yet delivered anywhere
        coordinator = cluster[1].initiate_flatten(ROOT)
        cluster.settle()
        assert coordinator.decision is CommitDecision.ABORTED
        cluster.assert_converged()
        assert all(site.locked_regions == 0 for site in cluster)

    def test_local_edit_blocked_during_vote_window(self):
        cluster = Cluster(2, mode="sdis", seed=3)
        cluster.bootstrap(list("abcd"))
        cluster[1].initiate_flatten(ROOT)
        # Before the decision arrives, the initiator's region is locked.
        with pytest.raises(RegionLockedError):
            cluster[1].insert(2, "x")
        with pytest.raises(RegionLockedError):
            cluster[1].delete(0)
        cluster.settle()
        # After commit the lock is gone.
        cluster[1].insert(2, "x")
        cluster.settle()
        cluster.assert_converged()

    def test_overlapping_flatten_refused_locally(self):
        cluster = Cluster(2, mode="sdis", seed=3)
        cluster.bootstrap(list("abcd"))
        cluster[1].initiate_flatten(ROOT)
        with pytest.raises(CommitError):
            cluster[1].initiate_flatten(ROOT)

    def test_concurrent_coordinators_do_not_both_commit(self):
        cluster = Cluster(2, mode="sdis", seed=3)
        cluster.bootstrap(list("abcdefgh"))
        first = cluster[1].initiate_flatten(ROOT)
        second = cluster[2].initiate_flatten(ROOT)
        cluster.settle()
        committed = [c for c in (first, second)
                     if c.decision is CommitDecision.COMMITTED]
        assert len(committed) <= 1
        cluster.assert_converged()
        assert all(site.locked_regions == 0 for site in cluster)

    def test_post_flatten_edits_use_renamed_identifiers(self):
        cluster = Cluster(3, mode="sdis", seed=5)
        cluster.bootstrap(list("abcdefgh"))
        cluster[1].delete(0)
        cluster.settle()
        coordinator = cluster[2].initiate_flatten(ROOT)
        cluster.settle()
        assert coordinator.decision is CommitDecision.COMMITTED
        # Every site edits the flattened region; all converge.
        cluster[1].insert(1, "X")
        cluster[2].insert(3, "Y")
        cluster[3].delete(0)
        cluster.settle()
        cluster.assert_converged()

    def test_flatten_on_lossy_network(self):
        from repro.replication.network import NetworkConfig

        cluster = Cluster(
            3, mode="sdis",
            config=NetworkConfig(drop_rate=0.2, duplicate_rate=0.1),
            seed=21,
        )
        cluster.bootstrap(list("abcdefgh"))
        cluster[1].delete(1)
        cluster.settle()
        coordinator = cluster[3].initiate_flatten(ROOT)
        cluster.settle()
        assert coordinator.decision in (
            CommitDecision.COMMITTED, CommitDecision.ABORTED
        )
        cluster.assert_converged()


class TestReorderedOutcomes:
    """A lossy, duplicating network can deliver a transaction's outcome
    before (or again after) its PrepareMsg; a vote lock taken for a
    settled transaction would never be released."""

    def test_abort_overtaking_prepare_does_not_wedge_the_lock(self):
        from repro.replication.commit import AbortMsg, PrepareMsg

        cluster = Cluster(2, mode="sdis", seed=41)
        cluster.bootstrap(list("abc"))
        victim = cluster[2]
        snapshot = victim.broadcast.clock.copy()
        # The abort arrives first (reordering)...
        victim._on_frame(1, AbortMsg("1.99"))
        # ...then the prepare it already settled.
        victim._on_frame(1, PrepareMsg("1.99", ROOT, snapshot, 1))
        assert len(victim._locks) == 0
        victim.insert(0, "!")  # must not raise RegionLockedError

    def test_duplicate_prepare_after_commit_does_not_relock(self):
        from repro.replication.commit import PrepareMsg

        cluster = Cluster(2, mode="sdis", seed=42)
        cluster.bootstrap(list("abcdef"))
        snapshot = cluster[1].broadcast.clock.copy()
        coordinator = cluster[1].initiate_flatten(ROOT)
        cluster.settle()
        assert coordinator.decision is CommitDecision.COMMITTED
        victim = cluster[2]
        # The network redelivers the old prepare after the outcome.
        victim._on_frame(1, PrepareMsg(coordinator.txn, ROOT, snapshot, 1))
        cluster.settle()  # the No re-vote lands on a decided coordinator
        assert len(victim._locks) == 0
        victim.insert(0, "!")
        cluster.settle()
        cluster.assert_converged()
