"""SDIS tombstone GC via causal stability (section 4.2)."""

import random

import pytest

from repro.replication.clock import VectorClock
from repro.replication.cluster import Cluster
from repro.replication.network import NetworkConfig
from repro.replication.stability import StabilityTracker


class TestStabilityTracker:
    def test_frontier_is_pointwise_minimum(self):
        tracker = StabilityTracker((1, 2, 3))
        tracker.record_ack(1, VectorClock({1: 5, 2: 2, 3: 1}))
        tracker.record_ack(2, VectorClock({1: 3, 2: 4, 3: 2}))
        tracker.record_ack(3, VectorClock({1: 4, 2: 3, 3: 3}))
        frontier = tracker.stable_frontier()
        assert (frontier.get(1), frontier.get(2), frontier.get(3)) == (3, 2, 1)

    def test_missing_member_blocks_stability(self):
        tracker = StabilityTracker((1, 2))
        tracker.record_ack(1, VectorClock({1: 9}))
        assert not tracker.is_stable(1, 1)  # site 2 never acked
        tracker.record_ack(2, VectorClock({1: 1}))
        assert tracker.is_stable(1, 1)
        assert not tracker.is_stable(1, 2)

    def test_stale_acks_merge_monotonically(self):
        tracker = StabilityTracker((1,))
        tracker.record_ack(1, VectorClock({1: 5}))
        tracker.record_ack(1, VectorClock({1: 2}))  # reordered, stale
        assert tracker.stable_frontier().get(1) == 5


class TestClusterTombstoneGC:
    def test_gossip_purges_stable_tombstones_everywhere(self):
        cluster = Cluster(3, mode="sdis", seed=1, tombstone_gc=True)
        cluster.bootstrap(list("abcdefghij"))
        cluster[1].delete(0)
        cluster[2].delete(3)
        cluster.settle()
        before = cluster[1].doc.tree.id_length
        assert before == 10  # tombstones retained
        cluster.gossip_acks()
        for site in cluster:
            assert site.doc.tree.id_length == 8
            assert site.purged_tombstones == 2
        cluster.assert_converged()

    def test_remint_after_purge_is_safe(self):
        # The §3.3.2 hazard: SDIS can re-mint a purged identifier. The
        # causal gossip ensures everyone purged before the re-mint's
        # insert arrives.
        cluster = Cluster(2, mode="sdis", seed=2, tombstone_gc=True)
        cluster.bootstrap(list("abc"))
        for _ in range(5):
            cluster[1].delete(1)
            cluster.settle()
            cluster.gossip_acks()
            cluster[1].insert(1, "B")
            cluster.settle()
            cluster.assert_converged()
        assert cluster[1].text() == "aBc"

    def test_unacked_site_blocks_purge(self):
        cluster = Cluster(3, mode="sdis", seed=3, tombstone_gc=True)
        cluster.bootstrap(list("abc"))
        with cluster.partitioned({1, 2}, {3}):
            cluster[1].delete(0)
            cluster.settle()
            cluster[1].broadcast_ack()
            cluster[2].broadcast_ack()
            cluster.settle()
            # Site 3 has not acknowledged: nothing may be purged.
            assert cluster[1].doc.tree.id_length == 3
        cluster.settle()
        cluster.gossip_acks()
        assert all(s.doc.tree.id_length == 2 for s in cluster)
        cluster.assert_converged()

    def test_gc_under_lossy_network_with_continuous_editing(self):
        cluster = Cluster(
            3, mode="sdis", seed=4, tombstone_gc=True,
            config=NetworkConfig(drop_rate=0.2, duplicate_rate=0.1),
        )
        cluster.bootstrap(list("hello world"))
        rng = random.Random(4)
        for round_number in range(12):
            for site in cluster:
                if len(site) > 2 and rng.random() < 0.5:
                    site.delete(rng.randrange(len(site)))
                else:
                    site.insert(rng.randint(0, len(site)), f"{round_number}")
            cluster.settle()
            if round_number % 3 == 0:
                cluster.gossip_acks()
        cluster.settle()
        cluster.gossip_acks()
        cluster.assert_converged()
        # After a final gossip, all tombstones are stable and purged.
        for site in cluster:
            assert site.doc.tree.id_length == len(site.doc)

    def test_gc_disabled_for_udis(self):
        cluster = Cluster(2, mode="udis", seed=5, tombstone_gc=True)
        cluster.bootstrap(list("ab"))
        # UDIS discards immediately; GC plumbing stays off.
        assert not cluster[1].tombstone_gc
        cluster.gossip_acks()  # no-op, no crash
        cluster.assert_converged()
