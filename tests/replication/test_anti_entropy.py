"""Anti-entropy over the network: SyncRequest/SyncResponse exchanges,
the gossip policy, inherited-tombstone GC, and convergence under every
network fault at once (loss, duplication, corruption, partitions)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.errors import SyncError
from repro.replication.cluster import Cluster
from repro.replication.network import NetworkConfig, SimulatedNetwork
from repro.replication.site import ReplicaSite
from repro.replication.sync import AntiEntropyPolicy

#: Fire on any persistent gap immediately (simulated time barely moves
#: in small scenarios, so age-based defaults would never trip).
EAGER = AntiEntropyPolicy(max_buffered=1, max_gap_age=0.0,
                          min_request_interval=0.0)


class TestPolicy:
    def test_quiet_site_never_requests(self):
        policy = AntiEntropyPolicy()
        assert not policy.should_request(buffered=0, gap_age=1e9)

    def test_deep_buffer_triggers_regardless_of_age(self):
        policy = AntiEntropyPolicy(max_buffered=4, max_gap_age=1e9)
        assert not policy.should_request(buffered=3, gap_age=0.0)
        assert policy.should_request(buffered=4, gap_age=0.0)

    def test_old_gap_triggers_regardless_of_depth(self):
        policy = AntiEntropyPolicy(max_buffered=100, max_gap_age=50.0)
        assert not policy.should_request(buffered=1, gap_age=49.9)
        assert policy.should_request(buffered=1, gap_age=50.0)

    def test_site_backoff_between_requests(self):
        net = SimulatedNetwork(seed=1)
        a = ReplicaSite(1, net, mode="sdis")
        c = ReplicaSite(
            3, net, mode="sdis",
            policy=AntiEntropyPolicy(max_buffered=1, max_gap_age=0.0,
                                     min_request_interval=1e9),
        )
        from repro.core.encoding import encode_operation
        from repro.replication.clock import VectorClock
        from repro.replication.wire import EnvelopeFrame

        # Force a gap by hand: an envelope from the future buffers.
        op = a.insert_text(0, list("history")).ops[0]
        payload, bits = encode_operation(op)
        c.broadcast.on_frame(
            EnvelopeFrame(1, VectorClock({1: 99}), payload, bits)
        )
        assert c.broadcast.buffered == 1
        assert c.maybe_request_sync() is True
        assert c.maybe_request_sync() is False  # inside the back-off
        assert c.sync_requests_sent == 1


class TestNetworkedCatchUp:
    def _history_cluster(self):
        """Two active sites with settled, flattened, collapsed history."""
        from repro.core.path import ROOT

        cluster = Cluster(2, mode="sdis", seed=3, policy=EAGER)
        cluster.bootstrap(list("the quick brown fox jumps over the lazy dog"))
        cluster[1].initiate_flatten(ROOT)
        cluster.settle()
        cluster[1].note_revision()
        cluster[1].collapse_cold(min_age=0, min_atoms=4)
        return cluster

    def test_late_joiner_catches_up_over_the_wire(self):
        cluster = self._history_cluster()
        late = cluster.add_site()
        # The joiner hears a post-join envelope it cannot causally
        # deliver (it missed the history), detects the gap, and asks
        # the origin for a snapshot — all over the simulated network.
        cluster[1].insert_text(0, list(">> "))
        requests = cluster.anti_entropy()
        assert requests >= 1
        assert late.sync_requests_sent >= 1
        assert cluster[1].sync_responses_sent >= 1
        assert late.sync_responses_applied == 1
        cluster.assert_converged()
        assert late.doc.posids() == cluster[1].doc.posids()
        assert late.array_leaf_count > 0  # runs landed as leaves

    def test_partitioned_late_joiner_heals_and_catches_up(self):
        cluster = self._history_cluster()
        late = cluster.add_site()
        with cluster.partitioned({1, 2}, {late.site}):
            cluster[1].insert_text(0, list("while-you-were-away "))
            cluster[2].insert_text(0, list("more "))
            cluster.settle()
            assert len(late) == 0  # isolated and history-less
        # Healing delivers the held envelopes, but they buffer: the
        # pre-join history is still missing. The anti-entropy tick
        # resolves it with one state transfer.
        cluster.anti_entropy()
        cluster.assert_converged()
        assert late.sync_responses_applied >= 1
        assert late.doc.posids() == cluster[1].doc.posids()

    def test_responder_declines_when_not_ahead(self):
        cluster = Cluster(2, mode="sdis", seed=5, policy=EAGER)
        cluster.bootstrap(list("abc"))
        # Both sites are level: a request must go unanswered.
        cluster[2].request_sync(1)
        cluster.settle()
        assert cluster[1].sync_responses_sent == 0
        assert cluster[2].sync_responses_applied == 0

    def test_stale_response_is_ignored_not_fatal(self):
        cluster = self._history_cluster()
        late = cluster.add_site()
        response = cluster[1].make_state_transfer()
        late.insert_text(0, list("local"))  # now the snapshot is stale
        late._apply_sync_response(response)
        assert late.sync_responses_ignored == 1
        assert late.sync_responses_applied == 0
        assert late.text().startswith("local")

    def test_no_gap_no_requests(self):
        cluster = self._history_cluster()
        assert cluster.anti_entropy() == 0

    def test_quiescent_joiner_requests_explicitly(self):
        # A joiner that has heard nothing has no gap to detect; the
        # explicit request covers the cold-start case.
        cluster = self._history_cluster()
        late = cluster.add_site()
        assert cluster.anti_entropy() == 0  # silence: no trigger
        assert late.request_sync(1) is True
        cluster.settle()
        assert late.sync_responses_applied == 1
        cluster.assert_converged()

    def test_request_sync_without_candidate_peer(self):
        cluster = self._history_cluster()
        late = cluster.add_site()
        assert late.request_sync() is False  # nothing buffered, no peer


class TestInheritedTombstoneGC:
    def test_synced_replica_purges_inherited_tombstones(self):
        # Regression (ROADMAP follow-on): a synced SDIS replica used to
        # hold inherited tombstones forever — it had no delete-log
        # entries for them, so only a flatten could reclaim them. The
        # SyncResponse now carries the sender's outstanding delete log.
        cluster = Cluster(2, mode="sdis", seed=7, tombstone_gc=True,
                          policy=EAGER)
        cluster.bootstrap(list("abcdefghij"))
        cluster[1].delete_range(2, 6)
        cluster.settle()
        late = cluster.add_site()
        assert late.request_sync(1) is True
        cluster.settle()
        assert late.sync_responses_applied == 1
        assert late.doc.tree.id_length > len(late.doc)  # tombstones came
        assert late._delete_log  # ...with their delete log
        cluster.gossip_acks()
        cluster.gossip_acks()
        assert late.purged_tombstones > 0
        # Fully purged: identifiers in use equal the visible atoms.
        assert late.doc.tree.id_length == len(late.doc)
        cluster.assert_converged()

    def test_direct_sync_from_also_carries_the_log(self):
        net = SimulatedNetwork(seed=9)
        a = ReplicaSite(1, net, mode="sdis", tombstone_gc=True)
        b = ReplicaSite(2, net, mode="sdis", tombstone_gc=True)
        a.insert_text(0, list("abcdef"))
        net.run()
        a.delete_range(1, 3)
        net.run()
        c = ReplicaSite(3, net, mode="sdis", tombstone_gc=True)
        stats = c.sync_from(a)
        assert stats.inherited_deletes == 2
        assert len(c._delete_log) == 2


class TestConvergenceUnderEverything:
    """Satellite: corruption/loss fuzz — bit flips surface only as
    DecodeError-driven retransmits, and the cluster converges under
    loss + duplication + corruption + partitions + a late joiner."""

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_corrupting_lossy_cluster_converges(self, seed):
        cluster = Cluster(
            3, mode="sdis",
            config=NetworkConfig(
                drop_rate=0.15, duplicate_rate=0.1, corruption_rate=0.15,
                min_latency=1, max_latency=120,
            ),
            seed=seed, policy=EAGER,
        )
        cluster.bootstrap(list("seed"))
        rng = random.Random(seed)

        def edit_burst(round_number):
            for site in cluster:
                for _ in range(rng.randint(0, 2)):
                    if len(site) > 2 and rng.random() < 0.4:
                        site.delete(rng.randrange(len(site)))
                    else:
                        site.insert(rng.randint(0, len(site)),
                                    f"s{site.site}r{round_number}")

        for round_number in range(3):
            edit_burst(round_number)
        with cluster.partitioned({1}, {2, 3}):
            for round_number in range(3, 5):
                edit_burst(round_number)
        edit_burst(5)
        cluster.anti_entropy()
        cluster.assert_converged()
        network = cluster.network
        # Corruption happened and every damaged frame was rejected by
        # the typed decoder and retransmitted — none slipped through.
        assert network.corrupted_transmissions > 0
        assert network.decode_rejections == network.corrupted_transmissions

    def test_late_joiner_catches_up_under_faults(self):
        cluster = Cluster(
            2, mode="sdis",
            config=NetworkConfig(drop_rate=0.2, corruption_rate=0.2,
                                 duplicate_rate=0.1),
            seed=13, policy=EAGER,
        )
        cluster.bootstrap(list("durable history line"))
        late = cluster.add_site()
        cluster[1].insert_text(0, list("new "))
        cluster.anti_entropy()
        cluster.assert_converged()
        assert late.doc.posids() == cluster[1].doc.posids()

    def test_sync_exchange_survives_corruption(self):
        # The big SyncResponse frame itself is corruption-prone; the
        # CRC rejects the damage and the transport retries it like any
        # other message.
        cluster = Cluster(
            2, mode="sdis",
            config=NetworkConfig(corruption_rate=0.5),
            seed=21, policy=EAGER,
        )
        cluster.bootstrap(list("the quick brown fox jumps"))
        late = cluster.add_site()
        assert late.request_sync(1)
        cluster.settle()
        assert late.sync_responses_applied == 1
        cluster.assert_converged()


class TestApplyPreconditions:
    def test_self_sync_refused(self):
        net = SimulatedNetwork(seed=1)
        a = ReplicaSite(1, net, mode="sdis")
        a.insert_text(0, list("abc"))
        with pytest.raises(SyncError):
            a.apply_state_transfer(a.make_state_transfer())
