"""Frontier-diff anti-entropy: SyncDelta/SyncDecline exchanges, the
region-filtered harvest, merge safety (no resurrection, no opaque
windows), decline/backoff/rotation, piggybacked acknowledgements, and
the decode-fuzz discipline for the two new frames."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core.encoding import encode_operation
from repro.core.ops import InsertOp
from repro.core.path import ROOT
from repro.core.runs import RegionFilter, iter_state_segments
from repro.core.treedoc import Treedoc
from repro.errors import CorruptFrameError, DecodeError, TreeError
from repro.replication.clock import VectorClock
from repro.replication.cluster import Cluster
from repro.replication.network import SimulatedNetwork
from repro.replication.site import ReplicaSite
from repro.replication.sync import AntiEntropyPolicy
from repro.replication.wire import (
    DECLINE_BUSY,
    DECLINE_NOT_AHEAD,
    DECLINE_TRY_PEER,
    EnvelopeFrame,
    SyncDecline,
    SyncDelta,
    SyncRequest,
    decode_wire,
    encode_wire,
)

#: Fire on any persistent gap, with no jitter: the direct-exchange
#: tests below assert exact request counts.
EAGER0 = AntiEntropyPolicy(max_buffered=1, max_gap_age=0.0,
                           min_request_interval=0.0, jitter=0.0)


def _future_envelope(origin, sequence=99, text="x"):
    """A fabricated envelope from the future: buffering it opens a
    causal gap at the receiver without any real history behind it."""
    doc = Treedoc(site=origin)
    payload, bits = encode_operation(doc.insert(0, text))
    return EnvelopeFrame(origin, VectorClock({origin: sequence}),
                         payload, bits)


class TestRegionFilter:
    def test_mutual_prefix_admission(self):
        cover = RegionFilter([(0, 1)])
        assert cover.admits((0, 1))        # the region itself
        assert cover.admits((0, 1, 1, 0))  # subtree inside the region
        assert cover.admits((0,))          # ancestor spine
        assert cover.admits(())            # the root spans everything
        assert not cover.admits((1,))      # disjoint sibling
        assert not cover.admits((0, 0))

    def test_cover_minimised(self):
        cover = RegionFilter([(0, 1, 1), (0, 1), (0, 1, 0), (1, 0)])
        assert cover.regions == ((0, 1), (1, 0))
        assert len(cover) == 2

    def test_root_region_is_whole_document(self):
        assert RegionFilter([(), (0, 1)]).whole_document
        assert not RegionFilter([(0,)]).whole_document
        assert not RegionFilter([]).whole_document
        # An empty cover admits nothing.
        assert not RegionFilter([]).admits(())

    def test_filtered_harvest_subset_of_full(self):
        doc = Treedoc(site=1, mode="sdis")
        doc.insert_text(0, list("abcdefghijklmnop"))
        full = iter_state_segments(doc.tree, 1)
        bits = doc.posid_at(3).bits()
        part = iter_state_segments(doc.tree, 1,
                                   regions=RegionFilter([bits]))
        assert part  # the named region is served...
        assert len(part) <= len(full)  # ...but never more than all


class TestMergeSegments:
    def test_merge_is_a_join_not_a_replacement(self):
        a = Treedoc(site=1, mode="sdis")
        a.insert_text(0, list("shared"))
        b = Treedoc(site=2, mode="sdis")
        b.load_state(a.capture_state())
        concurrent = b.insert(0, "!")  # local progress the delta lacks
        a.insert_text(6, list(" tail"))
        applied = b.merge_segments(iter_state_segments(a.tree, 1))
        assert applied == len(" tail")
        assert b.text() == "!shared tail"
        assert b.tree.lookup(concurrent.posid) is not None

    def test_skip_set_blocks_resurrection(self):
        a = Treedoc(site=1, mode="sdis")
        a.insert_text(0, list("abc"))
        b = Treedoc(site=2, mode="sdis")
        b.load_state(a.capture_state())
        victim = b.posid_at(1)
        b.delete(1)  # a has not seen this delete
        b.merge_segments(iter_state_segments(a.tree, 1),
                         skip=frozenset([victim]))
        assert b.text() == "ac"  # 'b' stayed dead

    def test_conflicting_atom_is_typed_error(self):
        a = Treedoc(site=1, mode="sdis")
        a.insert_text(0, list("abc"))
        b = Treedoc(site=2, mode="sdis")
        b.load_state(a.capture_state())
        segments = [InsertOp(a.posid_at(0), "Z", 1)]
        with pytest.raises(TreeError):
            b.merge_segments(segments)

    def test_idempotent_over_shipping(self):
        a = Treedoc(site=1, mode="sdis")
        a.insert_text(0, list("idempotent"))
        b = Treedoc(site=2, mode="sdis")
        b.load_state(a.capture_state())
        assert b.merge_segments(iter_state_segments(a.tree, 1)) == 0
        assert b.text() == "idempotent"


class TestDeltaExchange:
    def _pair(self, seed=2, text="the quick brown fox jumps"):
        net = SimulatedNetwork(seed=seed)
        a = ReplicaSite(1, net, mode="sdis", policy=EAGER0)
        b = ReplicaSite(2, net, mode="sdis", policy=EAGER0)
        a.insert_text(0, list(text))
        net.run()
        return net, a, b

    def test_one_origin_behind_gets_a_small_delta(self):
        net, a, b = self._pair()
        base = b.broadcast.clock.copy()
        a.insert_text(4, list("very "))
        a.delete(0)
        delta = a.make_sync_delta(base)
        assert delta is not None
        assert delta.base == base
        # The diff names only the touched regions; on a document this
        # size it must be well under the full snapshot.
        full = a.make_state_transfer()
        assert delta.wire_bytes < full.wire_bytes
        received = decode_wire(delta.to_wire())
        assert received == delta
        b._apply_sync_delta(received)
        assert b.sync_deltas_applied == 1
        assert b.text() == a.text()
        assert b.doc.posids() == a.doc.posids()
        net.run()  # the original envelopes arrive late: all duplicates
        assert b.text() == a.text()

    def test_delta_ships_deletes_explicitly(self):
        # A UDIS delete leaves no trace in region state — the delta's
        # delete log is the only way it travels.
        net = SimulatedNetwork(seed=3)
        a = ReplicaSite(1, net, mode="udis", policy=EAGER0)
        b = ReplicaSite(2, net, mode="udis", policy=EAGER0)
        a.insert_text(0, list("abcdef"))
        net.run()
        base = b.broadcast.clock.copy()
        a.delete(2)
        a.insert(0, "!")
        delta = decode_wire(a.make_sync_delta(base).to_wire())
        assert delta.delete_log
        b._apply_sync_delta(delta)
        assert b.text() == a.text() == "!abdef"

    def test_merge_does_not_resurrect_local_delete(self):
        net, a, b = self._pair(text="ab")
        victim = b.doc.posid_at(1)
        base = b.broadcast.clock.copy()
        b.delete(1)  # local-only: a has not seen it
        a.insert(2, "Z")  # a's edit admits the region around 'b'
        delta = decode_wire(a.make_sync_delta(base).to_wire())
        b._apply_sync_delta(delta)
        from repro.core.node import LIVE

        slot = b.doc.tree.lookup(victim)
        assert slot is None or slot.state != LIVE  # stayed dead
        assert "b" not in b.text()
        net.run()  # b's delete reaches a; a's envelope is a dup at b
        assert a.text() == b.text()

    def test_snapshot_adoption_poisons_delta_service(self):
        # History learned as a snapshot cannot be frontier-diffed
        # onward: the joiner's opaque frontier refuses old bases.
        net, a, b = self._pair()
        a.insert(0, "+")  # a second causal event past the bootstrap
        net.run()
        joiner = ReplicaSite(3, net, mode="sdis", policy=EAGER0)
        joiner.sync_from(a)
        joiner.insert_text(0, list(">> "))
        stale_base = VectorClock({1: 1})  # below the adopted frontier
        assert joiner.make_sync_delta(stale_base) is None
        # ...but a requester past the adopted frontier diffs fine.
        fresh_base = joiner.broadcast.clock.copy()
        joiner.insert(0, "!")
        assert joiner.make_sync_delta(fresh_base) is not None

    def test_flatten_in_window_is_opaque(self):
        net = SimulatedNetwork(seed=4)
        a = ReplicaSite(1, net, mode="sdis", policy=EAGER0)
        a.insert_text(0, list("flatten me please"))
        pre = a.broadcast.clock.copy()
        a.initiate_flatten(ROOT)  # alone: decides and applies at once
        assert a.make_sync_delta(pre) is None
        post = a.broadcast.clock.copy()
        a.insert(0, "!")
        delta = a.make_sync_delta(post)
        # The diff carries the insert plus its ancestor spine (benign
        # over-shipping), never the whole document.
        assert delta is not None
        assert 1 <= delta.atom_count < len(a.doc)

    def test_responder_prefers_full_when_delta_loses(self):
        # Deletes dominate the window: the diff must carry one delete
        # record per vanished atom, while the full snapshot just ships
        # the small survivor document — the cheaper frame wins.
        net = SimulatedNetwork(seed=21)
        a = ReplicaSite(1, net, mode="udis", policy=EAGER0)
        b = ReplicaSite(2, net, mode="udis", policy=EAGER0)
        a.insert_text(0, list("a long document that mostly dies " * 6))
        net.run()
        base = b.broadcast.clock.copy()
        a.delete_range(0, len(a.doc) - 4)
        delta = a.make_sync_delta(base)
        full = a.make_state_transfer()
        assert delta is not None
        assert delta.wire_bytes >= full.wire_bytes
        a._answer_sync_request(SyncRequest(2, base))
        assert a.sync_responses_sent == 1
        assert a.sync_deltas_sent == 0

    def test_responder_serves_delta_when_it_wins(self):
        net, a, b = self._pair(
            text="a long settled document that stays put " * 6)
        base = b.broadcast.clock.copy()
        a.insert(0, "!")
        a._answer_sync_request(SyncRequest(2, base))
        assert a.sync_deltas_sent == 1
        assert a.sync_responses_sent == 0
        net.run()
        # The pending "!" envelope may race the delta; either way the
        # delta is harmless and the sites agree.
        assert b.text() == a.text()
        assert b.doc.posids() == a.doc.posids()

    def test_fresh_joiner_bootstraps_with_full_snapshot(self):
        net, a, b = self._pair()
        joiner = ReplicaSite(4, net, mode="sdis", policy=EAGER0)
        a._answer_sync_request(SyncRequest(4, VectorClock()))
        assert a.sync_responses_sent == 1 and a.sync_deltas_sent == 0
        net.run()
        assert joiner.sync_responses_applied == 1
        assert joiner.text() == a.text()

    def test_stale_delta_is_counted_and_retriggers(self):
        net, a, b = self._pair()
        base = b.broadcast.clock.copy()
        a.insert(0, "!")
        delta = decode_wire(a.make_sync_delta(base).to_wire())
        # b adopts a snapshot first: its opaque frontier passes the
        # delta's clock, so the delta can no longer merge soundly.
        c = ReplicaSite(5, net, mode="sdis", policy=EAGER0)
        net.run()
        c.sync_from(a)
        c.insert(0, "?")
        hi = VectorClock({1: 99, 5: 99})
        c._opaque_frontier = c._opaque_frontier.merge(hi)
        c._apply_sync_delta(delta)
        assert c.sync_deltas_stale == 1
        assert c.sync_deltas_applied == 0
        assert c._peer_retry_at.get(1, 0) > net.now  # peer backed off


class TestDeclineAndRotation:
    def test_level_peer_declines(self):
        cluster = Cluster(2, mode="sdis", seed=5, policy=EAGER0)
        cluster.bootstrap(list("abc"))
        cluster[2].request_sync(1)
        cluster.settle()
        assert cluster[1].sync_declines_sent == 1
        assert cluster[2].sync_declines_received == 1
        assert cluster[2].sync_responses_applied == 0
        # The failed exchange scored the peer into backoff.
        assert cluster[2]._peer_retry_at[1] > 0

    def test_decline_carries_hint_and_requester_rotates(self):
        cluster = Cluster(3, mode="sdis", seed=6, policy=EAGER0)
        cluster.bootstrap(list("abc"))
        b, c = cluster[2], cluster[3]
        # Both b and c buffer an envelope from future origin 1: equal
        # clocks, so b declines c — but b's gap names site 1, the hint.
        b.broadcast.on_frame(_future_envelope(1))
        c.broadcast.on_frame(_future_envelope(1))
        c.request_sync(2)
        cluster.settle()
        assert b.sync_declines_sent == 1
        assert c._peer_hint == 1
        # The decline reopened the request window; rotation goes to
        # the hinted peer immediately.
        assert c.maybe_request_sync() is True
        cluster.settle()
        assert cluster[1].sync_requests_received == 1

    def test_busy_decline_when_responder_is_gap_blocked(self):
        cluster = Cluster(3, mode="sdis", seed=7, policy=EAGER0)
        cluster.bootstrap(list("abc"))
        b, c = cluster[2], cluster[3]
        b.broadcast.on_frame(_future_envelope(9, sequence=5))
        # c's clock is concurrent with b's (c invents local edits).
        c.insert(0, "!")
        c.request_sync(2)
        cluster.settle()
        assert b.sync_declines_sent == 1
        assert c.sync_declines_received == 1

    def test_dead_requester_gets_no_answer(self):
        net = SimulatedNetwork(seed=8)
        a = ReplicaSite(1, net, mode="sdis", policy=EAGER0)
        a.insert_text(0, list("abc"))
        net.run()
        a._answer_sync_request(SyncRequest(77, VectorClock()))
        assert a.sync_requests_received == 1
        assert a.sync_responses_sent == 0
        assert a.sync_declines_sent == 0

    def test_backoff_grows_exponentially_and_caps(self):
        policy = AntiEntropyPolicy()
        assert policy.backoff(0) == 0.0
        assert policy.backoff(1) == policy.backoff_base
        assert policy.backoff(2) == policy.backoff_base * 2
        assert policy.backoff(10) == policy.backoff_max

    def test_jitter_stream_is_seeded_and_per_site(self):
        from repro.util.rng import derive_rng

        one = derive_rng(7, "sync-jitter", 1)
        same = derive_rng(7, "sync-jitter", 1)
        other = derive_rng(7, "sync-jitter", 2)
        draws = [one.random() for _ in range(8)]
        assert draws == [same.random() for _ in range(8)]
        assert draws != [other.random() for _ in range(8)]

    def test_partitioned_origin_falls_back_to_connected_peer(self):
        # Satellite regression: peer selection used to fixate on the
        # oldest-gap origin even when it was unreachable; now any
        # connected candidate serves.
        cluster = Cluster(3, mode="sdis", seed=9, policy=EAGER0)
        cluster.bootstrap(list("abcdef"))
        c = cluster[3]
        cluster.partition({1}, {2, 3})
        c.broadcast.on_frame(_future_envelope(1))  # gap names origin 1
        assert c.request_sync() is True
        cluster.settle()
        # The request reached site 2 (reachable), not site 1 (held).
        assert cluster[2].sync_requests_received == 1
        assert cluster.network.held == 0

    def test_crashed_origin_falls_back_too(self):
        net = SimulatedNetwork(seed=10)
        a = ReplicaSite(1, net, mode="sdis", policy=EAGER0)
        b = ReplicaSite(2, net, mode="sdis", policy=EAGER0)
        c = ReplicaSite(3, net, mode="sdis", policy=EAGER0)
        a.insert_text(0, list("abc"))
        net.run()
        a.crash()
        c.broadcast.on_frame(_future_envelope(1))
        assert c.request_sync() is True
        net.run()
        assert b.sync_requests_received == 1

    def test_stale_response_counted_and_retriggers_immediately(self):
        # Satellite regression: a stale response used to be swallowed,
        # leaving the requester to wait out another full gap-age
        # window. Now it counts, scores the peer, and reopens the
        # request gate at once.
        slow = AntiEntropyPolicy(max_buffered=1, max_gap_age=0.0,
                                 min_request_interval=1e9, jitter=0.0)
        net = SimulatedNetwork(seed=11)
        a = ReplicaSite(1, net, mode="sdis", policy=EAGER0)
        b = ReplicaSite(2, net, mode="sdis", policy=slow)
        a.insert_text(0, list("history"))
        net.run()
        b.broadcast.on_frame(_future_envelope(9))
        assert b.maybe_request_sync() is True
        assert b.maybe_request_sync() is False  # inside the interval
        stale = a.make_state_transfer()
        b.insert(0, "!")  # now the snapshot cannot dominate b
        b._apply_sync_response(stale)
        assert b.sync_responses_stale == 1
        assert b.maybe_request_sync() is True  # gate reopened
        # The counter surfaces in the next successful SyncStats.
        c = ReplicaSite(3, net, mode="sdis", policy=EAGER0)
        net.run()
        stats = c.sync_from(a)
        assert stats.stale_responses == 0  # c never saw a stale one
        assert b.sync_responses_ignored == 1


class TestPiggybackedAcks:
    def test_frontier_advances_with_zero_ack_frames(self):
        # Steady envelope traffic alone must purge stable tombstones:
        # every envelope's clock is an acknowledgement.
        cluster = Cluster(2, mode="sdis", seed=12, tombstone_gc=True,
                          policy=EAGER0)
        cluster.bootstrap(list("abcdefgh"))
        cluster[1].delete_range(2, 5)
        cluster.settle()
        # Site 2 heard the deletes (and its own application of them):
        # it purges on delivery. Site 1 needs to hear site 2 speak.
        cluster[2].insert(0, "!")
        cluster.settle()
        assert cluster[1].purged_tombstones == 3
        assert cluster[2].purged_tombstones == 3
        for site in cluster:
            assert site.doc.tree.id_length == len(site.doc)
        cluster.assert_converged(identities=True)

    def test_frontier_advances_under_drop(self):
        from repro.replication.network import NetworkConfig

        cluster = Cluster(
            3, mode="sdis", seed=13, tombstone_gc=True, policy=EAGER0,
            config=NetworkConfig(drop_rate=0.15, min_latency=1,
                                 max_latency=30),
        )
        cluster.bootstrap(list("droppy droppy text"))
        cluster[1].delete_range(0, 4)
        cluster.settle()
        for site in cluster:
            site.insert(0, f"s{site.site}")
        cluster.settle()
        cluster.anti_entropy()
        for site in cluster:
            assert site.purged_tombstones == 4, site.site
        cluster.assert_converged(identities=True)

    def test_sync_traffic_is_an_ack_too(self):
        cluster = Cluster(2, mode="sdis", seed=14, tombstone_gc=True,
                          policy=EAGER0)
        cluster.bootstrap(list("abcd"))
        cluster[1].delete(1)
        cluster.settle()
        # A bare SyncRequest from site 2 carries its applied clock;
        # that alone completes site 1's frontier.
        cluster[2].request_sync(1)
        cluster.settle()
        assert cluster[1].purged_tombstones == 1


class TestNewFrameIntegrity:
    """Satellite: the same exhaustive corruption discipline the v2
    frames get — every single-bit flip and every truncation of the two
    new frames surfaces as a typed DecodeError, nothing else."""

    def _delta_frame(self):
        doc = Treedoc(site=1, mode="sdis")
        doc.insert_text(0, list("delta fuzz subject"))
        doc.delete_range(2, 4)
        segments = tuple(iter_state_segments(doc.tree, 1))
        log = ((doc.posid_at(0), 1, 3),)
        return SyncDelta(1, VectorClock({1: 20, 2: 4}),
                         VectorClock({1: 18, 2: 4}), segments, log)

    def test_sync_delta_round_trip(self):
        frame = self._delta_frame()
        back = decode_wire(frame.to_wire())
        assert back == frame
        assert back.wire_bytes == len(frame.to_wire())
        assert back.atom_count == frame.atom_count

    def test_sync_decline_round_trip(self):
        for frame in (
            SyncDecline(3),
            SyncDecline(3, DECLINE_BUSY),
            SyncDecline(3, DECLINE_TRY_PEER, hint=12),
            SyncDecline(2**30, DECLINE_NOT_AHEAD, hint=None),
        ):
            assert decode_wire(encode_wire(frame)) == frame

    def test_every_delta_bit_flip_detected(self):
        wire = self._delta_frame().to_wire()
        for position in range(len(wire) * 8):
            damaged = bytearray(wire)
            damaged[position // 8] ^= 0x80 >> (position % 8)
            with pytest.raises(CorruptFrameError) as err:
                decode_wire(bytes(damaged))
            # Satellite: errors attribute the damaged frame — length
            # always, the kind whenever the header byte survived.
            assert err.value.length == len(wire)
            if position >= 8:
                assert err.value.frame_kind == "sync_delta"

    def test_every_decline_bit_flip_detected(self):
        wire = encode_wire(SyncDecline(5, DECLINE_TRY_PEER, hint=9))
        for position in range(len(wire) * 8):
            damaged = bytearray(wire)
            damaged[position // 8] ^= 0x80 >> (position % 8)
            with pytest.raises(CorruptFrameError) as err:
                decode_wire(bytes(damaged))
            assert err.value.length == len(wire)
            if position >= 8:
                assert err.value.frame_kind == "sync_decline"

    def test_every_truncation_detected(self):
        from repro.replication.wire import peek_wire_kind

        for wire in (self._delta_frame().to_wire(),
                     encode_wire(SyncDecline(5, DECLINE_BUSY, hint=2))):
            kind = peek_wire_kind(wire)
            assert kind in ("sync_delta", "sync_decline")
            for cut in range(len(wire)):
                with pytest.raises(DecodeError) as err:
                    decode_wire(wire[:cut])
                assert err.value.length == cut
                if cut >= 1:
                    assert err.value.frame_kind == kind

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_random_multi_flips_never_escape(self, data):
        wire = self._delta_frame().to_wire()
        flips = data.draw(st.lists(
            st.integers(0, len(wire) * 8 - 1), min_size=1, max_size=8,
            unique=True,
        ))
        damaged = bytearray(wire)
        for position in flips:
            damaged[position // 8] ^= 0x80 >> (position % 8)
        try:
            decode_wire(bytes(damaged))
        except DecodeError:
            pass  # the only acceptable escape
