"""ReplicaSite internals: voting, locks, operation logging."""

import pytest

from repro.core.path import PosID, ROOT
from repro.replication.cluster import Cluster
from repro.replication.commit import PrepareMsg
from repro.replication.site import RegionLockedError


def _synced_cluster(n=3, seed=1):
    cluster = Cluster(n, mode="sdis", seed=seed)
    cluster.bootstrap(list("abcdefgh"))
    return cluster


class TestVoting:
    def test_yes_when_caught_up_and_quiet(self):
        cluster = _synced_cluster()
        site = cluster[2]
        snapshot = site.broadcast.clock.copy()
        prepare = PrepareMsg("t", ROOT, snapshot, 1)
        assert site._vote(prepare) is True

    def test_no_when_behind_snapshot(self):
        cluster = _synced_cluster()
        # Site 1 edits; snapshot taken at site 1; site 2 hasn't seen it.
        cluster[1].insert(0, "x")
        prepare = PrepareMsg("t", ROOT, cluster[1].broadcast.clock.copy(), 1)
        assert cluster[2]._vote(prepare) is False

    def test_no_when_region_edited_beyond_snapshot(self):
        cluster = _synced_cluster()
        snapshot = cluster[2].broadcast.clock.copy()
        cluster[2].insert(0, "y")  # applied locally, beyond snapshot
        prepare = PrepareMsg("t", ROOT, snapshot, 1)
        assert cluster[2]._vote(prepare) is False

    def test_yes_when_edit_outside_region(self):
        cluster = _synced_cluster()
        snapshot = cluster[2].broadcast.clock.copy()
        cluster[2].insert(0, "y")
        # The edit went somewhere under the root; a disjoint region that
        # shares no prefix with it still votes yes. Find such a region.
        edited_bits = cluster[2].doc.posid_at(0).bits()
        disjoint = PosID.from_bits([1 - edited_bits[0], 0])
        prepare = PrepareMsg(
            "t", disjoint, snapshot.merge(cluster[2].broadcast.clock), 1
        )
        assert cluster[2]._vote(prepare) is True

    def test_no_when_overlapping_lock_held(self):
        cluster = _synced_cluster()
        cluster[1].initiate_flatten(ROOT)
        cluster.settle()  # first txn decided and released
        cluster[2].initiate_flatten(ROOT)  # pending at site 2
        snapshot = cluster[2].broadcast.clock.copy()
        prepare = PrepareMsg("t9", ROOT, snapshot, 1)
        assert cluster[2]._vote(prepare) is False


class TestRegionLockUx:
    def test_insert_adjacent_to_locked_region_refused(self):
        cluster = _synced_cluster(2)
        cluster[1].initiate_flatten(ROOT)
        with pytest.raises(RegionLockedError):
            cluster[1].insert(4, "x")
        cluster.settle()
        cluster[1].insert(4, "x")  # fine after the decision

    def test_empty_doc_insert_blocked_by_any_lock(self):
        cluster = Cluster(2, mode="sdis", seed=2)
        cluster.bootstrap(["only"])
        cluster[1].delete(0)
        cluster.settle()
        cluster[1].initiate_flatten(ROOT)
        with pytest.raises(RegionLockedError):
            cluster[1].insert(0, "x")
        cluster.settle()


class TestBatchShipping:
    def test_insert_text_ships_one_envelope(self):
        cluster = Cluster(2, seed=9)
        sent_before = cluster.network.sent_messages
        cluster[1].insert_text(0, list("hello"))
        # One broadcast to one peer = one transmission, not five.
        assert cluster.network.sent_messages == sent_before + 1
        cluster.settle()
        assert cluster.assert_converged() == list("hello")

    def test_delete_range_ships_one_envelope(self):
        cluster = _synced_cluster(2)
        sent_before = cluster.network.sent_messages
        batch = cluster[1].delete_range(2, 6)
        assert len(batch) == 4
        assert cluster.network.sent_messages == sent_before + 1
        cluster.settle()
        assert cluster.assert_converged() == list("abgh")

    def test_replace_range_ships_one_envelope(self):
        cluster = _synced_cluster(2)
        batch = cluster[1].replace_range(0, 2, list("XY"))
        assert [op.kind for op in batch.ops] == ["delete"] * 2 + ["insert"] * 2
        cluster.settle()
        assert cluster.assert_converged() == list("XYcdefgh")

    def test_batched_ops_logged_individually(self):
        cluster = _synced_cluster(2)
        cluster[1].insert_text(0, list("xy"))
        cluster.settle()
        kinds = [op.kind for op in cluster[2].applied_ops[-2:]]
        assert kinds == ["insert", "insert"]

    def test_batch_delete_range_respects_locks(self):
        from repro.core.path import ROOT

        cluster = _synced_cluster(2)
        cluster[1].initiate_flatten(ROOT)
        with pytest.raises(RegionLockedError):
            cluster[1].delete_range(0, 3)
        cluster.settle()
        cluster[1].delete_range(0, 3)  # fine after the decision

    def test_tombstone_gc_sees_batched_deletes(self):
        cluster = Cluster(2, mode="sdis", seed=4, tombstone_gc=True)
        cluster.bootstrap(list("abcdefgh"))
        cluster[1].delete_range(0, 4)
        cluster.settle()
        cluster.gossip_acks()
        cluster.gossip_acks()
        assert cluster[1].purged_tombstones > 0
        assert cluster[2].purged_tombstones > 0
        cluster.assert_converged()


class TestBookkeeping:
    def test_applied_ops_logged_in_order(self):
        cluster = _synced_cluster(2)
        cluster[1].insert(0, "x")
        cluster[1].delete(0)
        cluster.settle()
        kinds = [op.kind for op in cluster[2].applied_ops[-2:]]
        assert kinds == ["insert", "delete"]

    def test_unhandled_message_rejected(self):
        from repro.errors import ReplicationError

        cluster = _synced_cluster(2)
        with pytest.raises(ReplicationError):
            cluster[1]._on_message(2, "garbage")

    def test_repr(self):
        cluster = _synced_cluster(2)
        assert "ReplicaSite" in repr(cluster[1])
