"""Public surface: exports, CLI entry point, package docs."""

import subprocess
import sys

import pytest


class TestExports:
    def test_top_level_api(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_imports(self):
        import repro.baselines
        import repro.core
        import repro.editor
        import repro.experiments
        import repro.metrics
        import repro.replication
        import repro.workloads

        for module in (
            repro.core, repro.replication, repro.baselines,
            repro.workloads, repro.metrics, repro.experiments, repro.editor,
        ):
            assert module.__doc__, module.__name__

    def test_every_public_module_documented(self):
        import importlib
        import pkgutil

        import repro

        undocumented = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            if not module.__doc__:
                undocumented.append(info.name)
        assert undocumented == []

    def test_version(self):
        import repro

        assert repro.__version__


class TestCli:
    @pytest.mark.slow
    def test_experiments_cli_runs_one_target(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "table2"],
            capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "Table 2" in result.stdout

    def test_experiments_cli_rejects_unknown_target(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "table9"],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode != 0
