"""The Replica façade: edit / merge / pending / snapshot."""

import random

import pytest

from repro import OpBatch, Replica
from repro.errors import ReproError


class TestLocalEditing:
    def test_edit_verbs(self):
        replica = Replica(site=1)
        replica.edit(0, 0, "hello world")
        replica.edit(0, 5, "goodbye")
        replica.edit(len(replica), len(replica), "!")
        assert replica.text() == "goodbye world!"

    def test_insert_delete_sugar(self):
        replica = Replica(site=1)
        replica.insert(0, "abcdef")
        replica.delete(1, 3)
        assert replica.text() == "adef"

    def test_arbitrary_atoms(self):
        replica = Replica(site=1)
        replica.insert(0, [("line", 1), ("line", 2)])
        assert len(replica) == 2
        assert replica.snapshot().atoms == (("line", 1), ("line", 2))

    def test_edit_returns_one_batch(self):
        replica = Replica(site=1)
        batch = replica.edit(0, 0, "abc")
        assert isinstance(batch, OpBatch)
        assert len(batch) == 3
        replaced = replica.edit(0, 2, "xy")
        assert [op.kind for op in replaced.ops] == [
            "delete", "delete", "insert", "insert"]


class TestOutbox:
    def test_pending_drains_in_order(self):
        replica = Replica(site=1)
        first = replica.edit(0, 0, "ab")
        second = replica.edit(2, 2, "cd")
        assert replica.pending() == [first, second]
        assert replica.pending() == []  # drained

    def test_pending_peek_keeps_outbox(self):
        replica = Replica(site=1)
        replica.edit(0, 0, "ab")
        assert len(replica.pending(clear=False)) == 1
        assert len(replica.pending()) == 1

    def test_noop_edits_not_queued(self):
        replica = Replica(site=1)
        replica.edit(0, 0, "")
        assert replica.pending() == []


class TestMerge:
    def test_two_replicas_converge(self):
        a, b = Replica(site=1), Replica(site=2)
        a.edit(0, 0, "the quick fox")
        b.merge(a.pending())
        # Concurrent edits, exchanged as batches.
        a.edit(4, 9, "sly")
        b.edit(0, 0, "watch: ")
        batches_a, batches_b = a.pending(), b.pending()
        a.merge(batches_b)
        b.merge(batches_a)
        assert a.snapshot() == b.snapshot()
        assert a.text() == "watch: the sly fox"

    def test_merge_counts_ops(self):
        a, b = Replica(site=1), Replica(site=2)
        a.edit(0, 0, "abc")
        assert b.merge(a.pending()) == 3

    def test_merge_accepts_bare_operations(self):
        a, b = Replica(site=1), Replica(site=2)
        batch = a.edit(0, 0, "ab")
        for op in batch.ops:
            b.merge(op)
        assert b.text() == "ab"

    def test_digest_verification(self):
        a, b = Replica(site=1), Replica(site=2)
        batch = a.edit(0, 0, "abc")
        forged = OpBatch(batch.ops[:1], batch.origin, batch.seq_start,
                         batch.seq_end, batch.digest)
        with pytest.raises(ReproError):
            b.merge(forged)
        b.merge(forged, verify=False)  # opt-out applies what's carried
        assert b.text() == "a"

    def test_random_two_site_convergence(self):
        rng = random.Random(17)
        a, b = Replica(site=1), Replica(site=2)
        for _ in range(40):
            for replica in (a, b):
                roll = rng.random()
                if len(replica) > 4 and roll < 0.35:
                    start = rng.randrange(len(replica) - 2)
                    replica.delete(start, start + rng.randint(1, 2))
                else:
                    index = rng.randint(0, len(replica))
                    replica.insert(
                        index, f"{replica.site}x{rng.randint(0, 99)}:")
            batches_a, batches_b = a.pending(), b.pending()
            a.merge(batches_b)
            b.merge(batches_a)
            assert a.snapshot() == b.snapshot()
        a.doc.check()
        b.doc.check()


class TestSnapshot:
    def test_snapshot_is_content_equality(self):
        a, b = Replica(site=1), Replica(site=2)
        a.edit(0, 0, "same")
        b.merge(a.pending())
        snap_a, snap_b = a.snapshot(), b.snapshot()
        assert snap_a == snap_b
        assert snap_a.digest == snap_b.digest
        assert snap_a.site != snap_b.site

    def test_snapshot_immutable_view(self):
        replica = Replica(site=1)
        replica.edit(0, 0, "abc")
        snap = replica.snapshot()
        replica.edit(0, 3)
        assert snap.text == "abc"
        assert replica.text() == ""
        assert len(snap) == 3

    def test_repr(self):
        replica = Replica(site=1)
        replica.edit(0, 0, "x")
        assert "Replica" in repr(replica)
