"""Multi-user editing sessions (the paper's target application)."""

import random

import pytest

from repro.editor import SharedDocument
from repro.errors import ReplicationError
from repro.replication.network import NetworkConfig


class TestSharedDocument:
    def test_two_users_converge(self):
        doc = SharedDocument(2, seed=1)
        doc[1].type(0, "hello")
        doc.sync()
        doc[2].type(5, " world")
        doc.sync()
        assert doc.assert_converged() == "hello world"

    def test_concurrent_typing_converges(self):
        doc = SharedDocument(3, seed=2)
        doc[1].type(0, "base text here")
        doc.sync()
        doc[1].type(4, " ALPHA")
        doc[2].type(9, " BETA")
        doc[3].erase(0, 4)
        doc.sync()
        text = doc.assert_converged()
        assert "ALPHA" in text and "BETA" in text

    def test_lossy_network_session(self):
        doc = SharedDocument(
            4, seed=3,
            config=NetworkConfig(drop_rate=0.25, duplicate_rate=0.1),
        )
        doc[1].type(0, "collaborative editing over a bad network")
        doc.sync()
        rng = random.Random(3)
        for round_number in range(10):
            for user in doc:
                text_length = len(user.text())
                if text_length > 10 and rng.random() < 0.4:
                    start = rng.randrange(text_length - 3)
                    user.erase(start, start + 2)
                else:
                    user.type(rng.randint(0, text_length),
                              f"[{user.site}.{round_number}]")
        doc.sync()
        doc.assert_converged()

    def test_cursor_stability_across_users(self):
        doc = SharedDocument(2, seed=4)
        doc[1].type(0, "the fox jumps")
        doc.sync()
        cursor = doc[2].cursor(4, "bob")  # before "fox"
        doc[1].type(0, "watch: ")
        doc.sync()
        assert doc[2].text()[cursor.offset:cursor.offset + 3] == "fox"
        doc[2].type_at(cursor, "quick ")
        doc.sync()
        assert doc.assert_converged() == "watch: the quick fox jumps"

    def test_divergence_reported(self):
        doc = SharedDocument(2, seed=5)
        doc[1].type(0, "x")  # not synced
        with pytest.raises(ReplicationError):
            doc.assert_converged()
        doc.sync()
        doc.assert_converged()

    def test_replace_propagates_as_modify(self):
        doc = SharedDocument(2, seed=6)
        doc[1].type(0, "colour")
        doc.sync()
        doc[2].replace(0, 6, "color")
        doc.sync()
        assert doc.assert_converged() == "color"
