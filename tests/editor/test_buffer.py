"""The editor buffer: text API and identifier-anchored cursors."""

import pytest

from repro.editor.buffer import EditorBuffer
from repro.errors import ReproError


@pytest.fixture
def buffer() -> EditorBuffer:
    buf = EditorBuffer(site=1)
    buf.insert_text(0, "hello world\nsecond line\n")
    return buf


class TestTextApi:
    def test_text_and_len(self, buffer):
        assert buffer.text() == "hello world\nsecond line\n"
        assert len(buffer) == 24

    def test_insert_text_returns_ops(self, buffer):
        ops = buffer.insert_text(5, ", big")
        assert len(ops) == 5
        assert buffer.text().startswith("hello, big world")

    def test_delete_range(self, buffer):
        buffer.delete_range(5, 11)
        assert buffer.text().startswith("hello\n")

    def test_replace_range_is_delete_plus_insert(self, buffer):
        ops = buffer.replace_range(0, 5, "howdy")
        kinds = [op.kind for op in ops]
        assert kinds == ["delete"] * 5 + ["insert"] * 5
        assert buffer.text().startswith("howdy world")

    def test_lines_and_line_start(self, buffer):
        assert buffer.lines() == ["hello world", "second line", ""]
        assert buffer.line_start(1) == 12
        with pytest.raises(IndexError):
            buffer.line_start(5)

    def test_insert_line(self, buffer):
        buffer.insert_line(1, "inserted line")
        assert buffer.lines()[1] == "inserted line"

    def test_insert_line_rejects_embedded_newline(self, buffer):
        with pytest.raises(ReproError):
            buffer.insert_line(0, "two\nlines")

    def test_range_checks(self, buffer):
        with pytest.raises(IndexError):
            buffer.insert_text(1000, "x")
        with pytest.raises(IndexError):
            buffer.delete_range(5, 3)


class TestReplication:
    def test_remote_ops_replay(self, buffer):
        replica = EditorBuffer(site=2)
        source = EditorBuffer(site=1)
        ops = source.insert_text(0, "shared")
        ops += source.delete_range(0, 1)
        replica.apply_all(ops)
        assert replica.text() == source.text() == "hared"

    def test_concurrent_editing_converges(self):
        a, b = EditorBuffer(site=1), EditorBuffer(site=2)
        for op in a.insert_text(0, "the fox"):
            b.apply(op)
        ops_a = a.insert_text(4, "quick ")
        ops_b = b.insert_text(3, " brown")
        a.apply_all(ops_b)
        b.apply_all(ops_a)
        assert a.text() == b.text()
        assert "quick" in a.text() and "brown" in a.text()


class TestCursors:
    def test_cursor_offset_roundtrip(self, buffer):
        cursor = buffer.cursor(6)
        assert cursor.offset == 6
        cursor.move_to(0)
        assert cursor.offset == 0
        end = buffer.cursor(len(buffer))
        assert end.offset == len(buffer)

    def test_cursor_tracks_remote_insert_before_it(self, buffer):
        cursor = buffer.cursor(6)  # before "world"
        remote = EditorBuffer(site=2)
        remote.apply_all(
            EditorBuffer(site=3).insert_text(0, "")
        )  # no-op replica setup
        ops = EditorBuffer(site=2)
        # simulate a remote edit: another buffer with same state
        other = EditorBuffer(site=2)
        other.apply_all(buffer.insert_text(0, ""))  # nothing
        # do the real remote insert via a second replica of this buffer:
        ops = buffer.insert_text(0, ">>> ")
        assert cursor.offset == 10
        assert buffer.text()[cursor.offset:cursor.offset + 5] == "world"
        del ops

    def test_cursor_static_for_edit_after_it(self, buffer):
        cursor = buffer.cursor(5)
        buffer.insert_text(11, "!!!")
        assert cursor.offset == 5

    def test_typing_at_cursor_advances_past_text(self, buffer):
        cursor = buffer.cursor(5)
        buffer.type_at(cursor, ", big")
        assert buffer.text().startswith("hello, big world")
        assert cursor.offset == 10  # still anchored before " world"

    def test_backspace(self, buffer):
        cursor = buffer.cursor(5)
        buffer.backspace_at(cursor)
        assert buffer.text().startswith("hell world")
        home = buffer.cursor(0)
        assert buffer.backspace_at(home) == []

    def test_cursor_survives_anchor_deletion(self, buffer):
        cursor = buffer.cursor(6)  # anchored at 'w'
        buffer.delete_range(6, 8)  # deletes 'wo'
        # The cursor falls to the next surviving atom.
        assert buffer.text()[cursor.offset] == "r"

    def test_cursor_at_end_stays_at_end(self, buffer):
        cursor = buffer.cursor(len(buffer))
        buffer.insert_text(0, "prefix ")
        assert cursor.offset == len(buffer)

    def test_cursor_rank_matches_posids_everywhere(self, buffer):
        # The O(depth) rank query must agree with a linear scan.
        buffer.insert_text(3, "xyz")
        buffer.delete_range(10, 12)
        for offset in range(len(buffer) + 1):
            cursor = buffer.cursor(offset)
            assert cursor.offset == offset, offset
