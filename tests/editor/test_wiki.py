"""The wiki-page layer."""

import pytest

from repro.editor.wiki import WikiPage, split_paragraphs


PAGE_V1 = """Treedoc is a sequence CRDT.

It identifies atoms with paths in a binary tree.

Replicas converge without concurrency control."""

PAGE_V2 = """Treedoc is a sequence CRDT for cooperative editing.

It identifies atoms with paths in a binary tree.

Identifiers are dense: one always fits between two others.

Replicas converge without concurrency control."""


class TestSplit:
    def test_blank_line_separated(self):
        assert split_paragraphs(PAGE_V1) == [
            "Treedoc is a sequence CRDT.",
            "It identifies atoms with paths in a binary tree.",
            "Replicas converge without concurrency control.",
        ]

    def test_extra_blank_lines_collapse(self):
        assert split_paragraphs("a\n\n\n\nb") == ["a", "b"]
        assert split_paragraphs("") == []


class TestSaving:
    def test_save_and_read_back(self):
        page = WikiPage(site=1)
        page.save(PAGE_V1)
        assert page.text() == PAGE_V1
        assert page.revision == 1

    def test_modify_is_delete_plus_insert(self):
        page = WikiPage(site=1)
        page.save(PAGE_V1)
        page.save(PAGE_V2)
        assert page.text() == PAGE_V2
        record = page.history[-1]
        # V2 rewrote paragraph 1 (delete+insert) and added one: the wiki
        # churn pattern of section 5.
        assert record.deleted >= 1
        assert record.inserted >= 2

    def test_untouched_paragraphs_keep_identifiers(self):
        page = WikiPage(site=1)
        page.save(PAGE_V1)
        stable = page.doc.posid_at(1)  # the binary-tree paragraph
        page.save(PAGE_V2)
        paragraphs = page.paragraphs()
        index = paragraphs.index(
            "It identifies atoms with paths in a binary tree."
        )
        assert page.doc.posid_at(index) == stable

    def test_edit_paragraph(self):
        page = WikiPage(site=1)
        page.save(PAGE_V1)
        page.edit_paragraph(0, "Treedoc launched the CRDT subfield.")
        assert page.paragraphs()[0] == "Treedoc launched the CRDT subfield."
        assert page.revision == 2


class TestConcurrentEditing:
    def _synced_pair(self):
        a, b = WikiPage(site=1), WikiPage(site=2)
        b.apply_all(a.save(PAGE_V1))
        return a, b

    def test_edits_to_different_paragraphs_both_survive(self):
        a, b = self._synced_pair()
        ops_a = a.edit_paragraph(0, "A's intro paragraph.")
        ops_b = b.edit_paragraph(2, "B's conclusion paragraph.")
        a.apply_all(ops_b)
        b.apply_all(ops_a)
        assert a.paragraphs() == b.paragraphs()
        assert "A's intro paragraph." in a.paragraphs()
        assert "B's conclusion paragraph." in a.paragraphs()

    def test_concurrent_edits_to_same_paragraph_keep_both(self):
        # No lost updates: both rewrites survive side by side (merged,
        # not last-writer-wins — the paper's critique of Roh et al.).
        a, b = self._synced_pair()
        ops_a = a.edit_paragraph(1, "A's version.")
        ops_b = b.edit_paragraph(1, "B's version.")
        a.apply_all(ops_b)
        b.apply_all(ops_a)
        assert a.paragraphs() == b.paragraphs()
        assert "A's version." in a.paragraphs()
        assert "B's version." in a.paragraphs()

    def test_vandalism_and_restore(self):
        a, b = self._synced_pair()
        original = a.paragraphs()
        b.apply_all(a.save("vandalized"))
        assert b.paragraphs() == ["vandalized"]
        b.apply_all(a.revert_vandalism(original))
        assert a.paragraphs() == original == b.paragraphs()
        # The restore re-inserted everything: churn doubled.
        assert a.history[-1].inserted == len(original)


class TestMaintenance:
    def test_periodic_flatten_bounds_overhead(self):
        # Rotating edits: each save rewrites one paragraph, so most of
        # the page goes cold between saves and maintenance can collect.
        # (A workload that hammers the *same* paragraphs every revision
        # defeats the cold-region heuristic — the failure mode the paper
        # itself reports in section 5.1.)
        versions = [0] * 10
        heavy = WikiPage(site=1, maintenance_every=2)
        lazy = WikiPage(site=1)
        for step in range(30):
            versions[step % 10] = step + 1
            text = "\n\n".join(
                f"paragraph {i} version {versions[i]}" for i in range(10)
            )
            heavy.save(text)
            lazy.save(text)
        assert heavy.paragraphs() == lazy.paragraphs()
        assert heavy.doc.tree.id_length < lazy.doc.tree.id_length

    def test_maintenance_flatten_replays_remotely(self):
        a = WikiPage(site=1, maintenance_every=1)
        b = WikiPage(site=2)
        b.apply_all(a.save(PAGE_V1))
        b.apply_all(a.save(PAGE_V2))  # includes a flatten op
        assert a.paragraphs() == b.paragraphs()
        assert a.doc.posids() == b.doc.posids()

    def test_overhead_summary_mentions_revision(self):
        page = WikiPage(site=1)
        page.save(PAGE_V1)
        assert "rev 1" in page.overhead_summary()
