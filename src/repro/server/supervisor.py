"""Connection supervision: who dials whom, reconnect, failure detection.

**Dial direction.** Between any two daemons exactly one side dials:
the one with the *larger* site id calls the smaller. The rule is
arbitrary but total, so a fully-connected cluster forms without
duplicate sockets or dial storms, and every daemon knows statically
which peers it must pursue and which it merely awaits.

**Reconnect.** Each dialed peer gets a supervision loop: dial, serve
until the connection dies, back off, dial again. The backoff is the
shared :class:`repro.util.backoff.BackoffPolicy` (the same curve the
anti-entropy policy uses for declining responders) with deterministic
per-(site, peer) jitter from :func:`repro.util.rng.derive_rng` — a
hundred daemons restarting against one recovered peer spread their
dials instead of synchronizing into a thundering herd, yet any single
run replays identically from its seed. A connection that actually
established resets the failure count: its next loss retries at the
base delay, not wherever the curve had climbed.

**Failure detection.** A watchdog sweeps all live connections on the
heartbeat cadence: connections idle on the send side get a keepalive
ack queued; connections silent on the *receive* side past the idle
timeout are declared failed and closed — the dial loop (on whichever
side owns it) takes over from there. Detection is therefore purely
local and timer-based, as befits the asynchronous model: a silent
peer and a dead peer are indistinguishable, and both get the same
treatment.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List

from repro.core.disambiguator import SiteId
from repro.server.connection import PeerConnection
from repro.util.backoff import jittered
from repro.util.rng import derive_rng


class ConnectionSupervisor:
    """Owns the dial loops and the heartbeat/idle watchdog."""

    def __init__(self, daemon: "SiteDaemon") -> None:
        self.daemon = daemon
        self.config = daemon.config
        self._tasks: List[asyncio.Task] = []
        #: Consecutive dial failures per peer (status reporting).
        self.dial_failures: Dict[SiteId, int] = {}
        self.idle_drops = 0

    def dialed_peers(self) -> List[SiteId]:
        """The peers this daemon is responsible for calling."""
        return sorted(
            peer for peer in self.daemon.transport.peers
            if peer < self.daemon.config.site
        )

    def start(self) -> None:
        loop = asyncio.get_event_loop()
        for peer in self.dialed_peers():
            self._tasks.append(loop.create_task(self._dial_loop(peer)))
        self._tasks.append(loop.create_task(self._watchdog()))

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []

    # -- dialing ----------------------------------------------------------------------

    async def _dial_loop(self, peer: SiteId) -> None:
        host, port = self.daemon.transport.peers[peer]
        config = self.config
        rng = derive_rng(config.seed, "reconnect", config.site, peer)
        failures = 0
        while not self.daemon.closing:
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                failures += 1
                self.dial_failures[peer] = failures
                await asyncio.sleep(self._delay(failures, rng))
                continue
            connection = PeerConnection(self.daemon, reader, writer,
                                        expected_peer=peer)
            await connection.run()
            if self.daemon.closing:
                return
            # An established connection that later died restarts the
            # curve: one loss is one failure, not a continuation of
            # whatever streak preceded the success.
            failures = 1 if connection.established else failures + 1
            self.dial_failures[peer] = failures
            await asyncio.sleep(self._delay(failures, rng))

    def _delay(self, failures: int, rng) -> float:
        """Jittered backoff, converted from policy-ms to loop-seconds."""
        delay_ms = jittered(self.config.reconnect_backoff.delay(failures),
                            self.config.reconnect_jitter, rng)
        return delay_ms / 1000.0

    # -- heartbeats and idle detection ------------------------------------------------

    async def _watchdog(self) -> None:
        interval = self.config.heartbeat_interval
        while True:
            await asyncio.sleep(interval / 2.0)
            loop_now = asyncio.get_event_loop().time()
            for connection in list(self.daemon.connections.values()):
                if loop_now - connection.last_tx >= interval:
                    connection.send_heartbeat()
                if (loop_now - connection.last_rx
                        >= self.config.idle_timeout):
                    # Silent too long: presumed failed. Closing tears
                    # down both loops; the owning dialer redials.
                    self.idle_drops += 1
                    asyncio.get_event_loop().create_task(
                        connection.close()
                    )
