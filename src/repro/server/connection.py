"""One live TCP connection to a peer daemon.

A :class:`PeerConnection` owns the socket pair for exactly one peer:
a reader loop that reassembles segments (:mod:`repro.server.framing`)
and hands frames to the daemon's admission gate, and a writer loop
that drains the peer's bounded :class:`~repro.server.transport.
SendQueue`. ``await writer.drain()`` between segments is the
backpressure coupling: a peer that stops reading stalls the writer
task, the queue fills, and the watermark shedding in ``SendQueue``
takes over — memory stays bounded no matter how slow the consumer.

Identity is established by a **hello**: each side's first segment is
an ordinary :class:`~repro.replication.wire.AckFrame` carrying its
site id and applied clock, written directly on the socket *before*
the writer loop starts so it always precedes queued traffic (a
recovering daemon may have WAL-tail envelopes parked already). The
hello doubles as the first delivery — an ack is idempotent, and its
clock immediately feeds the receiver's stability tracker. Subsequent
idle-time heartbeats are the same frame, pushed through the low band.

Stream damage never escapes: resyncs (:class:`repro.errors.
FrameSyncError`) are counted and reading continues; payload-level
corruption is caught later by ``decode_wire``'s CRC in the apply loop.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.core.disambiguator import SiteId
from repro.errors import DecodeError, FrameSyncError
from repro.replication.wire import AckFrame, decode_wire, encode_wire
from repro.server.framing import FrameReader, encode_segment

_READ_CHUNK = 65536


class PeerConnection:
    """Reader/writer tasks for one peer socket."""

    def __init__(self, daemon: "SiteDaemon",
                 reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 expected_peer: Optional[SiteId] = None) -> None:
        self.daemon = daemon
        self.reader = reader
        self.writer = writer
        #: The dialer knows who it called; an accepted connection
        #: learns the peer from the hello.
        self.expected_peer = expected_peer
        self.peer: Optional[SiteId] = None
        self.frames = FrameReader()
        loop = asyncio.get_event_loop()
        self.last_rx = loop.time()
        self.last_tx = loop.time()
        self.established = False
        self.frames_received = 0
        self.heartbeats_sent = 0
        self._writer_task: Optional[asyncio.Task] = None
        self._closing = False

    # -- lifecycle --------------------------------------------------------------------

    async def run(self) -> None:
        """Serve the connection until it closes; returns afterwards."""
        try:
            self._write_hello()
            # A peer that connects but never identifies itself must
            # not pin this socket forever: nobody supervises a
            # connection until it is attached, so the handshake
            # carries its own deadline.
            try:
                peer = await asyncio.wait_for(
                    self._handshake(), self.daemon.config.idle_timeout
                )
            except asyncio.TimeoutError:
                self.daemon.note_protocol_error("handshake timed out")
                return
            if peer is None:
                return
            if (self.expected_peer is not None
                    and peer != self.expected_peer):
                self.daemon.note_protocol_error(
                    f"dialed site {self.expected_peer} but "
                    f"{peer} answered"
                )
                return
            self.peer = peer
            if not self.daemon.attach_connection(self):
                return  # lost a reconnect race; the winner serves
            self.established = True
            self._writer_task = asyncio.get_event_loop().create_task(
                self._write_loop()
            )
            await self._read_loop()
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            await self.close()

    async def close(self) -> None:
        if self._closing:
            return
        self._closing = True
        self.daemon.detach_connection(self)
        if self._writer_task is not None:
            self._writer_task.cancel()
            try:
                await self._writer_task
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass
        try:
            self.writer.close()
            # A stalled peer can leave unflushable bytes in the
            # transport; close() then never completes. Bound the
            # graceful close and abort the socket if it overruns.
            try:
                await asyncio.wait_for(self.writer.wait_closed(), 1.0)
            except asyncio.TimeoutError:
                self.writer.transport.abort()
        except (ConnectionError, OSError):
            pass

    # -- handshake --------------------------------------------------------------------

    def _write_hello(self) -> None:
        site = self.daemon.site
        hello = AckFrame(site.site, site.broadcast.clock.copy())
        self.writer.write(encode_segment(encode_wire(hello)))
        self.last_tx = asyncio.get_event_loop().time()

    async def _handshake(self) -> Optional[SiteId]:
        """Read until the peer's hello identifies it (or EOF).

        One frame at a time, never ``drain()``: a fast peer's first
        chunk can carry the hello *and* a burst of queued traffic
        behind it, and those frames must stay buffered in the reader
        for the read loop — not be consumed and dropped here."""
        while True:
            while True:
                try:
                    payload = self.frames.next_frame()
                except FrameSyncError:
                    self.daemon.stream_resyncs += 1
                    continue
                if payload is None:
                    break
                try:
                    frame = decode_wire(payload)
                except DecodeError:
                    self.daemon.decode_errors += 1
                    continue
                if isinstance(frame, AckFrame):
                    self.last_rx = asyncio.get_event_loop().time()
                    # The hello is also a real ack: deliver it once the
                    # daemon knows whose it is.
                    await self.daemon.admit(frame.site, payload)
                    return frame.site
                # Traffic before identity: unattributable, drop.
                self.daemon.note_protocol_error(
                    "frame received before hello"
                )
            chunk = await self.reader.read(_READ_CHUNK)
            if not chunk:
                return None
            self.frames.feed(chunk)

    # -- serving ----------------------------------------------------------------------

    async def _read_loop(self) -> None:
        # Frames first, socket second: the handshake may have left
        # complete frames buffered in the reader (hello and traffic
        # arriving in one chunk), and they must flow before blocking
        # on the next read.
        loop = asyncio.get_event_loop()
        while True:
            while True:
                try:
                    payload = self.frames.next_frame()
                except FrameSyncError:
                    self.daemon.stream_resyncs += 1
                    continue
                if payload is None:
                    break
                self.last_rx = loop.time()
                self.frames_received += 1
                await self.daemon.admit(self.peer, payload)
            chunk = await self.reader.read(_READ_CHUNK)
            if not chunk:
                return
            self.frames.feed(chunk)

    async def _write_loop(self) -> None:
        queue = self.daemon.transport.queues[self.peer]
        loop = asyncio.get_event_loop()
        while True:
            payload = queue.pop()
            if payload is None:
                await queue.wait()
                continue
            self.writer.write(encode_segment(payload))
            self.last_tx = loop.time()
            await self.writer.drain()

    def send_heartbeat(self) -> None:
        """Queue an idle-time keepalive (low band: sheds under load,
        when real traffic is advancing ``last_rx`` anyway)."""
        site = self.daemon.site
        frame = AckFrame(site.site, site.broadcast.clock.copy())
        if self.daemon.transport.queues[self.peer].push(encode_wire(frame)):
            self.heartbeats_sent += 1
