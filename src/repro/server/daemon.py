"""The asyncio site daemon: one ReplicaSite served over real sockets.

:class:`SiteDaemon` hosts exactly one :class:`~repro.replication.site.
ReplicaSite` behind TCP, speaking the existing wire grammar unchanged
— the bytes a daemon puts on a socket are byte-for-byte the frames the
simulated network carries, wrapped in the stream framing of
:mod:`repro.server.framing`. The pieces:

- a listen socket accepting peer connections (and an admin socket,
  :mod:`repro.server.admin`);
- per-peer :class:`~repro.server.connection.PeerConnection` task pairs
  over the bounded send queues of :class:`~repro.server.transport.
  SocketTransport`;
- a :class:`~repro.server.supervisor.ConnectionSupervisor` dialing
  lower-id peers with jittered exponential backoff and watching for
  silent connections;
- a single **apply task** draining one bounded inbound queue — every
  frame from every peer funnels through it, so the replica applies
  strictly sequentially (the same single-threaded discipline the
  simulator guarantees) and a decode error is a counted non-event;
- an **admission gate** in front of that queue: when inbound depth or
  the in-flight sync cap is exceeded, re-requestable work is refused
  *typed* — remote ``SyncRequest``\\ s get an immediate
  ``SyncDecline(busy)``, local admin writes get
  :class:`repro.errors.OverloadedError` — and everything else is shed
  for anti-entropy to repair;
- a graceful shutdown path (SIGTERM/SIGINT) that stops admission,
  drains the send queues briefly, checkpoints the durable store, and
  closes the WAL — while SIGKILL at any instant is exactly the crash
  the store's recovery protocol (checkpoint + tail replay + rejoin)
  is tested against.

The replication layer runs unmodified: the daemon is deliberately
*only* plumbing — sockets, queues, timers, signals — so every
convergence property proven in the simulations carries over verbatim.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from repro.core.disambiguator import SiteId
from repro.errors import DecodeError, OverloadedError, ReproError
from repro.replication.site import ReplicaSite
from repro.replication.sync import AntiEntropyPolicy
from repro.replication.clock import VectorClock
from repro.replication.wire import (
    DECLINE_BUSY,
    SyncDecline,
    decode_wire,
    encode_wire,
    peek_wire_kind,
)
from repro.server.transport import SocketTransport
from repro.server.supervisor import ConnectionSupervisor
from repro.util.backoff import BackoffPolicy


@dataclass
class DaemonConfig:
    """Everything a site daemon needs to serve."""

    site: SiteId
    #: Listen address; port 0 binds an ephemeral port (read it back
    #: from :attr:`SiteDaemon.port` after :meth:`SiteDaemon.start`).
    host: str = "127.0.0.1"
    port: int = 0
    admin_port: int = 0
    #: Static peer roster: site id -> (host, port) of its listener.
    peers: Mapping[SiteId, Tuple[str, int]] = field(default_factory=dict)
    mode: str = "udis"
    tombstone_gc: bool = False
    #: Durable store directory; None runs volatile.
    store_path: Optional[str] = None
    checkpoint_every: Optional[int] = 64
    #: Outbound bounds (per peer queue; see transport.SendQueue).
    high_watermark: int = 256
    max_depth: int = 1024
    #: Inbound bounds (global apply queue + sync admission).
    inbound_depth: int = 512
    max_inflight_syncs: int = 8
    #: Timers, in loop seconds.
    heartbeat_interval: float = 0.5
    idle_timeout: float = 5.0
    tick_interval: float = 0.05
    #: Ack gossip cadence, in ticks (tombstone_gc only).
    ack_every_ticks: int = 20
    #: How long a peer's acked frontier may stay ahead of ours before
    #: the lag detector fires a targeted sync request (seconds). The
    #: replication layer only notices gaps through *buffered* out-of-
    #: order envelopes; over real sockets an envelope written into a
    #: dying connection is simply gone, and this detector is what
    #: keeps a restarted or cut-off site from staying behind forever.
    lag_sync_after: float = 1.0
    drain_timeout: float = 2.0
    #: Reconnect schedule (milliseconds, like every repro backoff).
    reconnect_backoff: BackoffPolicy = BackoffPolicy(
        base=100.0, factor=2.0, maximum=2000.0
    )
    reconnect_jitter: float = 0.5
    seed: int = 0


class SiteDaemon:
    """One replica site served over TCP."""

    def __init__(self, config: DaemonConfig,
                 policy: Optional[AntiEntropyPolicy] = None) -> None:
        self.config = config
        self.transport = SocketTransport(
            config.site, config.peers,
            high_watermark=config.high_watermark,
            max_depth=config.max_depth,
        )
        self.store = None
        if config.store_path is not None:
            from repro.storage.store import DurableStore

            self.store = DurableStore(
                config.store_path,
                checkpoint_every=config.checkpoint_every,
            )
        self.site = ReplicaSite(
            config.site, self.transport, mode=config.mode,
            tombstone_gc=config.tombstone_gc, policy=policy,
            store=self.store,
        )
        self.supervisor = ConnectionSupervisor(self)
        self.connections: Dict[SiteId, "PeerConnection"] = {}
        self._inbound: asyncio.Queue = asyncio.Queue()
        self._inflight_syncs = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._admin = None
        self._tasks: List[asyncio.Task] = []
        self._closed = asyncio.Event()
        self.closing = False
        self.port: Optional[int] = None
        self.admin_port: Optional[int] = None
        #: Observability counters.
        self.frames_applied = 0
        self.decode_errors = 0
        self.apply_errors = 0
        self.stream_resyncs = 0
        self.shed_inbound = 0
        self.declined_syncs = 0
        self.protocol_errors = 0
        self.lag_syncs = 0
        self.last_error: Optional[str] = None
        #: Frontier-lag detection: the last applied clock each peer
        #: acked (heartbeats and hellos are acks), and since when at
        #: least one of them has been strictly ahead of this site.
        self._peer_clocks: Dict[SiteId, "VectorClock"] = {}
        self._lag_since: Optional[float] = None
        #: Recent apply latencies (ms), ring-buffered for status/bench.
        self.apply_latencies: Deque[float] = deque(maxlen=4096)

    # -- lifecycle --------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the sockets and start serving (returns immediately)."""
        from repro.server.admin import AdminServer

        loop = asyncio.get_event_loop()
        self._server = await asyncio.start_server(
            self._on_inbound, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._admin = AdminServer(self)
        await self._admin.start(self.config.host, self.config.admin_port)
        self.admin_port = self._admin.port
        self.supervisor.start()
        self._tasks.append(loop.create_task(self._apply_loop()))
        self._tasks.append(loop.create_task(self._tick_loop()))

    async def serve(self) -> None:
        """Start, then block until shutdown completes."""
        await self.start()
        await self.wait_closed()

    async def wait_closed(self) -> None:
        await self._closed.wait()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger the graceful drain-and-checkpoint.
        (SIGKILL cannot be caught — by design, that is the crash path
        the durable store recovers from.)"""
        import signal

        loop = asyncio.get_event_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, self.request_shutdown)

    def request_shutdown(self) -> None:
        if not self.closing:
            asyncio.get_event_loop().create_task(self.shutdown())

    async def shutdown(self) -> None:
        """Graceful exit: refuse new work, drain, checkpoint, close."""
        if self.closing:
            await self._closed.wait()
            return
        self.closing = True
        # Stop accepting connections and admin commands.
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._admin is not None:
            await self._admin.stop()
        # Apply whatever was already admitted, then flush the send
        # queues — both bounded waits; a dead peer cannot wedge exit.
        await self._drain(self.config.drain_timeout)
        await self.supervisor.stop()
        for connection in list(self.connections.values()):
            await connection.close()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []
        if self.store is not None:
            self.site.checkpoint()
            self.store.close()
        self._closed.set()

    async def _drain(self, timeout: float) -> bool:
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout
        while loop.time() < deadline:
            inbound_empty = self._inbound.empty()
            outbound_empty = all(
                queue.depth == 0
                or queue_peer not in self.connections
                for queue_peer, queue in self.transport.queues.items()
            )
            if inbound_empty and outbound_empty:
                return True
            await asyncio.sleep(0.01)
        return False

    # -- connection registry ----------------------------------------------------------

    async def _on_inbound(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        from repro.server.connection import PeerConnection

        if self.closing:
            writer.close()
            return
        await PeerConnection(self, reader, writer).run()

    def attach_connection(self, connection: "PeerConnection") -> bool:
        peer = connection.peer
        if peer == self.config.site or peer not in self.transport.queues:
            self.note_protocol_error(f"connection from unknown site {peer}")
            return False
        old = self.connections.get(peer)
        if old is not None and old is not connection:
            # Reconnect race: the newest socket wins, the stale one
            # (whose peer may have silently rebooted) is torn down.
            asyncio.get_event_loop().create_task(old.close())
        self.connections[peer] = connection
        self.transport.mark_connected(peer)
        return True

    def detach_connection(self, connection: "PeerConnection") -> None:
        peer = connection.peer
        if peer is None:
            return
        if self.connections.get(peer) is connection:
            del self.connections[peer]
            self.transport.mark_disconnected(peer)

    def note_protocol_error(self, message: str) -> None:
        self.protocol_errors += 1
        self.last_error = message

    # -- admission and apply ----------------------------------------------------------

    def check_admission(self) -> None:
        """The local-writer side of the gate: admin edits refuse with
        a typed :class:`OverloadedError` while the apply queue is at
        capacity, instead of piling more work behind it."""
        if self.closing:
            raise OverloadedError(
                f"site {self.config.site} daemon is shutting down"
            )
        if self._inbound.qsize() >= self.config.inbound_depth:
            raise OverloadedError(
                f"site {self.config.site} apply queue at capacity "
                f"({self.config.inbound_depth}); retry after backoff"
            )

    async def admit(self, peer: SiteId, payload: bytes) -> None:
        """The admission gate every inbound frame passes through."""
        kind = peek_wire_kind(payload)
        if self.closing:
            self.shed_inbound += 1
            return
        if self._inbound.qsize() >= self.config.inbound_depth:
            self.shed_inbound += 1
            if kind == "sync_request":
                self._decline_busy(peer)
            return
        if (kind == "sync_request"
                and self._inflight_syncs >= self.config.max_inflight_syncs):
            self.declined_syncs += 1
            self._decline_busy(peer)
            return
        if kind == "sync_request":
            self._inflight_syncs += 1
        self._inbound.put_nowait((peer, payload))

    def _decline_busy(self, peer: SiteId) -> None:
        """Refuse re-requestable sync work typed, not silently: the
        requester scores the decline, backs off, and rotates peers."""
        self.transport.send(
            self.config.site, peer,
            encode_wire(SyncDecline(self.config.site, DECLINE_BUSY, None)),
        )

    async def _apply_loop(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            peer, payload = await self._inbound.get()
            kind = peek_wire_kind(payload)
            started = loop.time()
            try:
                self.transport.handler(peer, payload)
                self.frames_applied += 1
                if kind == "ack":
                    # Heartbeats and hellos carry the sender's applied
                    # clock: remember it, so the tick loop can notice
                    # this site has silently fallen behind.
                    frame = decode_wire(payload)
                    old = self._peer_clocks.get(frame.site)
                    self._peer_clocks[frame.site] = (
                        frame.applied if old is None
                        else old.merge(frame.applied)
                    )
            except DecodeError as exc:
                # Damaged in transit (CRC) or malformed: a counted
                # non-event. Unlike the simulator there is no
                # retransmit — TCP already guarantees delivery of what
                # was sent, so damage means a sender-side defect and
                # anti-entropy is the repair channel.
                self.decode_errors += 1
                self.last_error = f"decode: {exc.context() or exc}"
            except ReproError as exc:
                self.apply_errors += 1
                self.last_error = f"apply: {exc}"
            except Exception as exc:  # noqa: BLE001 - daemon must survive
                self.apply_errors += 1
                self.last_error = f"unexpected: {exc!r}"
            finally:
                if kind == "sync_request":
                    self._inflight_syncs -= 1
            self.apply_latencies.append((loop.time() - started) * 1000.0)

    async def _tick_loop(self) -> None:
        loop = asyncio.get_event_loop()
        ticks = 0
        while True:
            await asyncio.sleep(self.config.tick_interval)
            ticks += 1
            try:
                self.site.maybe_request_sync()
                self._check_frontier_lag(loop.time())
                if (self.site.tombstone_gc
                        and ticks % self.config.ack_every_ticks == 0):
                    self.site.broadcast_ack()
            except ReproError as exc:
                self.apply_errors += 1
                self.last_error = f"tick: {exc}"

    def _check_frontier_lag(self, now: float) -> None:
        """Request a sync from a peer whose acked frontier has stayed
        strictly ahead of ours for :attr:`DaemonConfig.lag_sync_after`.

        The replication layer's anti-entropy triggers on *buffered*
        out-of-order envelopes — the only gap signal a lossless
        simulated network can produce. Over real sockets an envelope
        written into a connection that is dying (peer SIGKILLed, link
        severed) is lost with no buffered trace, and a site that
        missed everything during an outage would otherwise idle at its
        stale frontier forever. Heartbeat acks double as the gossip
        that exposes the lag; this detector turns it into a targeted
        ``SyncRequest`` (rotating through the ahead peers, re-armed
        after each attempt so repair keeps retrying until caught up).
        """
        clock = self.site.broadcast.clock
        ahead = [
            peer for peer, remote in self._peer_clocks.items()
            if peer in self.transport.connected
            and any(count > clock.get(site) for site, count in
                    remote.items())
        ]
        if not ahead:
            self._lag_since = None
            return
        if self._lag_since is None:
            self._lag_since = now
            return
        if now - self._lag_since < self.config.lag_sync_after:
            return
        peer = ahead[self.lag_syncs % len(ahead)]
        if self.site.request_sync(peer):
            self.lag_syncs += 1
        self._lag_since = now

    # -- status -----------------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        latencies = sorted(self.apply_latencies)

        def percentile(fraction: float) -> Optional[float]:
            if not latencies:
                return None
            index = min(len(latencies) - 1,
                        int(fraction * (len(latencies) - 1)))
            return round(latencies[index], 4)

        shed = self.transport.shed_totals()
        tree = self.site.doc.tree
        return {
            "site": self.config.site,
            "atoms": len(self.site),
            # Storage health (live mixed tree/array form): collapsed
            # regions resident, and the tree's cumulative
            # explode/cache counters.
            "storage": {
                "array_leaves": len(tree.array_leaves()),
                "explodes": tree.explodes,
                "partial_explodes": tree.partial_explodes,
                "cache_drops": tree.cache_drops,
                "cache_splices": tree.cache_splices,
            },
            "clock": {str(k): v for k, v in
                      sorted(self.site.broadcast.clock.items())},
            "connected": list(self.transport.connected),
            "inbound_depth": self._inbound.qsize(),
            "inflight_syncs": self._inflight_syncs,
            "frames_applied": self.frames_applied,
            "decode_errors": self.decode_errors,
            "apply_errors": self.apply_errors,
            "stream_resyncs": self.stream_resyncs,
            "shed_inbound": self.shed_inbound,
            "declined_syncs": self.declined_syncs,
            "protocol_errors": self.protocol_errors,
            "lag_syncs": self.lag_syncs,
            "shed_low": shed["shed_low"],
            "shed_high": shed["shed_high"],
            "max_queue_depth": shed["max_depth_seen"],
            "apply_p50_ms": percentile(0.50),
            "apply_p99_ms": percentile(0.99),
            "sync_requests_sent": self.site.sync_requests_sent,
            "sync_responses_applied": self.site.sync_responses_applied,
            "sync_deltas_applied": self.site.sync_deltas_applied,
            "sync_declines_received": self.site.sync_declines_received,
            "recovered_events": self.site.recovered_events,
            "reshipped_envelopes": self.site.reshipped_envelopes,
            "last_error": self.last_error,
        }
