"""Transport framing: delimiting wire frames on a byte stream.

The peer protocol frames (:mod:`repro.replication.wire`) are
self-checking (CRC trailer) but not self-delimiting — the simulated
network delivers them as discrete payloads, TCP delivers an undivided
byte stream that the kernel may split or merge anywhere. This layer
adds the minimal outer envelope that restores message boundaries:

    ``MAGIC (2 bytes) | length (u32 big-endian) | payload``

where ``payload`` is exactly one encoded wire frame. The magic prefix
is what makes the stream *re-synchronizable*: a corrupted or truncated
segment desynchronizes the reader, which scans forward to the next
magic and resumes — one damaged frame never takes down the connection,
let alone the daemon.

:class:`FrameReader` is the incremental reassembler: feed it byte
chunks exactly as the socket produced them (split mid-header, mid-
payload, or merged across frames — all equivalent) and pull complete
payloads out. Errors surface only as typed
:class:`repro.errors.DecodeError` subclasses:

- :class:`repro.errors.FrameSyncError` — the stream lost alignment
  (bad magic, or an implausible length field). The reader has already
  discarded bytes up to the next plausible boundary; the caller simply
  keeps pulling frames.
- Payload-level damage is *not* detected here: a bit flip inside a
  correctly-delimited payload passes through and is rejected by
  ``decode_wire``'s CRC check, exactly like corruption on the
  simulated network.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from repro.errors import EncodingError, FrameSyncError

#: Segment magic. Both bytes have the high bit set so a desynchronized
#: scan cannot realign on ASCII payload content by accident.
MAGIC = b"\xd7\x9c"
MAGIC_BYTES = len(MAGIC)
_LENGTH = struct.Struct(">I")
HEADER_BYTES = MAGIC_BYTES + _LENGTH.size

#: Ceiling on a single segment's payload. A full-document state
#: transfer is the largest legitimate frame; 16 MiB leaves generous
#: headroom while keeping a corrupted length field from making the
#: reader buffer gigabytes before noticing.
DEFAULT_MAX_FRAME_BYTES = 16 * 1024 * 1024


def encode_segment(payload: bytes) -> bytes:
    """Wrap one wire frame for the stream: magic, length, payload."""
    if not isinstance(payload, (bytes, bytearray)):
        raise EncodingError(
            f"segment payload must be bytes, got {type(payload).__name__}"
        )
    if len(payload) > DEFAULT_MAX_FRAME_BYTES:
        raise EncodingError(
            f"segment payload of {len(payload)} bytes exceeds the "
            f"{DEFAULT_MAX_FRAME_BYTES}-byte frame ceiling"
        )
    return MAGIC + _LENGTH.pack(len(payload)) + bytes(payload)


class FrameReader:
    """Incremental segment reassembler over an arbitrary chunking.

    Usage::

        reader.feed(chunk)            # as bytes arrive from the socket
        while True:
            try:
                frame = reader.next_frame()
            except FrameSyncError:
                continue              # realigned; keep pulling
            if frame is None:
                break                 # need more bytes
            handle(frame)

    ``next_frame`` returns one complete payload, ``None`` when the
    buffered bytes do not yet hold a whole segment, and raises
    :class:`FrameSyncError` after discarding garbage — the reader is
    always safe to keep using.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        #: Counters for status reporting and tests.
        self.bytes_fed = 0
        self.frames_delivered = 0
        self.resyncs = 0
        self.bytes_discarded = 0

    def feed(self, chunk: bytes) -> None:
        """Append raw socket bytes (any chunking)."""
        self._buffer.extend(chunk)
        self.bytes_fed += len(chunk)

    @property
    def buffered(self) -> int:
        """Bytes held awaiting a complete segment."""
        return len(self._buffer)

    def next_frame(self) -> Optional[bytes]:
        """One complete payload, or None; FrameSyncError on garbage."""
        buffer = self._buffer
        if not buffer.startswith(MAGIC[: len(buffer)]):
            self._resync(skip=0)
        if len(buffer) < HEADER_BYTES:
            return None
        (length,) = _LENGTH.unpack_from(buffer, MAGIC_BYTES)
        if length > self.max_frame_bytes:
            # An implausible length is treated as corruption of the
            # header itself: drop this magic and rescan — buffering
            # `length` bytes first would let one flipped bit demand
            # gigabytes.
            self._resync(skip=MAGIC_BYTES)
        if len(buffer) < HEADER_BYTES + length:
            return None
        payload = bytes(buffer[HEADER_BYTES:HEADER_BYTES + length])
        del buffer[:HEADER_BYTES + length]
        self.frames_delivered += 1
        return payload

    def drain(self) -> List[bytes]:
        """Every currently-complete payload, swallowing resyncs (the
        counters still record them). Convenience for tests and for
        callers that do not need per-error handling."""
        frames: List[bytes] = []
        while True:
            try:
                frame = self.next_frame()
            except FrameSyncError:
                continue
            if frame is None:
                return frames
            frames.append(frame)

    def _resync(self, skip: int) -> None:
        """Discard up to the next magic at/after ``skip`` and raise."""
        buffer = self._buffer
        position = buffer.find(MAGIC, skip)
        if position < 0:
            # No boundary in sight. Keep the final byte in case it is
            # the first half of a magic split across chunks.
            discard = len(buffer)
            if buffer.endswith(MAGIC[:1]):
                discard -= 1
            del buffer[:discard]
        else:
            discard = position
            del buffer[:position]
        self.resyncs += 1
        self.bytes_discarded += discard
        raise FrameSyncError(
            f"stream lost frame alignment; discarded {discard} bytes "
            "to the next boundary",
            offset=discard,
        )
