"""A fault-injecting TCP proxy for torturing daemons over real sockets.

The simulator injects loss, reordering and corruption *below* the
frame boundary abstraction; real TCP gives reliable ordered bytes but
adds its own pathologies — segments split and merged at arbitrary
points, connections stalling, connections dying. :class:`FaultyTransport`
sits between two daemons (point peer A's address at the proxy, the
proxy at peer B) and injects exactly those:

- **split**: every forwarded chunk is re-chunked at seeded random
  byte boundaries (mid-magic, mid-header, mid-payload — the
  :class:`~repro.server.framing.FrameReader` must not care);
- **merge**: chunks are held briefly and coalesced, so one ``read()``
  on the far side spans several frames;
- **latency**: each chunk waits a seeded uniform delay;
- **stall**: after every N forwarded bytes the stream freezes for a
  while (the slow-consumer scenario that exercises watermark
  shedding and idle detection);
- **disconnect**: after N forwarded bytes the connection is severed
  (the supervisor's reconnect path), plus :meth:`sever` for scripted
  kills at a chosen moment.

All randomness comes from :func:`repro.util.rng.derive_rng` children
of ``plan.seed`` — a faulty run replays identically from its seed,
like every other fault simulation in this repo.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.util.rng import derive_rng


@dataclass(frozen=True)
class FaultPlan:
    """What the proxy does to the byte stream (seeded, deterministic)."""

    seed: int = 0
    #: Re-chunk forwarded bytes at random boundaries (1..chunk bytes).
    split: bool = False
    #: Probability a chunk is held and merged with the next one.
    merge_probability: float = 0.0
    #: Ceiling on held-and-merged bytes before a forced flush.
    merge_limit: int = 65536
    #: Max per-chunk delay in seconds (uniform 0..latency).
    latency: float = 0.0
    #: Freeze the stream for ``stall_duration`` after every this many
    #: forwarded bytes (None disables).
    stall_every_bytes: Optional[int] = None
    stall_duration: float = 0.0
    #: Sever the connection after this many forwarded bytes per
    #: direction (None disables). Reconnects start a fresh count.
    disconnect_after_bytes: Optional[int] = None


class FaultyTransport:
    """One listening proxy port forwarding (with faults) to a target."""

    def __init__(self, target_host: str, target_port: int,
                 plan: FaultPlan = FaultPlan(),
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.target = (target_host, target_port)
        self.plan = plan
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: List[asyncio.StreamWriter] = []
        self._connection_counter = 0
        #: Counters for assertions: the faults must actually happen.
        self.connections = 0
        self.forwarded_bytes = 0
        self.splits = 0
        self.merges = 0
        self.stalls = 0
        self.disconnects = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_client, self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.sever()

    def sever(self) -> None:
        """Kill every live proxied connection right now (scripted
        fault). Daemons' supervisors will redial through the proxy."""
        for writer in self._writers:
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass
        if self._writers:
            self.disconnects += 1
        self._writers = []

    async def _on_client(self, client_reader: asyncio.StreamReader,
                         client_writer: asyncio.StreamWriter) -> None:
        try:
            target_reader, target_writer = await asyncio.open_connection(
                *self.target
            )
        except OSError:
            client_writer.close()
            return
        self.connections += 1
        self._connection_counter += 1
        index = self._connection_counter
        self._writers.extend([client_writer, target_writer])
        await asyncio.gather(
            self._pump(client_reader, target_writer,
                       derive_rng(self.plan.seed, "fault", index, "fwd")),
            self._pump(target_reader, client_writer,
                       derive_rng(self.plan.seed, "fault", index, "rev")),
            return_exceptions=True,
        )
        for writer in (client_writer, target_writer):
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    #: How long a merge-hold survives without fresh bytes before it is
    #: force-flushed. A kernel coalesces segments that arrive close
    #: together; it never sits on delivered bytes indefinitely — and a
    #: held handshake hello with no follow-up traffic must not
    #: deadlock the connection.
    MERGE_FLUSH_SECONDS = 0.05

    async def _pump(self, reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter, rng) -> None:
        plan = self.plan
        state = {"forwarded": 0, "next_stall": plan.stall_every_bytes}
        held = b""

        async def forward(data: bytes) -> bool:
            """Split and forward; False once the link is severed."""
            for piece in self._pieces(data, rng):
                writer.write(piece)
                await writer.drain()
                state["forwarded"] += len(piece)
                self.forwarded_bytes += len(piece)
                if (plan.disconnect_after_bytes is not None
                        and state["forwarded"]
                        >= plan.disconnect_after_bytes):
                    self.disconnects += 1
                    writer.close()
                    return False
                if (state["next_stall"] is not None
                        and state["forwarded"] >= state["next_stall"]):
                    self.stalls += 1
                    state["next_stall"] = (state["forwarded"]
                                           + plan.stall_every_bytes)
                    await asyncio.sleep(plan.stall_duration)
            return True

        try:
            while True:
                if held:
                    try:
                        chunk = await asyncio.wait_for(
                            reader.read(65536), self.MERGE_FLUSH_SECONDS
                        )
                    except asyncio.TimeoutError:
                        data, held = held, b""
                        if not await forward(data):
                            return
                        continue
                else:
                    chunk = await reader.read(65536)
                if not chunk:
                    if held and not await forward(held):
                        return
                    return
                if plan.latency > 0.0:
                    await asyncio.sleep(rng.uniform(0.0, plan.latency))
                if (plan.merge_probability > 0.0
                        and len(held) + len(chunk) < plan.merge_limit
                        and rng.random() < plan.merge_probability):
                    held += chunk
                    self.merges += 1
                    continue
                data, held = held + chunk, b""
                if not await forward(data):
                    return
        except (ConnectionError, OSError, asyncio.CancelledError):
            return

    def _pieces(self, data: bytes, rng) -> List[bytes]:
        if not self.plan.split or len(data) <= 1:
            return [data]
        pieces: List[bytes] = []
        position = 0
        while position < len(data):
            step = rng.randint(1, max(1, min(len(data) - position, 512)))
            pieces.append(data[position:position + step])
            position += step
        if len(pieces) > 1:
            self.splits += len(pieces) - 1
        return pieces
