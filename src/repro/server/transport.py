"""The socket-backed network adapter a :class:`ReplicaSite` plugs into.

:class:`repro.replication.site.ReplicaSite` talks to an abstract
network — ``register`` / ``send`` / ``broadcast`` / ``now`` /
``sites`` / ``reachable`` / ``disconnect`` — and never cares whether
deliveries come from the discrete-event simulator or a kernel socket.
:class:`SocketTransport` implements that contract over real TCP
connections managed by the daemon: the site's sends land in bounded
per-peer :class:`SendQueue`\\ s, the per-connection writer tasks drain
them, and inbound frames re-enter through the handler the site
registered. The replication layer is byte-identical in both worlds —
that is the whole point.

**Backpressure** lives here. Each peer's queue holds two bands:

- *high* — causal envelopes and commitment messages
  (prepare/vote/abort): loss is repaired only by anti-entropy, so they
  are shed last;
- *low* — acks and anti-entropy traffic (requests, responses, deltas,
  declines): all of it is re-requestable, so it is shed first.

The writer always drains the high band before the low band (a slow
consumer sees its acks and snapshots *deprioritized*), the low band is
shed once total depth crosses ``high_watermark``, and the high band
itself is shed at the ``max_depth`` hard cap — a stalled peer costs a
bounded number of buffered frames, never unbounded memory. Whatever
was shed, the anti-entropy exchange recovers when the peer returns;
the counters make the shedding observable.

Queues are created *eagerly* for every configured peer, before any
connection exists: a recovering site re-broadcasts its WAL tail at
construction time, and those frames must park in a bounded queue until
the peer dials in, not vanish.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, Mapping, Optional, Set, Tuple

from repro.core.disambiguator import SiteId
from repro.replication.wire import peek_wire_kind

#: Wire kinds shed last: causal and commitment traffic, repairable
#: only by anti-entropy.
HIGH_BAND_KINDS = frozenset({"envelope", "prepare", "vote", "abort"})


class SendQueue:
    """A bounded, two-band outbound queue for one peer."""

    def __init__(self, high_watermark: int = 256,
                 max_depth: int = 1024) -> None:
        if not 0 < high_watermark <= max_depth:
            raise ValueError("need 0 < high_watermark <= max_depth")
        self.high_watermark = high_watermark
        self.max_depth = max_depth
        self._high: Deque[bytes] = deque()
        self._low: Deque[bytes] = deque()
        self._wakeup = asyncio.Event()
        #: Counters: what went in, what was refused, the worst depth.
        self.enqueued = 0
        self.shed_low = 0
        self.shed_high = 0
        self.max_depth_seen = 0

    @property
    def depth(self) -> int:
        return len(self._high) + len(self._low)

    @property
    def shed(self) -> int:
        """Total frames refused by the watermark or the hard cap."""
        return self.shed_low + self.shed_high

    def push(self, payload: bytes) -> bool:
        """Enqueue one wire frame; False when shed by the bounds."""
        depth = self.depth
        if peek_wire_kind(payload) in HIGH_BAND_KINDS:
            if depth >= self.max_depth:
                self.shed_high += 1
                return False
            self._high.append(payload)
        else:
            if depth >= self.high_watermark:
                self.shed_low += 1
                return False
            self._low.append(payload)
        self.enqueued += 1
        self.max_depth_seen = max(self.max_depth_seen, depth + 1)
        self._wakeup.set()
        return True

    def pop(self) -> Optional[bytes]:
        """The next frame to write — high band strictly first."""
        if self._high:
            return self._high.popleft()
        if self._low:
            return self._low.popleft()
        self._wakeup.clear()
        return None

    async def wait(self) -> None:
        """Block until a push arrives (writer-task parking spot)."""
        await self._wakeup.wait()

    def clear(self) -> int:
        """Drop everything (connection abandoned); returns the count."""
        dropped = self.depth
        self._high.clear()
        self._low.clear()
        self._wakeup.clear()
        return dropped


class SocketTransport:
    """The site-facing network interface over daemon-managed sockets.

    The daemon marks peers connected/disconnected as their connections
    come and go; ``sites`` and ``reachable`` expose the live roster so
    the site's anti-entropy peer rotation and ack membership follow
    real connectivity. ``now`` is the event loop's monotonic clock in
    milliseconds — the unit every replication policy already uses.
    """

    def __init__(
        self,
        site: SiteId,
        peers: Mapping[SiteId, Tuple[str, int]],
        high_watermark: int = 256,
        max_depth: int = 1024,
    ) -> None:
        self.site = site
        self.peers: Dict[SiteId, Tuple[str, int]] = dict(peers)
        self.queues: Dict[SiteId, SendQueue] = {
            peer: SendQueue(high_watermark, max_depth)
            for peer in self.peers
        }
        self._connected: Set[SiteId] = set()
        self._handler = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.closed = False
        #: Frames addressed to a site no queue exists for (a frame
        #: claimed an unconfigured id): dropped, counted, never raised —
        #: an exception here would poison the apply loop.
        self.unroutable = 0

    # -- the contract ReplicaSite consumes ---------------------------------------

    def register(self, site: SiteId, handler) -> None:
        if site != self.site:
            raise ValueError(
                f"transport for site {self.site} cannot host site {site}"
            )
        self._handler = handler

    @property
    def now(self) -> float:
        """Monotonic milliseconds (the policies' time unit)."""
        if self._loop is None:
            self._loop = asyncio.get_event_loop()
        return self._loop.time() * 1000.0

    @property
    def sites(self) -> Tuple[SiteId, ...]:
        """The live roster: this site plus currently-connected peers."""
        return tuple(sorted({self.site} | self._connected))

    def reachable(self, src: SiteId, dst: SiteId) -> bool:
        return dst == self.site or dst in self._connected

    def send(self, src: SiteId, dst: SiteId, payload: bytes) -> None:
        queue = self.queues.get(dst)
        if queue is None:
            self.unroutable += 1
            return
        queue.push(bytes(payload))

    def broadcast(self, src: SiteId, payload: bytes) -> None:
        payload = bytes(payload)
        for queue in self.queues.values():
            queue.push(payload)

    def disconnect(self, site: SiteId) -> None:
        """The site detached itself (``ReplicaSite.crash``)."""
        if site == self.site:
            self.closed = True

    # -- daemon-side wiring --------------------------------------------------------

    @property
    def handler(self):
        """The site's delivery handler (``handler(src, payload)``)."""
        return self._handler

    def mark_connected(self, peer: SiteId) -> None:
        self._connected.add(peer)

    def mark_disconnected(self, peer: SiteId) -> None:
        self._connected.discard(peer)

    @property
    def connected(self) -> Tuple[SiteId, ...]:
        return tuple(sorted(self._connected))

    def shed_totals(self) -> Dict[str, int]:
        """Aggregate shedding across every peer queue (for status)."""
        return {
            "shed_low": sum(q.shed_low for q in self.queues.values()),
            "shed_high": sum(q.shed_high for q in self.queues.values()),
            "max_depth_seen": max(
                (q.max_depth_seen for q in self.queues.values()), default=0
            ),
        }
