"""The asyncio site daemon: a ReplicaSite served over real TCP.

The package keeps a strict separation: everything *replication* lives
in :mod:`repro.replication` and runs unchanged; everything here is
serving plumbing — stream framing, bounded queues, connection
supervision, admission control, signals. See DESIGN.md §11.
"""

from repro.server.admin import AdminClient, identity_digest
from repro.server.daemon import DaemonConfig, SiteDaemon
from repro.server.faults import FaultPlan, FaultyTransport
from repro.server.framing import FrameReader, encode_segment
from repro.server.transport import SendQueue, SocketTransport

__all__ = [
    "AdminClient",
    "DaemonConfig",
    "FaultPlan",
    "FaultyTransport",
    "FrameReader",
    "SendQueue",
    "SiteDaemon",
    "SocketTransport",
    "encode_segment",
    "identity_digest",
]
