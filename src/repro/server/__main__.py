"""CLI entry point: ``python -m repro.server`` runs one site daemon.

Example — a three-daemon loopback cluster (each in its own shell)::

    python -m repro.server --site 1 --port 7101 --admin-port 7201 \\
        --peer 2=127.0.0.1:7102 --peer 3=127.0.0.1:7103 --store /tmp/site1
    python -m repro.server --site 2 --port 7102 --admin-port 7202 \\
        --peer 1=127.0.0.1:7101 --peer 3=127.0.0.1:7103 --store /tmp/site2
    python -m repro.server --site 3 --port 7103 --admin-port 7203 \\
        --peer 1=127.0.0.1:7101 --peer 2=127.0.0.1:7102 --store /tmp/site3

then talk line-JSON to an admin port::

    printf '{"op":"edit","index":0,"text":"hi"}\\n' | nc 127.0.0.1 7201

SIGTERM/SIGINT drain and checkpoint; SIGKILL is the crash the durable
store recovers from on the next start.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Dict, Tuple

from repro.core.disambiguator import SiteId
from repro.server.daemon import DaemonConfig, SiteDaemon


def parse_peer(value: str) -> Tuple[SiteId, Tuple[str, int]]:
    try:
        site_part, address = value.split("=", 1)
        host, port_part = address.rsplit(":", 1)
        return int(site_part), (host, int(port_part))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"peer must look like ID=HOST:PORT, got {value!r}"
        )


def build_config(argv) -> DaemonConfig:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve one Treedoc replica site over TCP.",
    )
    parser.add_argument("--site", type=int, required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--admin-port", type=int, default=0)
    parser.add_argument("--peer", type=parse_peer, action="append",
                        default=[], metavar="ID=HOST:PORT")
    parser.add_argument("--mode", choices=("udis", "sdis"), default="udis")
    parser.add_argument("--store", default=None,
                        help="durable store directory (volatile if unset)")
    parser.add_argument("--tombstone-gc", action="store_true")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--checkpoint-every", type=int, default=64)
    parser.add_argument("--tick-interval", type=float, default=0.05)
    parser.add_argument("--heartbeat-interval", type=float, default=0.5)
    parser.add_argument("--idle-timeout", type=float, default=5.0)
    args = parser.parse_args(argv)
    peers: Dict[SiteId, Tuple[str, int]] = dict(args.peer)
    return DaemonConfig(
        site=args.site, host=args.host, port=args.port,
        admin_port=args.admin_port, peers=peers, mode=args.mode,
        tombstone_gc=args.tombstone_gc, store_path=args.store,
        checkpoint_every=args.checkpoint_every, seed=args.seed,
        tick_interval=args.tick_interval,
        heartbeat_interval=args.heartbeat_interval,
        idle_timeout=args.idle_timeout,
    )


async def run(config: DaemonConfig) -> None:
    daemon = SiteDaemon(config)
    daemon.install_signal_handlers()
    await daemon.start()
    print(f"site {config.site} serving on {config.host}:{daemon.port} "
          f"(admin {daemon.admin_port})", flush=True)
    await daemon.wait_closed()


def main(argv=None) -> int:
    config = build_config(sys.argv[1:] if argv is None else argv)
    try:
        asyncio.run(run(config))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
