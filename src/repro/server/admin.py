"""Line-JSON admin protocol: drive and observe a daemon from outside.

The admin socket is the daemon's *local* face — the editor-session
side of the site, where the peer socket is the replication side. One
request per line, one JSON object per response::

    {"op": "edit", "index": 0, "text": "hello"}
    {"ok": true, "atoms": 5, "site": 1}

Operations: ``ping``, ``status`` (the daemon's counters),
``text`` / ``digest`` (document queries), ``edit`` / ``delete``
(local optimistic writes, refused typed while overloaded), ``sync``
(force an anti-entropy request), ``ack`` (gossip the applied clock),
``checkpoint`` and ``shutdown``.

``digest`` is the convergence oracle the multi-process tests rest on:
a SHA-256 over the document's full **(PosID, atom)** identity sequence
— not just the visible text — so two daemons agreeing on the digest
agree on every position identifier, which is the CRDT property worth
asserting (identical text under different identifiers would be a
silent future conflict). The serialization is ``repr`` of primitive
ints and atoms, deterministic across processes and hash seeds.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from typing import Dict, List, Optional, Tuple

from repro.errors import OverloadedError, ReproError
from repro.replication.site import ReplicaSite


def identity_pairs(site: ReplicaSite) -> List[Tuple[Tuple[int, ...], object]]:
    """The document's (PosID bits, atom) sequence, in order."""
    from repro.core.node import slot_posid

    slots = site.doc.tree.live_slice(0, len(site.doc))
    if slots is not None:
        return [(slot_posid(slot).bits(), slot.atom) for slot in slots]
    return [
        (site.doc.posid_at(index).bits(), atom)
        for index, atom in enumerate(site.atoms())
    ]


def identity_digest(site: ReplicaSite) -> str:
    """SHA-256 of the full PosID-to-atom binding."""
    digest = hashlib.sha256()
    for bits, atom in identity_pairs(site):
        digest.update(repr(bits).encode("utf-8"))
        digest.update(b"\x1f")
        digest.update(repr(atom).encode("utf-8"))
        digest.update(b"\x1e")
    return digest.hexdigest()


class AdminServer:
    """The daemon's line-JSON control socket."""

    def __init__(self, daemon: "SiteDaemon") -> None:
        self.daemon = daemon
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None
        self.commands_served = 0

    async def start(self, host: str, port: int) -> None:
        self._server = await asyncio.start_server(self._serve, host, port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                response = self._dispatch(line)
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
                self.commands_served += 1
                if response.get("closing"):
                    return
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _dispatch(self, line: bytes) -> Dict[str, object]:
        try:
            request = json.loads(line)
            if not isinstance(request, dict) or "op" not in request:
                raise ValueError("request must be an object with an 'op'")
        except (ValueError, UnicodeDecodeError) as exc:
            return {"ok": False, "error": str(exc), "kind": "bad-request"}
        op = request["op"]
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            return {"ok": False, "error": f"unknown op {op!r}",
                    "kind": "bad-request"}
        try:
            return handler(request)
        except OverloadedError as exc:
            # The typed refusal under overload: the client backs off.
            return {"ok": False, "error": str(exc), "kind": "overloaded"}
        except ReproError as exc:
            return {"ok": False, "error": str(exc),
                    "kind": type(exc).__name__}
        except (ValueError, TypeError, KeyError, IndexError) as exc:
            return {"ok": False, "error": str(exc), "kind": "bad-request"}

    # -- operations ------------------------------------------------------------------

    def _op_ping(self, request: Dict) -> Dict[str, object]:
        return {"ok": True, "site": self.daemon.config.site}

    def _op_status(self, request: Dict) -> Dict[str, object]:
        status = self.daemon.status()
        status["ok"] = True
        return status

    def _op_text(self, request: Dict) -> Dict[str, object]:
        return {"ok": True, "text": self.daemon.site.text(),
                "atoms": len(self.daemon.site)}

    def _op_digest(self, request: Dict) -> Dict[str, object]:
        site = self.daemon.site
        return {
            "ok": True,
            "digest": identity_digest(site),
            "atoms": len(site),
            "clock": {str(k): v for k, v in
                      sorted(site.broadcast.clock.items())},
            "inbound_depth": self.daemon._inbound.qsize(),
        }

    def _op_edit(self, request: Dict) -> Dict[str, object]:
        self.daemon.check_admission()
        index = int(request.get("index", len(self.daemon.site)))
        text = str(request["text"])
        if not 0 <= index <= len(self.daemon.site):
            raise ValueError(f"index {index} out of range")
        if text:
            self.daemon.site.insert_text(index, list(text))
        return {"ok": True, "atoms": len(self.daemon.site)}

    def _op_delete(self, request: Dict) -> Dict[str, object]:
        self.daemon.check_admission()
        index = int(request["index"])
        count = int(request.get("count", 1))
        if not 0 <= index < len(self.daemon.site):
            raise ValueError(f"index {index} out of range")
        end = min(index + count, len(self.daemon.site))
        self.daemon.site.delete_range(index, end)
        return {"ok": True, "atoms": len(self.daemon.site)}

    def _op_sync(self, request: Dict) -> Dict[str, object]:
        peer = request.get("peer")
        sent = self.daemon.site.request_sync(
            None if peer is None else int(peer)
        )
        return {"ok": True, "requested": sent}

    def _op_ack(self, request: Dict) -> Dict[str, object]:
        self.daemon.site.broadcast_ack()
        return {"ok": True}

    def _op_checkpoint(self, request: Dict) -> Dict[str, object]:
        self.daemon.site.checkpoint()
        return {"ok": True}

    def _op_shutdown(self, request: Dict) -> Dict[str, object]:
        self.daemon.request_shutdown()
        return {"ok": True, "closing": True}


class AdminClient:
    """Blocking admin-socket client (tests and the CLI use it)."""

    def __init__(self, host: str, port: int, timeout: float = 5.0) -> None:
        import socket

        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def request(self, op: str, **fields) -> Dict[str, object]:
        payload = dict(fields)
        payload["op"] = op
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("admin connection closed")
        return json.loads(line)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "AdminClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
