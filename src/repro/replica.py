"""The :class:`Replica` façade: one replica behind a small, stable API.

``Treedoc`` exposes the full machinery of the paper — trees, allocators,
disambiguators, flatten. Most callers (examples, workload replay,
benchmarks, application embeddings) need only four verbs:

- :meth:`Replica.edit` — perform one local edit (insert, delete or
  replace of a contiguous range) and get back the single
  :class:`repro.core.ops.OpBatch` to ship;
- :meth:`Replica.pending` — drain the batches minted locally since the
  last drain (the replication outbox);
- :meth:`Replica.merge` — replay a remote batch (or bare operation)
  through the deferred-index fast path;
- :meth:`Replica.snapshot` — an immutable view of the visible document
  with a content digest for convergence checks.

Keeping callers on this surface — instead of reaching into
``doc.tree`` internals — is what lets the underlying representation
keep evolving (sharding, async application, alternative backends)
without breaking them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.disambiguator import SiteId
from repro.core.ops import (
    DeleteOp,
    FlattenOp,
    InsertOp,
    OpBatch,
    content_digest,
)
from repro.core.treedoc import Treedoc
from repro.errors import PendingEditsError, ReproError, StorageError
from repro.util.text import join_atoms

#: What merge accepts: one batch, one bare operation, or an iterable of
#: either (e.g. another replica's drained outbox).
Patch = Union[OpBatch, InsertOp, DeleteOp, FlattenOp]


@dataclass(frozen=True)
class SyncReport:
    """What one :meth:`Replica.sync` catch-up cost and carried."""

    #: Visible atoms this replica now holds.
    atoms: int
    #: Bytes the state snapshot costs on the wire.
    wire_bytes: int
    #: Regions that travelled as runs (and landed as array leaves).
    run_segments: int
    #: Singleton records in the snapshot.
    op_segments: int


@dataclass(frozen=True)
class Snapshot:
    """An immutable view of one replica's visible document."""

    site: SiteId
    atoms: Tuple[object, ...]
    digest: str

    @cached_property
    def text(self) -> str:
        """The snapshot joined as a string (character atoms); computed
        once per snapshot (the atoms are immutable)."""
        return join_atoms("", self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)

    def __eq__(self, other: object) -> bool:
        """Snapshots compare by content, not by site: two converged
        replicas' snapshots are equal."""
        if isinstance(other, Snapshot):
            return self.atoms == other.atoms
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.atoms)


class Replica:
    """One replica of the shared sequence, batch-first.

    Example
    -------

        >>> from repro import Replica
        >>> a, b = Replica(site=1), Replica(site=2)
        >>> batch = a.edit(0, 0, "hello")
        >>> b.merge(batch)
        5
        >>> b.snapshot().text
        'hello'
    """

    def __init__(self, site: SiteId, mode: str = "udis",
                 balanced: bool = True,
                 store: Optional["DurableStore"] = None) -> None:
        self.doc = Treedoc(site, mode=mode, balanced=balanced)
        self._outbox: List[OpBatch] = []
        #: Batches merged from remote replicas (monitoring aid).
        self.merged_batches = 0
        #: State snapshots adopted via :meth:`sync` (monitoring aid).
        self.synced_states = 0
        #: (generation, Snapshot) — repeated snapshots of an unchanged
        #: replica (convergence polling) skip the digest recomputation.
        self._snapshot_cache: Optional[Tuple[int, Snapshot]] = None
        #: Durability (:mod:`repro.storage`): every minted or merged
        #: batch is journaled (as its core v2 frame) before the call
        #: returns, and a store with history replays it here first.
        self.store = store
        self.recovered_batches = 0
        if store is not None:
            self._recover_from_store()

    @property
    def site(self) -> SiteId:
        return self.doc.site

    # -- local editing ------------------------------------------------------------

    def edit(self, start: int, end: int,
             atoms: Sequence[object] = ()) -> OpBatch:
        """Replace the visible range ``[start, end)`` by ``atoms``.

        The one local-edit verb: ``edit(i, i, "x")`` inserts,
        ``edit(i, j)`` deletes, ``edit(i, j, "x")`` replaces. A string
        is treated as a sequence of character atoms. Returns the single
        batch to ship; it is also queued in :meth:`pending`.
        """
        atom_list = list(atoms)
        batch = self.doc.replace_range(start, end, atom_list)
        if batch.ops:
            # Stamp the digest before the batch can leave this replica,
            # so a receiver's verify() checks transport integrity.
            self._outbox.append(batch.seal())
            if self.store is not None:
                # Journal at mint time: once the caller holds the
                # batch, a crash must be able to replay it (and restore
                # it to the outbox — it has not shipped yet).
                from repro.core.encoding import encode_batch
                from repro.storage.wal import RECORD_LOCAL

                self.store.append(RECORD_LOCAL, encode_batch(batch)[0])
                self._maybe_checkpoint()
        return batch

    def insert(self, index: int, atoms: Sequence[object]) -> OpBatch:
        """Insert ``atoms`` at ``index`` (sugar over :meth:`edit`)."""
        return self.edit(index, index, atoms)

    def delete(self, start: int, end: int) -> OpBatch:
        """Delete ``[start, end)`` (sugar over :meth:`edit`)."""
        return self.edit(start, end)

    # -- replication --------------------------------------------------------------

    def pending(self, clear: bool = True) -> List[OpBatch]:
        """Batches minted locally since the last drain, in order.

        With ``clear`` (the default) the outbox empties: ship the
        returned batches, in order, to every other replica.
        """
        batches = list(self._outbox)
        if clear:
            self._outbox.clear()
            if batches and self.store is not None:
                # The drain marker: recovery must not put these back in
                # the outbox (the caller took responsibility for them).
                from repro.storage.wal import RECORD_DRAIN

                self.store.append(RECORD_DRAIN)
        return batches

    def merge(self, patch: Union[Patch, Iterable[Patch]],
              verify: bool = True) -> int:
        """Replay remote work; returns the number of operations applied.

        Accepts one batch, one bare operation, or an iterable of either
        (a peer's drained outbox). Batches must arrive in an order
        compatible with happened-before — per-origin outbox order
        satisfies this for two-replica exchanges; multi-replica overlay
        delivery belongs to :mod:`repro.replication`. With ``verify``
        (the default) each batch's content digest is checked first.
        """
        if isinstance(patch, OpBatch):
            if verify and not patch.verify():
                raise ReproError(
                    f"batch digest mismatch from site {patch.origin}: "
                    "corrupted in transport?"
                )
            if self.store is not None:
                from repro.core.encoding import encode_batch
                from repro.storage.wal import RECORD_REMOTE

                # Log before apply: the merge is acknowledged (returns)
                # only once a crash could replay it.
                self.store.append(RECORD_REMOTE, encode_batch(patch)[0])
            self.doc.apply_batch(patch)
            self.merged_batches += 1
            self._maybe_checkpoint()
            return len(patch.ops)
        if isinstance(patch, (InsertOp, DeleteOp, FlattenOp)):
            if self.store is not None:
                from repro.core.encoding import encode_operation
                from repro.storage.wal import RECORD_REMOTE

                self.store.append(RECORD_REMOTE, encode_operation(patch)[0])
            self.doc.apply(patch)
            self._maybe_checkpoint()
            return 1
        if isinstance(patch, (str, bytes)):
            raise TypeError(
                "merge takes batches or operations, not text; "
                "use edit() for local changes"
            )
        applied = 0
        for item in patch:
            applied += self.merge(item, verify=verify)
        return applied

    def sync(self, source: "Replica") -> SyncReport:
        """Catch this replica up to ``source`` by state transfer.

        Instead of merging ``source``'s batches one by one, the source
        document arrives as one v2 state frame: quiescent regions ship
        as runs and load directly into collapsed array storage, so a
        cold replica adopting a large settled document pays a handful
        of segments rather than per-atom replay. Afterwards this
        replica is identifier-identical to the source (same posids,
        not just the same text). The snapshot travels as real wire
        bytes — the source's state is encoded into one
        :class:`repro.replication.wire.SyncResponse` frame and decoded
        back before loading — so ``wire_bytes`` in the report is the
        measured frame length, CRC and framing included.

        Only valid as a *catch-up*: this replica must have no pending
        local batches (:meth:`pending` not yet shipped) — those would
        be silently lost, so :class:`repro.errors.SyncError` is raised
        instead. Merges this replica has already applied are fine when
        the source has applied them too (the usual anti-entropy
        deployment syncs from a strictly-ahead peer; the site layer's
        :meth:`repro.replication.site.ReplicaSite.sync_from` enforces
        that with vector clocks).
        """
        if self._outbox:
            raise PendingEditsError(
                f"replica {self.site}: refusing state sync — "
                f"{len(self._outbox)} locally minted batches are still "
                "pending in this replica's outbox and adopting a snapshot "
                "would silently lose them; ship them (pending()) first"
            )
        if source._outbox:
            # The snapshot would embed edits the source has not shipped
            # yet; when the source later drains its outbox normally,
            # replaying those batches against a state that already
            # contains them can fault (e.g. an insert whose identifier
            # the snapshot carries as a tombstone).
            raise PendingEditsError(
                f"replica {source.site}: refusing state sync — the source "
                f"has {len(source._outbox)} unshipped batches; its snapshot "
                "would embed them and their later normal shipment would "
                "replay against a state that already contains them; drain "
                "source.pending() first"
            )
        # The facade has no vector clocks (its outbox checks above are
        # the safety argument), so the frame carries an empty frontier;
        # everything else is exactly the site layer's wire path.
        from repro.replication.clock import VectorClock
        from repro.replication.wire import SyncResponse, decode_wire

        wire = SyncResponse(
            source.site, VectorClock(), source.doc.capture_state()
        ).to_wire()
        response = decode_wire(wire)
        atoms = self.doc.load_state(response.state)
        self._snapshot_cache = None
        self.synced_states += 1
        if self.store is not None:
            # No WAL record describes a wholesale state adoption;
            # persist it as an immediate checkpoint instead.
            self.checkpoint()
        return SyncReport(
            atoms=atoms,
            wire_bytes=len(wire),
            run_segments=response.state.run_segments,
            op_segments=response.state.op_segments,
        )

    # -- durability (repro.storage) ------------------------------------------------

    def checkpoint(self) -> None:
        """Write a durable checkpoint now (the store's cadence normally
        drives this). The checkpoint frame is the same v2 state frame
        :meth:`sync` puts on the wire; batches still waiting in the
        outbox are re-logged after the rotation, so recovery can
        restore them as *pending* without re-applying them (the
        checkpointed state already contains their edits)."""
        if self.store is None:
            raise StorageError(f"replica {self.site} has no durable store")
        from repro.core.encoding import encode_batch
        from repro.replication.clock import VectorClock
        from repro.replication.wire import SyncResponse
        from repro.storage.wal import RECORD_OUTBOX

        frame = SyncResponse(
            self.site, VectorClock(), self.doc.capture_state()
        ).to_wire()
        self.store.write_checkpoint(frame, meta={
            "site": self.site,
            "mode": self.doc.mode,
            "op_seq": self.doc.op_seq,
            "dis_counter": self.doc.dis_counter,
        })
        for batch in self._outbox:
            self.store.append(RECORD_OUTBOX, encode_batch(batch)[0])

    def _maybe_checkpoint(self) -> None:
        if self.store is not None and self.store.checkpoint_due():
            self.checkpoint()

    def _recover_from_store(self) -> None:
        """Startup recovery: newest valid checkpoint + WAL tail replay.

        ``LOCAL`` tail records re-apply *and* re-enter the outbox (they
        were minted but — absent a later ``DRAIN`` marker — never
        drained); ``REMOTE`` records re-apply; ``OUTBOX`` records
        re-enter the outbox without re-applying (the checkpoint state
        already contains them). Mint counters restore from the META
        bookkeeping plus the replayed tail, so post-restart batches
        carry fresh seq ranges and UDIS identifiers.
        """
        from repro.core.disambiguator import Udis
        from repro.core.encoding import decode_frame
        from repro.errors import DecodeError
        from repro.replication.wire import SyncResponse, decode_wire
        from repro.storage.wal import (
            RECORD_DRAIN,
            RECORD_LOCAL,
            RECORD_OUTBOX,
            RECORD_REMOTE,
        )

        store = self.store
        recovered = store.recover()
        store.attach(self.site, self.doc.mode)
        if recovered.checkpoint is not None:
            frame = decode_wire(recovered.checkpoint)
            if not isinstance(frame, SyncResponse):
                raise StorageError(
                    f"replica {self.site}: checkpoint does not hold a "
                    "state frame"
                )
            self.doc.load_state(frame.state)
        op_seq = int(recovered.meta.get("op_seq", 0) or 0)
        self.doc.restore_dis_counter(
            int(recovered.meta.get("dis_counter", 0) or 0)
        )
        for index, record in enumerate(recovered.records):
            try:
                if record.kind == RECORD_DRAIN:
                    self._outbox.clear()
                    continue
                if record.kind not in (RECORD_LOCAL, RECORD_REMOTE,
                                       RECORD_OUTBOX):
                    continue
                event = decode_frame(record.payload)
            except DecodeError:
                # Intact record CRC but undecodable content: treat like
                # any torn tail — truncate to the last good record.
                recovered.truncate_from(index)
                break
            if record.kind == RECORD_REMOTE:
                if isinstance(event, OpBatch):
                    self.doc.apply_batch(event)
                    self.merged_batches += 1
                else:
                    self.doc.apply(event)
            else:
                # LOCAL or OUTBOX: back into the outbox; only LOCAL
                # (minted after the checkpoint) also re-applies.
                if record.kind == RECORD_LOCAL:
                    self.doc.apply_batch(event)
                    op_seq = max(op_seq, event.seq_end)
                    for op in event.ops:
                        posid = (op.posid if hasattr(op, "posid")
                                 else op.path)
                        for element in posid.elements:
                            dis = element.dis
                            if (isinstance(dis, Udis)
                                    and dis.site == self.site):
                                self.doc.restore_dis_counter(
                                    dis.counter + 1
                                )
                self._outbox.append(event)
            self.recovered_batches += 1
        self.doc.restore_op_seq(op_seq)
        self._snapshot_cache = None

    # -- queries ------------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """An immutable, digest-stamped view of the visible document.

        Cached against the document generation: polling convergence on
        a quiescent replica is O(1) instead of a walk plus a digest.
        """
        cached = self._snapshot_cache
        generation = self.doc.generation
        if cached is not None and cached[0] == generation:
            return cached[1]
        atoms = tuple(self.doc.atoms())
        snapshot = Snapshot(self.site, atoms, content_digest(atoms))
        self._snapshot_cache = (generation, snapshot)
        return snapshot

    def text(self, separator: str = "") -> str:
        """The visible document as a string."""
        return self.doc.text(separator)

    def __len__(self) -> int:
        return len(self.doc)

    def __repr__(self) -> str:
        return (
            f"<Replica site={self.site} atoms={len(self)} "
            f"outbox={len(self._outbox)}>"
        )
