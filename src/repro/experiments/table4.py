"""Table 4: SDIS vs UDIS (LaTeX documents).

For the same cadence × balancing grid as Table 3, compare the two
disambiguator designs on identifier overhead per visible atom and
average PosID size (bits), averaged over the LaTeX documents. The
paper's finding to reproduce: UDIS costs more per node (the 4-byte
counter) but less in total, because discarding deleted leaves eliminates
tombstones early — so UDIS wins in the common case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.common import DEFAULT_SEED, run_document
from repro.metrics.report import Table
from repro.workloads.corpus import LATEX_DOCUMENTS

CADENCES: List[Optional[int]] = [None, 8, 2]
MODES = ("sdis", "udis")


@dataclass
class Cell:
    """One (cadence, balancing, mode) measurement."""

    overhead_per_atom_bits: float
    avg_posid_bits: float


@dataclass
class Row:
    """One grid row: cadence × {no balancing, balancing} × {SDIS, UDIS}."""

    flatten: str
    cells: dict  # (balanced: bool, mode: str) -> Cell


def _average_cell(mode: str, balanced: bool, cadence: Optional[int],
                  seed: int) -> Cell:
    overheads, sizes = [], []
    for spec in LATEX_DOCUMENTS:
        result = run_document(
            spec, mode=mode, balanced=balanced,
            flatten_every=cadence, seed=seed, with_disk=False,
        )
        overheads.append(result.stats.overhead_per_atom_bits)
        sizes.append(result.stats.avg_posid_bits)
    n = len(LATEX_DOCUMENTS)
    return Cell(sum(overheads) / n, sum(sizes) / n)


def run(seed: int = DEFAULT_SEED) -> List[Row]:
    rows = []
    for cadence in CADENCES:
        label = "no-flatten" if cadence is None else f"flatten-{cadence}"
        cells = {}
        for balanced in (False, True):
            for mode in MODES:
                cells[(balanced, mode)] = _average_cell(
                    mode, balanced, cadence, seed
                )
        rows.append(Row(label, cells))
    return rows


def render(rows: List[Row]) -> str:
    table = Table(
        "Table 4. SDIS vs UDIS, bits (LaTeX documents)",
        (
            "", "metric",
            "SDIS (unbal)", "UDIS (unbal)",
            "SDIS (bal)", "UDIS (bal)",
        ),
    )
    for row in rows:
        table.add_row(
            row.flatten, "overhead/atom",
            row.cells[(False, "sdis")].overhead_per_atom_bits,
            row.cells[(False, "udis")].overhead_per_atom_bits,
            row.cells[(True, "sdis")].overhead_per_atom_bits,
            row.cells[(True, "udis")].overhead_per_atom_bits,
        )
        table.add_row(
            "", "avg PosID size",
            row.cells[(False, "sdis")].avg_posid_bits,
            row.cells[(False, "udis")].avg_posid_bits,
            row.cells[(True, "sdis")].avg_posid_bits,
            row.cells[(True, "udis")].avg_posid_bits,
        )
    return table.render()


def main(seed: int = DEFAULT_SEED) -> str:
    output = render(run(seed))
    print(output)
    return output
