"""Table 1: per-document measurements under flatten cadences.

For every document and every Flatten setting the paper evaluates
(no flattening, or flattening a cold area every 1/2 revisions for wiki
pages and 2/8 for LaTeX files), replay the history under SDIS and report
the final state: max/avg PosID bits, node count, node memory, memory
overhead relative to document size, % non-tombstone nodes, and on-disk
overhead (absolute and relative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.common import (
    DEFAULT_SEED,
    DocumentRun,
    flatten_label,
    run_document,
)
from repro.metrics.report import Table
from repro.workloads.corpus import PAPER_DOCUMENTS, DocumentSpec


@dataclass
class Row:
    """One Table 1 row (document × flatten/collapse setting)."""

    document: str
    flatten: str
    max_posid_bits: int
    avg_posid_bits: float
    nodes: int
    node_bytes: int
    mixed_bytes: int
    array_leaves: int
    mem_overhead_ratio: float
    non_tombstone_pct: float
    disk_overhead_bytes: int
    disk_overhead_pct: float
    replay_seconds: float


def _row(run: DocumentRun) -> Row:
    stats = run.stats
    return Row(
        document=run.spec.name,
        flatten=flatten_label(run.flatten_every, run.collapse_every),
        max_posid_bits=stats.max_posid_bits,
        avg_posid_bits=stats.avg_posid_bits,
        nodes=stats.nodes,
        node_bytes=stats.memory_overhead_bytes,
        mixed_bytes=stats.mixed_memory_overhead_bytes,
        array_leaves=stats.array_leaves,
        mem_overhead_ratio=stats.memory_overhead_ratio,
        non_tombstone_pct=100.0 * stats.non_tombstone_fraction,
        disk_overhead_bytes=stats.disk_overhead_bytes,
        disk_overhead_pct=100.0 * stats.disk_overhead_ratio,
        replay_seconds=run.replay.elapsed_seconds,
    )


def run(seed: int = DEFAULT_SEED,
        documents: Optional[List[DocumentSpec]] = None) -> List[Row]:
    """All Table 1 rows: per document, {no flatten} ∪ cadences, plus a
    live-mixed-storage row (the tightest cadence with the section 4.2
    collapse pass running during replay) — the mixed-form overhead
    reported alongside the pure-tree numbers."""
    rows: List[Row] = []
    for spec in documents or PAPER_DOCUMENTS:
        cadences: List[Optional[int]] = [None, *spec.flatten_cadences]
        for cadence in cadences:
            run_result = run_document(
                spec, mode="sdis", balanced=True,
                flatten_every=cadence, seed=seed,
            )
            rows.append(_row(run_result))
        if spec.flatten_cadences:
            mixed = run_document(
                spec, mode="sdis", balanced=True,
                flatten_every=spec.flatten_cadences[0], seed=seed,
                collapse_every=max(2, spec.flatten_cadences[0]),
            )
            rows.append(_row(mixed))
    return rows


def render(rows: List[Row]) -> str:
    """The paper-style table, with the mixed-form storage columns."""
    table = Table(
        "Table 1. Measurements (SDIS, balanced allocation; "
        "'+ar' = live mixed storage)",
        (
            "Document", "Flatten", "PosID max(b)", "PosID avg(b)",
            "Nodes", "Node bytes", "Mixed bytes", "Leaves",
            "Mem ovhd x", "% non-Tomb",
            "Disk ovhd (B)", "Disk % doc", "Replay (s)",
        ),
    )
    for row in rows:
        table.add_row(
            row.document,
            row.flatten,
            row.max_posid_bits,
            row.avg_posid_bits,
            row.nodes,
            row.node_bytes,
            row.mixed_bytes,
            row.array_leaves,
            row.mem_overhead_ratio,
            row.non_tombstone_pct,
            row.disk_overhead_bytes,
            row.disk_overhead_pct,
            row.replay_seconds,
        )
    return table.render()


def main(seed: int = DEFAULT_SEED) -> str:
    output = render(run(seed))
    print(output)
    return output
