"""Figure 6: node counts over the lifetime of acf.tex.

Replay acf.tex (SDIS, flatten every 2 revisions) sampling after each
revision the total number of nodes and the number of non-tombstone
nodes. The paper's shape: both curves climb as edits accumulate, and
flattening appears as drastic drops of the total curve towards the
non-tombstone curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.node import EMPTY, LIVE
from repro.experiments.common import DEFAULT_SEED, run_document
from repro.workloads.corpus import document_spec


@dataclass
class Sample:
    """One per-revision sample."""

    revision: int
    total_nodes: int
    non_tombstone_nodes: int


def _count_nodes(doc) -> Sample:
    total = 0
    live = 0
    for node in doc.tree.root.iter_nodes():
        if node is doc.tree.root and node.plain_state == EMPTY and not node.minis:
            continue
        total += 1 + max(0, len(node.minis) - 1)
        if node.plain_state == LIVE:
            live += 1
        live += sum(1 for m in node.minis if m.state == LIVE)
    return Sample(0, total, live)


def run(seed: int = DEFAULT_SEED, flatten_every: int = 2,
        document: str = "acf.tex") -> List[Sample]:
    samples: List[Sample] = []

    def probe(revision: int, doc) -> None:
        sample = _count_nodes(doc)
        samples.append(Sample(revision, sample.total_nodes,
                              sample.non_tombstone_nodes))

    run_document(
        document_spec(document), mode="sdis", balanced=True,
        flatten_every=flatten_every, seed=seed, with_disk=False,
        probe=probe,
    )
    return samples


def render(samples: List[Sample], width: int = 68, height: int = 16) -> str:
    """ASCII rendering of the two curves ('#' total, 'o' non-tombstone)."""
    if not samples:
        return "no samples"
    peak = max(s.total_nodes for s in samples) or 1
    grid = [[" "] * width for _ in range(height)]
    last = samples[-1].revision or 1
    for sample in samples:
        x = min(width - 1, int(sample.revision * (width - 1) / last))
        y_total = min(height - 1, int(sample.total_nodes * (height - 1) / peak))
        y_live = min(height - 1, int(
            sample.non_tombstone_nodes * (height - 1) / peak))
        grid[height - 1 - y_total][x] = "#"
        if grid[height - 1 - y_live][x] == " ":
            grid[height - 1 - y_live][x] = "o"
    lines = [
        "Figure 6. Nodes over revisions (acf.tex, SDIS, flatten-2)",
        f"peak={peak} nodes; '#' = total, 'o' = non-tombstone",
    ]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" revision 0 .. {samples[-1].revision}")
    return "\n".join(lines)


def main(seed: int = DEFAULT_SEED) -> str:
    samples = run(seed)
    output = render(samples)
    drops = sum(
        1
        for i in range(1, len(samples))
        if samples[i].total_nodes < samples[i - 1].total_nodes * 0.9
    )
    output += f"\n flatten events visible as >10% drops: {drops}"
    print(output)
    return output
