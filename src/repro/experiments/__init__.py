"""Experiment drivers: one module per table/figure of the evaluation.

Each driver exposes ``run(seed=...)`` returning structured results and a
``render(results)`` producing the paper-style text table; the benchmark
harness under ``benchmarks/`` and the CLI (``python -m
repro.experiments``) both call these, so the numbers in test logs,
benchmark output and EXPERIMENTS.md come from one code path.
"""

from repro.experiments import (  # noqa: F401
    table1,
    table2,
    table3,
    table4,
    table5,
    figure6,
)

__all__ = ["table1", "table2", "table3", "table4", "table5", "figure6"]
