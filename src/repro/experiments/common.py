"""Shared plumbing for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.treedoc import Treedoc
from repro.metrics.overhead import TreeStats, measure_network_sync, measure_tree
from repro.workloads.corpus import DocumentSpec
from repro.workloads.editing import generate_history
from repro.workloads.replay import ReplayResult, replay_history
from repro.workloads.revision import History

#: Default seed for every experiment (override per run for sensitivity).
DEFAULT_SEED = 2009

_history_cache: Dict[Tuple[str, int], History] = {}


def history_for(spec: DocumentSpec, seed: int = DEFAULT_SEED) -> History:
    """The synthetic history of a document (cached per seed: several
    tables replay the same corpus under different configurations)."""
    key = (spec.name, seed)
    if key not in _history_cache:
        _history_cache[key] = generate_history(spec, seed)
    return _history_cache[key]


@dataclass
class DocumentRun:
    """One replay of one document under one configuration."""

    spec: DocumentSpec
    mode: str
    balanced: bool
    flatten_every: Optional[int]
    replay: ReplayResult
    stats: TreeStats
    collapse_every: Optional[int] = None


def run_document(
    spec: DocumentSpec,
    mode: str = "sdis",
    balanced: bool = True,
    flatten_every: Optional[int] = None,
    seed: int = DEFAULT_SEED,
    with_disk: bool = True,
    probe=None,
    collapse_every: Optional[int] = None,
    with_sync: bool = False,
) -> DocumentRun:
    """Replay one document and measure its final state.

    ``collapse_every=k`` enables live mixed storage during the replay
    (section 4.2): every k revisions, cold canonical regions collapse
    into array leaves, and the final measurement reports the mixed-form
    overhead alongside the pure-tree one. ``with_sync`` measures the
    anti-entropy cost of the final state for the Table 3 sync columns:
    the per-op replay estimate, plus the **measured** wire bytes of one
    real SyncRequest/SyncResponse exchange over a simulated link
    (read from the network's byte counters).
    """
    history = history_for(spec, seed)
    doc = Treedoc(site=1, mode=mode, balanced=balanced,
                  collapse_every=collapse_every)
    replay = replay_history(
        doc, history, flatten_every=flatten_every, probe=probe,
        use_runs=balanced,
    )
    stats = measure_tree(doc.tree, with_disk=with_disk, with_sync=with_sync)
    if with_sync:
        (stats.sync_wire_bytes,
         stats.sync_request_bytes) = measure_network_sync(doc)
    return DocumentRun(spec, mode, balanced, flatten_every, replay, stats,
                       collapse_every=collapse_every)


def flatten_label(flatten_every: Optional[int],
                  collapse_every: Optional[int] = None) -> str:
    """Human label for a flatten cadence ('no' or the cadence), with a
    '+ar' suffix when live mixed storage (array leaves) was on."""
    label = "no" if flatten_every is None else str(flatten_every)
    if collapse_every is not None:
        label += "+ar"
    return label
