"""Table 5: Treedoc vs Logoot — total PosID size ratio.

Replay every document into Logoot and into Treedoc/UDIS, both without
flattening, and report the ratio of total position-identifier sizes
(Logoot / Treedoc). The paper measures ratios of 1.8-3.9 in Treedoc's
favour with 10-byte Logoot components matching UDIS disambiguators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.baselines.logoot import LogootDoc
from repro.experiments.common import DEFAULT_SEED, history_for, run_document
from repro.metrics.report import Table
from repro.workloads.corpus import PAPER_DOCUMENTS
from repro.workloads.replay import replay_into


@dataclass
class Row:
    """One document's comparison."""

    document: str
    logoot_total_bits: int
    treedoc_total_bits: int

    @property
    def ratio(self) -> float:
        if self.treedoc_total_bits == 0:
            return 0.0
        return self.logoot_total_bits / self.treedoc_total_bits


def run(seed: int = DEFAULT_SEED) -> List[Row]:
    rows = []
    for spec in PAPER_DOCUMENTS:
        history = history_for(spec, seed)
        logoot = LogootDoc(site=1, seed=seed)
        replay_into(logoot, history)
        treedoc_run = run_document(
            spec, mode="udis", balanced=True, flatten_every=None,
            seed=seed, with_disk=False,
        )
        rows.append(
            Row(
                spec.name,
                logoot.total_id_bits(),
                treedoc_run.stats.total_posid_bits,
            )
        )
    return rows


def render(rows: List[Row]) -> str:
    table = Table(
        "Table 5. Treedoc vs Logoot: total PosID sizes (no flattening)",
        ("Document", "Logoot (bits)", "Treedoc/UDIS (bits)",
         "ratio (Logoot/Treedoc)"),
    )
    for row in rows:
        table.add_row(
            row.document, row.logoot_total_bits,
            row.treedoc_total_bits, row.ratio,
        )
    return table.render()


def main(seed: int = DEFAULT_SEED) -> str:
    output = render(run(seed))
    print(output)
    return output
