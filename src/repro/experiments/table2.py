"""Table 2: summary of documents studied.

Average / least-active / most-active revision counts and initial/final
sizes in atoms over the corpus, as generated (the generated statistics
are pinned to the published ones, so this table doubles as a check that
the synthetic corpora match the paper's Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.common import DEFAULT_SEED, history_for
from repro.metrics.report import Table
from repro.workloads.corpus import PAPER_DOCUMENTS


@dataclass
class Row:
    """One summary row."""

    label: str
    revisions: float
    initial_atoms: float
    final_atoms: float


def run(seed: int = DEFAULT_SEED) -> List[Row]:
    histories = [history_for(spec, seed) for spec in PAPER_DOCUMENTS]
    triples = [
        (len(h), len(h.initial), len(h.final)) for h in histories
    ]
    by_activity = sorted(triples)
    count = len(triples)
    average = tuple(sum(t[i] for t in triples) / count for i in range(3))
    return [
        Row("average", *average),
        Row("less active", *by_activity[0]),
        Row("most active", *by_activity[-1]),
    ]


def render(rows: List[Row]) -> str:
    table = Table(
        "Table 2. Summary of documents studied",
        ("", "Revisions", "Initial atoms", "Final atoms"),
    )
    for row in rows:
        table.add_row(row.label, row.revisions, row.initial_atoms,
                      row.final_atoms)
    return table.render()


def main(seed: int = DEFAULT_SEED) -> str:
    output = render(run(seed))
    print(output)
    return output
