"""CLI: regenerate every table and figure of the evaluation.

Usage::

    python -m repro.experiments            # everything
    python -m repro.experiments table1 figure6
    python -m repro.experiments --seed 7 table5
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import figure6, table1, table2, table3, table4, table5
from repro.experiments.common import DEFAULT_SEED

DRIVERS = {
    "table1": table1.main,
    "table2": table2.main,
    "table3": table3.main,
    "table4": table4.main,
    "table5": table5.main,
    "figure6": figure6.main,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the Treedoc paper's tables and figures.",
    )
    parser.add_argument("targets", nargs="*", choices=[*DRIVERS, []],
                        help="which experiments to run (default: all)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="corpus seed (default: %(default)s)")
    args = parser.parse_args(argv)
    targets = args.targets or list(DRIVERS)
    for name in targets:
        started = time.perf_counter()
        DRIVERS[name](seed=args.seed)
        print(f"[{name}: {time.perf_counter() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
