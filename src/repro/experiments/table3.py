"""Table 3: fraction of tombstones (LaTeX documents).

The {no-flatten, flatten-8, flatten-2} × {no balancing, balancing}
grid, averaged over the three LaTeX documents, under SDIS. The paper's
findings to reproduce in shape: flattening garbage-collects tombstones,
aggressiveness pays (flatten-2 ≪ flatten-8 ≪ no-flatten), and balancing
augments the effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.common import DEFAULT_SEED, run_document
from repro.metrics.report import Table
from repro.workloads.corpus import LATEX_DOCUMENTS

#: The grid's flatten cadences, paper order.
CADENCES: List[Optional[int]] = [None, 8, 2]


@dataclass
class Row:
    """One grid row: a flatten cadence, both balancing settings."""

    flatten: str
    tombstone_pct_unbalanced: float
    tombstone_pct_balanced: float


def _average_tombstone_pct(balanced: bool, cadence: Optional[int],
                           seed: int) -> float:
    fractions = []
    for spec in LATEX_DOCUMENTS:
        result = run_document(
            spec, mode="sdis", balanced=balanced,
            flatten_every=cadence, seed=seed, with_disk=False,
        )
        fractions.append(result.stats.tombstone_fraction)
    return 100.0 * sum(fractions) / len(fractions)


def run(seed: int = DEFAULT_SEED) -> List[Row]:
    rows = []
    for cadence in CADENCES:
        label = "no-flatten" if cadence is None else f"flatten-{cadence}"
        rows.append(
            Row(
                label,
                _average_tombstone_pct(False, cadence, seed),
                _average_tombstone_pct(True, cadence, seed),
            )
        )
    return rows


def render(rows: List[Row]) -> str:
    table = Table(
        "Table 3. Fraction of tombstones, % (LaTeX documents, SDIS)",
        ("", "no balancing", "balancing"),
    )
    for row in rows:
        table.add_row(row.flatten, row.tombstone_pct_unbalanced,
                      row.tombstone_pct_balanced)
    return table.render()


def main(seed: int = DEFAULT_SEED) -> str:
    output = render(run(seed))
    print(output)
    return output
