"""Table 3: fraction of tombstones and anti-entropy sync cost.

The {no-flatten, flatten-8, flatten-2} × {no balancing, balancing}
grid, averaged over the three LaTeX documents, under SDIS. The paper's
findings to reproduce in shape: flattening garbage-collects tombstones,
aggressiveness pays (flatten-2 ≪ flatten-8 ≪ no-flatten), and balancing
augments the effect.

The two sync columns extend the table with the wire-format-v2
consequence of the same mechanism: flattening canonicalizes regions,
canonical regions ship as runs, so the cost of catching up a cold
replica shrinks with flatten aggressiveness. The "sync wire KiB"
column is **measured**, not estimated: each document's final state is
served through one real SyncRequest/SyncResponse exchange over a
simulated link and the number is read from the network's per-link byte
counters (clock varints, frame headers and CRC included). The per-op
column stays the analytic v1-replay lower bound it is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.common import DEFAULT_SEED, run_document
from repro.metrics.report import Table
from repro.workloads.corpus import LATEX_DOCUMENTS

#: The grid's flatten cadences, paper order.
CADENCES: List[Optional[int]] = [None, 8, 2]


@dataclass
class Row:
    """One grid row: a flatten cadence, both balancing settings, plus
    the balanced run's cold-sync wire cost (measured anti-entropy
    exchange vs analytic per-op replay)."""

    flatten: str
    tombstone_pct_unbalanced: float
    tombstone_pct_balanced: float
    sync_wire_kib: float = 0.0
    sync_per_op_kib: float = 0.0

    @property
    def sync_compression(self) -> float:
        """Per-op replay bytes over measured wire bytes (bigger =
        better)."""
        if self.sync_wire_kib == 0:
            return 1.0
        return self.sync_per_op_kib / self.sync_wire_kib


def _measure(balanced: bool, cadence: Optional[int], seed: int,
             with_sync: bool):
    """``(avg tombstone %, avg measured wire KiB, avg per-op KiB)``."""
    fractions = []
    wire_bytes = []
    per_op_bytes = []
    for spec in LATEX_DOCUMENTS:
        result = run_document(
            spec, mode="sdis", balanced=balanced,
            flatten_every=cadence, seed=seed, with_disk=False,
            with_sync=with_sync,
        )
        fractions.append(result.stats.tombstone_fraction)
        wire_bytes.append(result.stats.sync_wire_bytes)
        per_op_bytes.append(result.stats.sync_per_op_bytes)
    count = len(LATEX_DOCUMENTS)
    return (
        100.0 * sum(fractions) / count,
        sum(wire_bytes) / count / 1024.0,
        sum(per_op_bytes) / count / 1024.0,
    )


def run(seed: int = DEFAULT_SEED) -> List[Row]:
    rows = []
    for cadence in CADENCES:
        label = "no-flatten" if cadence is None else f"flatten-{cadence}"
        unbalanced_pct, _, _ = _measure(False, cadence, seed, with_sync=False)
        balanced_pct, wire_kib, per_op_kib = _measure(
            True, cadence, seed, with_sync=True
        )
        rows.append(
            Row(label, unbalanced_pct, balanced_pct, wire_kib, per_op_kib)
        )
    return rows


def render(rows: List[Row]) -> str:
    table = Table(
        "Table 3. Tombstones (%) and cold-sync wire cost "
        "(LaTeX documents, SDIS; wire column measured on the network)",
        ("", "no balancing", "balancing",
         "sync wire KiB", "per-op KiB", "sync x"),
    )
    for row in rows:
        table.add_row(row.flatten, row.tombstone_pct_unbalanced,
                      row.tombstone_pct_balanced, row.sync_wire_kib,
                      row.sync_per_op_kib, row.sync_compression)
    return table.render()


def main(seed: int = DEFAULT_SEED) -> str:
    output = render(run(seed))
    print(output)
    return output
