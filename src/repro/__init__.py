"""Treedoc: a Commutative Replicated Data Type for cooperative editing.

Reproduction of Preguiça, Marquès, Shapiro & Letia (ICDCS 2009). The
package provides:

- :mod:`repro.core` — the Treedoc CRDT (paths, disambiguators, the
  extended binary tree, allocation, explode/flatten, encodings);
- :mod:`repro.replication` — causal broadcast over a simulated network,
  replica sites, and the commitment protocol for distributed flatten;
- :mod:`repro.baselines` — Logoot, WOOT and RGA comparison CRDTs;
- :mod:`repro.workloads` — synthetic edit-history corpora and replay;
- :mod:`repro.metrics` — the overhead measurements of the evaluation;
- :mod:`repro.experiments` — drivers regenerating every table and figure.
"""

from repro.core import (
    DeleteOp,
    Disambiguator,
    FlattenOp,
    InsertOp,
    Operation,
    PathElement,
    PosID,
    ROOT,
    Sdis,
    SiteId,
    Treedoc,
    Udis,
)

__version__ = "1.0.0"

__all__ = [
    "Treedoc",
    "PosID",
    "PathElement",
    "ROOT",
    "Disambiguator",
    "Udis",
    "Sdis",
    "SiteId",
    "InsertOp",
    "DeleteOp",
    "FlattenOp",
    "Operation",
    "__version__",
]
