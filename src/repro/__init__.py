"""Treedoc: a Commutative Replicated Data Type for cooperative editing.

Reproduction of Preguiça, Marquès, Shapiro & Letia (ICDCS 2009), grown
into a batch-first replicated-sequence stack. The stable entry points:

- :class:`repro.replica.Replica` — one replica behind the small façade
  most callers need: ``edit()`` (one local edit, one batch),
  ``pending()`` (drain the outbox), ``merge()`` (replay remote
  batches), ``snapshot()`` (digest-stamped view);
- :class:`repro.core.ops.OpBatch` — the wire unit of the whole stack:
  an ordered, versioned group of operations with origin, sequence range
  and content digest;
- :class:`repro.core.treedoc.Treedoc` — the full document replica for
  callers that need flatten, allocation modes, or the tree itself.

Subpackages:

- :mod:`repro.core` — the Treedoc CRDT (paths, disambiguators, the
  extended binary tree, allocation, explode/flatten, encodings);
- :mod:`repro.replication` — causal broadcast over a simulated network
  (one envelope per batch), replica sites, and the commitment protocol
  for distributed flatten;
- :mod:`repro.storage` — durable sites: a write-ahead log of the
  existing wire frames, checkpoints through the state-transfer frame,
  and crash recovery (checkpoint + WAL tail replay);
- :mod:`repro.baselines` — Logoot, WOOT and RGA comparison CRDTs, all
  speaking the same batch contract;
- :mod:`repro.editor` — editor buffers and multi-user sessions;
- :mod:`repro.workloads` — synthetic edit-history corpora and replay;
- :mod:`repro.metrics` — the overhead measurements of the evaluation;
- :mod:`repro.experiments` — drivers regenerating every table and figure.
"""

from repro.core import (
    DeleteOp,
    Disambiguator,
    FlattenOp,
    InsertOp,
    OpBatch,
    Operation,
    PathElement,
    PosID,
    ROOT,
    Sdis,
    SiteId,
    Treedoc,
    Udis,
    batch_digest,
)
from repro.replica import Replica, Snapshot, SyncReport
from repro.storage import DurableStore

__version__ = "1.2.0"

__all__ = [
    "Replica",
    "Snapshot",
    "SyncReport",
    "DurableStore",
    "Treedoc",
    "OpBatch",
    "batch_digest",
    "PosID",
    "PathElement",
    "ROOT",
    "Disambiguator",
    "Udis",
    "Sdis",
    "SiteId",
    "InsertOp",
    "DeleteOp",
    "FlattenOp",
    "Operation",
    "__version__",
]
