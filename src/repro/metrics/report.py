"""Plain-text table rendering for the experiment drivers.

The benchmark harness prints the same rows the paper's tables report;
this module keeps the formatting in one place so experiment drivers stay
focused on the measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class Table:
    """A titled grid of stringifiable cells."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        return format_table(self)

    def __str__(self) -> str:
        return self.render()


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table(table: Table) -> str:
    """Render a table with aligned columns and a title rule."""
    header = [str(c) for c in table.columns]
    body = [[_fmt(cell) for cell in row] for row in table.rows]
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [table.title, "=" * len(table.title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
