"""Measurement instrumentation for the section 5 evaluation."""

from repro.metrics.overhead import (
    NODE_RECORD_BYTES,
    TreeStats,
    measure_tree,
)
from repro.metrics.report import Table, format_table

__all__ = [
    "NODE_RECORD_BYTES",
    "TreeStats",
    "measure_tree",
    "Table",
    "format_table",
]
