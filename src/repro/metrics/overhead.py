"""Treedoc overhead measurements (Table 1, Tables 3-4, Figure 6).

Definitions follow section 5.2 of the paper:

- **PosID size**: the bit-packed identifier size (branch bits +
  disambiguator payloads); maximum and average are taken over the
  visible atoms of the final state.
- **Node count**: one logical node per position node, plus one per
  additional mini-node beyond the first (a node with mini-nodes stores
  an array of ``{node, disambiguator}`` pairs).
- **Memory overhead**: nodes × 26 bytes — the paper's standard node
  record (subtree counter, two child pointers, disambiguator, atom
  pointer on a 32-bit machine).
- **% non-tombstone**: live-atom slots over all used slots plus empty
  structural nodes, i.e. the fraction of nodes that still pay their way.
- **On-disk overhead**: the tree bytes of :mod:`repro.core.disk`,
  excluding the atom file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.disk import measure_on_disk
from repro.core.node import (
    EMPTY,
    LIVE,
    TOMBSTONE,
    ArrayLeaf,
    iter_subtree_entries,
    slot_posid,
)
from repro.core.tree import TreedocTree

#: The paper's per-node memory estimate: subtree count (4) + two child
#: pointers (8) + disambiguator (6+4) + atom pointer (4) = 26 bytes.
NODE_RECORD_BYTES = 26
#: Per-array-region bookkeeping cost in bytes: a (path, length, pointer)
#: record replacing the whole subtree's node records.
ARRAY_REGION_HEADER_BYTES = 12
#: Per-atom cost inside an array region: one pointer (32-bit machine,
#: matching the paper's 26-byte node model).
ARRAY_SLOT_BYTES = 4


@dataclass
class TreeStats:
    """Measurements of one Treedoc state (one Table 1 row)."""

    #: Visible atoms (document length in atoms).
    live_atoms: int = 0
    #: Used identifiers (live + tombstones).
    used_ids: int = 0
    #: Tombstone slots.
    tombstones: int = 0
    #: Logical node count (see module docstring).
    nodes: int = 0
    #: Document size in bytes (sum of atom text sizes).
    document_bytes: int = 0
    #: Maximum PosID size over visible atoms, in bits.
    max_posid_bits: int = 0
    #: Average PosID size over visible atoms, in bits.
    avg_posid_bits: float = 0.0
    #: Total PosID size over visible atoms, in bits.
    total_posid_bits: int = 0
    #: Tree height (deepest materialized path).
    height: int = 0
    #: On-disk overhead in bytes (tree image without atoms).
    disk_overhead_bytes: int = 0
    #: On-disk atom-file size in bytes.
    disk_document_bytes: int = 0
    #: Collapsed quiescent regions (section 4.2 live mixed storage).
    array_leaves: int = 0
    #: Atoms held inside collapsed regions (zero per-atom metadata).
    array_atoms: int = 0
    #: State-transfer (anti-entropy) message size in bits, with the
    #: run-aware v2 state frame (``measure_tree(..., with_sync=True)``).
    sync_frame_bits: int = 0
    #: The same state shipped as per-operation v1 records (one framed
    #: insert per atom, one framed delete per tombstone) — the replay
    #: baseline the run frames are measured against.
    sync_per_op_bits: int = 0
    #: Run segments in the measured state frame.
    sync_run_segments: int = 0
    #: Singleton records in the measured state frame.
    sync_op_segments: int = 0
    #: **Measured** anti-entropy wire bytes: what one real
    #: SyncRequest/SyncResponse exchange of this state put on a
    #: simulated link (:func:`measure_network_sync` — read from the
    #: network's byte counters, framing, clock and CRC included; not
    #: an estimate).
    sync_wire_bytes: int = 0
    #: Measured bytes of the SyncRequest probe that solicited it.
    sync_request_bytes: int = 0
    #: Storage-health counters, cumulative over the tree's lifetime
    #: (:class:`repro.core.tree.TreedocTree`): full region explosions,
    #: partial (leaf/core/leaf) explosions, live-snapshot cache drops,
    #: and in-place cache splices.
    explodes: int = 0
    partial_explodes: int = 0
    cache_drops: int = 0
    cache_splices: int = 0
    #: Per-atom PosID sizes (bits), for distribution plots.
    posid_bits: List[int] = field(default_factory=list)

    @property
    def memory_overhead_bytes(self) -> int:
        """In-memory overhead of the *pure tree* form: one 26-byte
        record per logical node, counting collapsed regions as if
        exploded (section 5.2) — so the Table 1 number is comparable
        regardless of the current storage form."""
        return (self.nodes + self.array_atoms) * NODE_RECORD_BYTES

    @property
    def mixed_memory_overhead_bytes(self) -> int:
        """In-memory overhead of the *current mixed* form: 26-byte
        records for tree-resident nodes plus the array costs of
        collapsed regions (a header per region, a pointer per atom)."""
        return (
            self.nodes * NODE_RECORD_BYTES
            + self.array_leaves * ARRAY_REGION_HEADER_BYTES
            + self.array_atoms * ARRAY_SLOT_BYTES
        )

    @property
    def mixed_memory_overhead_ratio(self) -> float:
        """Mixed-form overhead relative to the document size."""
        if self.document_bytes == 0:
            return 0.0
        return self.mixed_memory_overhead_bytes / self.document_bytes

    @property
    def memory_overhead_ratio(self) -> float:
        """Memory overhead relative to the document size ("Mem ovhd")."""
        if self.document_bytes == 0:
            return 0.0
        return self.memory_overhead_bytes / self.document_bytes

    @property
    def non_tombstone_fraction(self) -> float:
        """Fraction of nodes that hold a live atom ("% non-Tomb"),
        over the pure-tree-equivalent node count."""
        total = self.nodes + self.array_atoms
        if total == 0:
            return 1.0
        return self.live_atoms / total

    @property
    def tombstone_fraction(self) -> float:
        """Fraction of nodes that do not hold a live atom (Table 3)."""
        return 1.0 - self.non_tombstone_fraction

    @property
    def disk_overhead_ratio(self) -> float:
        """On-disk overhead relative to document size ("% doc")."""
        if self.document_bytes == 0:
            return 0.0
        return self.disk_overhead_bytes / self.document_bytes

    @property
    def sync_frame_bytes(self) -> int:
        """Run-aware state-transfer message size, in bytes."""
        return (self.sync_frame_bits + 7) // 8

    @property
    def sync_per_op_bytes(self) -> int:
        """Per-operation replay message size, in bytes."""
        return (self.sync_per_op_bits + 7) // 8

    @property
    def sync_compression(self) -> float:
        """How many times smaller the run-aware state frame is than
        per-op replay (the Table 3 sync column)."""
        if self.sync_frame_bits == 0:
            return 1.0
        return self.sync_per_op_bits / self.sync_frame_bits

    @property
    def overhead_per_atom_bits(self) -> float:
        """Identifier overhead per visible atom in bits: the total PosID
        size of *all used identifiers* amortized over visible atoms
        (Table 4 "overhead/atom"); under SDIS tombstones keep paying."""
        if self.live_atoms == 0:
            return 0.0
        return self._total_id_bits / self.live_atoms

    _total_id_bits: int = 0


def _atom_bytes(atom: object) -> int:
    text = atom if isinstance(atom, str) else repr(atom)
    return len(text.encode("utf-8"))


def measure_sync(tree: TreedocTree, mode: str = "sdis",
                 site: int = 0) -> Tuple[int, int, int, int]:
    """State-transfer message sizes of ``tree``'s current state:
    ``(frame_bits, per_op_bits, run_segments, op_segments)``.

    ``frame_bits`` is the run-aware v2 state frame
    (:func:`repro.core.encoding.encode_state`); ``per_op_bits`` ships
    the same information as framed v1 records — one insert per visible
    atom, one delete per tombstone. The per-op figure is a *lower*
    bound on real replay (a tombstone's original insert is not even
    counted), so the compression ratio reported is conservative.
    """
    from repro.core.encoding import encode_state, operation_cost_bits
    from repro.core.runs import AtomRun, iter_state_segments

    segments = iter_state_segments(tree, site)
    state = encode_state(segments, mode, site, digest="")
    per_op_bits = 0
    run_segments = 0
    op_segments = 0
    for segment in segments:
        if isinstance(segment, AtomRun):
            run_segments += 1
            for op in segment.insert_ops(site):
                per_op_bits += operation_cost_bits(op)
        else:
            op_segments += 1
            per_op_bits += operation_cost_bits(segment)
    return state.frame_bits, per_op_bits, run_segments, op_segments


def measure_network_sync(doc) -> Tuple[int, int]:
    """Measured wire cost of catching a cold replica up to ``doc``:
    ``(response_bytes, request_bytes)``.

    Runs one real anti-entropy exchange — an empty late joiner sends a
    ``SyncRequest``, ``doc``'s site answers with a ``SyncResponse``
    frame — over a two-site :class:`SimulatedNetwork`, and reads the
    numbers from the network's per-link byte counters. Unlike the
    frame-bits estimate of :func:`measure_sync`, this includes every
    real cost: clock varints, the delete log, frame headers and the
    CRC.
    """
    from repro.replication.network import SimulatedNetwork
    from repro.replication.site import ReplicaSite

    network = SimulatedNetwork(seed=0)
    server = ReplicaSite(doc.site, network, mode=doc.mode,
                         balanced=doc.allocator.balanced)
    server.doc = doc
    # One synthetic causal event stands in for the history that built
    # the document, so the server's frontier strictly dominates the
    # empty joiner's and the responder agrees to ship.
    server.broadcast.clock = server.broadcast.clock.tick(doc.site)
    joiner = ReplicaSite(doc.site + 1, network, mode=doc.mode)
    joiner.request_sync(doc.site)
    network.run()
    if joiner.sync_responses_applied != 1:  # pragma: no cover - rig bug
        raise RuntimeError("network sync measurement failed to converge")
    return (
        network.link_bytes.get((doc.site, joiner.site), 0),
        network.link_bytes.get((joiner.site, doc.site), 0),
    )


def measure_tree(tree: TreedocTree, with_disk: bool = True,
                 with_sync: bool = False) -> TreeStats:
    """Take all Table 1 measurements of ``tree``'s current state.

    Collapsed regions (live mixed storage, section 4.2) are measured
    without exploding them: their atoms' PosIDs are the implied
    canonical plain paths, ``nodes`` counts only tree-resident
    structure, and the ``array_*`` fields carry the mixed-form shape so
    both the pure-tree and mixed overheads can be reported.
    ``with_sync`` additionally measures the state-transfer message
    sizes (:func:`measure_sync`), feeding the Table 3 sync columns.
    """
    stats = TreeStats()
    total_bits = 0
    total_id_bits = 0
    structural_nodes = 0
    for node in tree.root.iter_nodes():
        # One logical node per position node, plus extra entries of the
        # mini-node array beyond the first.
        structural_nodes += 1 + max(0, len(node.minis) - 1)
    # Subtract the root when it is bare bookkeeping only.
    root = tree.root
    if root.plain_state == EMPTY and not root.minis:
        structural_nodes -= 1
    stats.nodes = max(0, structural_nodes)
    for entry in iter_subtree_entries(tree.root):
        if isinstance(entry, ArrayLeaf):
            stats.array_leaves += 1
            stats.array_atoms += entry.id_count
            dead = entry.dead
            for offset, posid in enumerate(entry.id_posids()):
                bits = posid.size_bits
                total_id_bits += bits
                stats.used_ids += 1
                if (dead >> offset) & 1:
                    stats.tombstones += 1
                    continue
                stats.posid_bits.append(bits)
                total_bits += bits
                stats.live_atoms += 1
                stats.document_bytes += _atom_bytes(entry.atoms[offset])
                if bits > stats.max_posid_bits:
                    stats.max_posid_bits = bits
            continue
        slot = entry
        if slot.state == LIVE:
            posid = slot_posid(slot)
            bits = posid.size_bits
            stats.posid_bits.append(bits)
            total_bits += bits
            total_id_bits += bits
            stats.live_atoms += 1
            stats.used_ids += 1
            stats.document_bytes += _atom_bytes(slot.atom)
            if bits > stats.max_posid_bits:
                stats.max_posid_bits = bits
        elif slot.state == TOMBSTONE:
            stats.tombstones += 1
            stats.used_ids += 1
            total_id_bits += slot_posid(slot).size_bits
    stats.total_posid_bits = total_bits
    stats._total_id_bits = total_id_bits
    if stats.live_atoms:
        stats.avg_posid_bits = total_bits / stats.live_atoms
    stats.height = tree.height
    stats.explodes = tree.explodes
    stats.partial_explodes = tree.partial_explodes
    stats.cache_drops = tree.cache_drops
    stats.cache_splices = tree.cache_splices
    if with_disk:
        overhead, document = measure_on_disk(tree)
        stats.disk_overhead_bytes = overhead
        stats.disk_document_bytes = document
    if with_sync:
        (stats.sync_frame_bits, stats.sync_per_op_bits,
         stats.sync_run_segments, stats.sync_op_segments) = measure_sync(tree)
    return stats


def compare_total_posid_bits(stats_a: TreeStats,
                             stats_b: TreeStats) -> Optional[float]:
    """Ratio of total PosID sizes (Table 5's Logoot/Treedoc column)."""
    if stats_b.total_posid_bits == 0:
        return None
    return stats_a.total_posid_bits / stats_b.total_posid_bits
