"""Logoot (Weiss, Urso, Molli — ICDCS 2009): the section 5.3 comparator.

A Logoot position identifier is a list of fixed-size components
``(digit, site, clock)``, compared lexicographically. To insert between
two identifiers, Logoot picks a free digit in the gap at the shallowest
level where one exists, stepping a bounded random distance from the left
neighbour (the *boundary* strategy of the Logoot paper); when the gap is
empty it extends the left identifier with an additional layer. Deleted
atoms are removed immediately — Logoot keeps no tombstones — but it
never restructures, which is why its identifiers keep growing where
Treedoc's flatten resets them.

Sizing follows the Treedoc paper's comparison setup: one component is
10 bytes, the same as a UDIS disambiguator (digit + 48-bit site + clock
packed into 80 bits). The digit base and boundary below are calibrated
so the allocation density — and hence the identifier-length regime —
matches what the paper measured for the early Logoot version it had
(Table 5); see EXPERIMENTS.md.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.interface import SequenceCRDT
from repro.core.disambiguator import SiteId
from repro.errors import ReproError
from repro.util.rng import derive_rng

#: Digits live in [0, BASE). The paper measured an early Logoot whose
#: identifiers averaged several components on these workloads; a 256-way
#: digit space per level puts allocation density in that regime (the
#: wire size of a component stays 10 bytes regardless — see below).
BASE = 1 << 8
#: Bits per identifier component (10 bytes, matching UDIS, section 5.3).
COMPONENT_BITS = 80

#: One component: (digit, site, clock). Plain tuples keep comparison and
#: bisect fast.
Component = Tuple[int, SiteId, int]

#: A position identifier: a non-empty tuple of components.
LogootId = Tuple[Component, ...]


@dataclass(frozen=True, slots=True)
class LogootInsert:
    """Remote payload of a Logoot insert."""

    ident: LogootId
    atom: object
    origin: SiteId

    @property
    def kind(self) -> str:
        return "insert"


@dataclass(frozen=True, slots=True)
class LogootDelete:
    """Remote payload of a Logoot delete."""

    ident: LogootId
    origin: SiteId

    @property
    def kind(self) -> str:
        return "delete"


def identifier_bits(ident: LogootId) -> int:
    """Encoded size of an identifier (fixed-size components)."""
    return len(ident) * COMPONENT_BITS


class LogootDoc(SequenceCRDT):
    """One Logoot replica.

    ``boundary`` caps the random step taken into a digit gap; small
    boundaries allocate densely (soon forcing extra layers), large ones
    sparsely. The Logoot paper's strategy; deterministic per (seed, site).
    """

    def __init__(self, site: SiteId, boundary: int = 10,
                 seed: int = 0) -> None:
        if boundary < 1:
            raise ReproError("boundary must be positive")
        self.site = site
        self.boundary = boundary
        self._rng = derive_rng(seed, "logoot", site)
        self._clock = 0
        # Parallel sorted arrays: identifiers and their atoms.
        self._ids: List[LogootId] = []
        self._atoms: List[object] = []
        # Component interning pool: neighbouring identifiers share long
        # digit prefixes (local generation copies neighbour components
        # by reference, but remote payloads arrive as fresh tuples), so
        # mapping arrivals through the pool collapses the duplicates.
        self._component_pool: Dict[Component, Component] = {}

    def _intern_ident(self, ident: LogootId) -> LogootId:
        """``ident`` with each component replaced by the replica's
        shared tuple for it."""
        pool = self._component_pool
        return tuple(pool.setdefault(c, c) for c in ident)

    # -- identifier generation ---------------------------------------------------

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _generate_between(self, p: Optional[LogootId],
                          q: Optional[LogootId]) -> LogootId:
        """A fresh identifier strictly between ``p`` and ``q``.

        The Logoot paper's construction: treat digit prefixes as base-
        ``BASE`` numbers at increasing depth until the interval between
        the neighbours opens, step a bounded random distance into it, and
        rebuild components, copying ``(site, clock)`` from the neighbour
        a copied digit came from so comparisons against the neighbours
        are decided by digits alone.

        One repair over the paper's presentation: when the neighbours'
        digit strings are equal up to their first differing *component*
        (concurrent inserts that picked the same digit, ordered only by
        site/clock), the interval never opens numerically, yet any
        *extension* of ``p`` already sorts below ``q`` (the comparison
        stays decided at the tied component's site/clock). ``q`` then
        stops bounding the arithmetic — but the result must really be
        an extension of ``p``: the depth is forced past ``p`` and the
        step capped below a digit carry, otherwise the fresh identifier
        could exceed the tied digit and sort *after* ``q``, silently
        misplacing the atom.
        """
        clock = self._tick()
        min_depth = 1
        if p is not None and q is not None and self._digit_tied(p, q):
            q = None
            min_depth = len(p) + 1
        p_digits = [c[0] for c in p] if p is not None else []
        q_digits = [c[0] for c in q] if q is not None else []
        p_num = 0
        q_num = 0
        depth = 0
        while True:
            depth += 1
            p_num = p_num * BASE + (
                p_digits[depth - 1] if depth <= len(p_digits) else 0
            )
            if q is None:
                q_num = BASE ** depth
            else:
                q_num = q_num * BASE + (
                    q_digits[depth - 1] if depth <= len(q_digits) else 0
                )
            interval = q_num - p_num - 1
            if interval >= 1 and depth >= min_depth:
                break
            if depth > len(p_digits) + len(q_digits) + 4:
                raise ReproError(
                    f"no gap between {p!r} and {q!r}: non-adjacent neighbours?"
                )
        limit = min(interval, self.boundary)
        if min_depth > 1:
            # Extension of p: stay within the appended digit (no carry).
            limit = min(limit, BASE - 1)
        step = self._rng.randint(1, limit)
        new_num = p_num + step
        digits: List[int] = []
        for _ in range(depth):
            new_num, digit = divmod(new_num, BASE)
            digits.append(digit)
        digits.reverse()
        components: List[Component] = []
        on_p, on_q = True, True
        for index, digit in enumerate(digits):
            p_comp = p[index] if p is not None and index < len(p) else None
            q_comp = q[index] if q is not None and index < len(q) else None
            if on_p and p_comp is not None and p_comp[0] == digit:
                components.append(p_comp)
                on_q = on_q and p_comp == q_comp
            elif on_q and q_comp is not None and q_comp[0] == digit:
                components.append(q_comp)
                on_p = False
            else:
                components.append((digit, self.site, clock))
                on_p = on_q = False
        return tuple(components)

    @staticmethod
    def _digit_tied(p: LogootId, q: LogootId) -> bool:
        """True when p's and q's first differing components carry the
        same digit (so q cannot bound digit arithmetic)."""
        for p_comp, q_comp in zip(p, q):
            if p_comp == q_comp:
                continue
            return p_comp[0] == q_comp[0]
        return False

    # -- contract ---------------------------------------------------------------------

    def insert(self, index: int, atom: object) -> LogootInsert:
        if index < 0 or index > len(self._ids):
            raise IndexError(f"insert index {index} out of range")
        p = self._ids[index - 1] if index > 0 else None
        q = self._ids[index] if index < len(self._ids) else None
        ident = self._generate_between(p, q)
        self._insert_ident(ident, atom)
        return LogootInsert(ident, atom, self.site)

    def delete(self, index: int) -> LogootDelete:
        if index < 0 or index >= len(self._ids):
            raise IndexError(f"delete index {index} out of range")
        ident = self._ids.pop(index)
        self._atoms.pop(index)
        return LogootDelete(ident, self.site)

    # -- batch fast paths ---------------------------------------------------------

    def _run_insert_ops(self, index: int,
                        atoms: List[object]) -> List[object]:
        """Chain identifiers between the fixed neighbours and splice
        them in with one slice assignment: O(n + k) instead of the
        O(n·k) of k one-by-one list inserts. Generates the exact
        operations the sequential path would (same RNG consumption)."""
        if index < 0 or index > len(self._ids):
            raise IndexError(f"insert index {index} out of range")
        q = self._ids[index] if index < len(self._ids) else None
        prev = self._ids[index - 1] if index > 0 else None
        ops: List[LogootInsert] = []
        new_ids: List[LogootId] = []
        for atom in atoms:
            ident = self._generate_between(prev, q)
            ops.append(LogootInsert(ident, atom, self.site))
            new_ids.append(ident)
            prev = ident
        self._ids[index:index] = new_ids
        self._atoms[index:index] = atoms
        return ops

    def _range_delete_ops(self, start: int, end: int) -> List[object]:
        """Delete a contiguous range with one slice removal."""
        if not 0 <= start <= end <= len(self._ids):
            raise IndexError(f"range [{start}, {end}) out of range")
        ops = [LogootDelete(ident, self.site)
               for ident in self._ids[start:end]]
        del self._ids[start:end]
        del self._atoms[start:end]
        return ops

    def apply(self, op: object) -> None:
        if isinstance(op, LogootInsert):
            self._insert_ident(self._intern_ident(op.ident), op.atom)
        elif isinstance(op, LogootDelete):
            position = bisect.bisect_left(self._ids, op.ident)
            if position < len(self._ids) and self._ids[position] == op.ident:
                self._ids.pop(position)
                self._atoms.pop(position)
            # else: already deleted — deletes are idempotent
        else:
            raise ReproError(f"unknown Logoot operation {op!r}")

    def _insert_ident(self, ident: LogootId, atom: object) -> None:
        position = bisect.bisect_left(self._ids, ident)
        if position < len(self._ids) and self._ids[position] == ident:
            if self._atoms[position] == atom:
                return  # duplicate delivery
            raise ReproError(f"identifier collision at {ident!r}")
        self._ids.insert(position, ident)
        self._atoms.insert(position, atom)

    def atoms(self) -> List[object]:
        return list(self._atoms)

    def total_id_bits(self) -> int:
        return sum(identifier_bits(i) for i in self._ids)

    def element_count(self) -> int:
        return len(self._ids)  # no tombstones in Logoot

    # -- metrics ---------------------------------------------------------------------

    def max_id_bits(self) -> int:
        """Largest identifier, in bits."""
        return max((identifier_bits(i) for i in self._ids), default=0)

    def avg_id_bits(self) -> float:
        """Average identifier size over visible atoms, in bits."""
        if not self._ids:
            return 0.0
        return self.total_id_bits() / len(self._ids)

    def identifiers(self) -> List[LogootId]:
        """The identifiers, in document order (testing aid)."""
        return list(self._ids)
