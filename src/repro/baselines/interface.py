"""The sequence-CRDT contract shared by Treedoc and the baselines.

Every implementation offers local ``insert``/``delete`` returning an
opaque operation, remote ``apply``, and the measurement hooks the
benchmark harness reads (identifier bits, element counts). On top of
the single-operation calls sits the batch contract: ``insert_text`` /
``delete_range`` perform one local edit and return a single
:class:`repro.core.ops.OpBatch`, and ``apply_batch`` replays one. The
defaults fall back to the single-operation methods, so a correct
implementation gets batching for free; implementations override the
``_run_insert_ops`` / ``_range_delete_ops`` hooks (or ``apply_batch``)
with fast paths that skip per-operation index recomputation. The
contract tests in ``tests/baselines/test_crdt_contract.py`` run one
suite — including hypothesis batch-vs-sequential convergence
properties — over all implementations.
"""

from __future__ import annotations

import abc
from typing import List, Sequence

from repro.core.disambiguator import SiteId
from repro.core.ops import OpBatch
from repro.core.treedoc import Treedoc
from repro.util.text import join_atoms


class SequenceCRDT(abc.ABC):
    """Abstract replicated sequence: the section 2 buffer abstraction."""

    site: SiteId
    #: Per-origin operation counter backing the batches' seq ranges
    #: (mirrors ``Treedoc._claim_seqs``); shadowed per instance on the
    #: first claim.
    _op_seq: int = 0

    @abc.abstractmethod
    def insert(self, index: int, atom: object) -> object:
        """Insert locally; returns the operation to broadcast."""

    @abc.abstractmethod
    def delete(self, index: int) -> object:
        """Delete locally; returns the operation to broadcast."""

    @abc.abstractmethod
    def apply(self, op: object) -> None:
        """Replay a remote operation (causal order assumed)."""

    @abc.abstractmethod
    def atoms(self) -> List[object]:
        """The visible sequence."""

    @abc.abstractmethod
    def total_id_bits(self) -> int:
        """Total identifier size over visible atoms, in bits (the
        Table 5 comparison metric)."""

    @abc.abstractmethod
    def element_count(self) -> int:
        """Stored elements including tombstones (overhead metric)."""

    def __len__(self) -> int:
        return len(self.atoms())

    def text(self, separator: str = "") -> str:
        """The visible sequence as a string (plain join when the atoms
        already are strings, skipping the per-atom ``str()`` call)."""
        return join_atoms(separator, self.atoms())

    # -- batch contract ---------------------------------------------------------

    def insert_text(self, index: int, atoms: Sequence[object]) -> OpBatch:
        """Insert a consecutive run locally; returns one batch."""
        ops = self._run_insert_ops(index, list(atoms))
        return OpBatch.build(ops, self.site, self._claim_seqs(len(ops)))

    def delete_range(self, start: int, end: int) -> OpBatch:
        """Delete the range ``[start, end)`` locally; returns one batch."""
        ops = self._range_delete_ops(start, end)
        return OpBatch.build(ops, self.site, self._claim_seqs(len(ops)))

    def apply_batch(self, batch: OpBatch) -> None:
        """Replay a remote batch. The default falls back to sequential
        :meth:`apply`, which is always correct; implementations with a
        cheaper bulk path override it."""
        for op in batch.ops:
            self.apply(op)

    def maintain(self) -> None:
        """Run purely local storage maintenance.

        Must not change the visible sequence and must not need
        replication — the contract tests interleave it arbitrarily with
        concurrent edits on one replica only. Treedoc collapses cold
        canonical regions into array leaves here (section 4.2 mixed
        storage); the baselines have no storage dimorphism, so the
        default is a no-op.
        """

    def insert_run(self, index: int, atoms: Sequence[object]) -> List[object]:
        """Insert a consecutive run; compatibility wrapper over the
        batch path (the old default looped ``insert(index + offset)``,
        which is quadratic in list-backed implementations)."""
        return list(self.insert_text(index, atoms).ops)

    # -- batch internals (override these for fast paths) ------------------------

    def _run_insert_ops(self, index: int,
                        atoms: List[object]) -> List[object]:
        """Perform a run insert locally, returning its operations.
        Default: one-by-one at ``index + offset`` (always correct)."""
        return [self.insert(index + offset, atom)
                for offset, atom in enumerate(atoms)]

    def _range_delete_ops(self, start: int, end: int) -> List[object]:
        """Perform a range delete locally, returning its operations.
        Default: repeated delete at ``start`` (always correct)."""
        if not 0 <= start <= end <= len(self):
            raise IndexError(f"range [{start}, {end}) out of range")
        return [self.delete(start) for _ in range(end - start)]

    def _claim_seqs(self, count: int) -> int:
        """Reserve ``count`` per-origin sequence numbers for a batch."""
        start = self._op_seq
        self._op_seq = start + count
        return start


class TreedocAdapter(SequenceCRDT):
    """Treedoc behind the common contract (for uniform comparisons)."""

    def __init__(self, site: SiteId, mode: str = "udis",
                 balanced: bool = True) -> None:
        self.site = site
        self.doc = Treedoc(site, mode=mode, balanced=balanced)

    def insert(self, index: int, atom: object) -> object:
        return self.doc.insert(index, atom)

    def insert_text(self, index: int, atoms: Sequence[object]) -> OpBatch:
        return self.doc.insert_text(index, atoms)

    def insert_run(self, index: int, atoms: Sequence[object]) -> List[object]:
        return self.doc.insert_run(index, atoms)

    def delete(self, index: int) -> object:
        return self.doc.delete(index)

    def delete_range(self, start: int, end: int) -> OpBatch:
        return self.doc.delete_range(start, end)

    def apply(self, op: object) -> None:
        self.doc.apply(op)

    def apply_batch(self, batch: OpBatch) -> None:
        self.doc.apply_batch(batch)

    def atoms(self) -> List[object]:
        return self.doc.atoms()

    def text(self, separator: str = "") -> str:
        return self.doc.text(separator)

    def __len__(self) -> int:
        # O(1) off the subtree counts, not a snapshot materialization.
        return len(self.doc)

    def maintain(self) -> None:
        """Advance the cold clock one revision and collapse whatever
        has gone quiescent (aggressive thresholds: maintenance in tests
        should actually exercise the mixed form)."""
        self.doc.note_revision()
        self.doc.collapse_cold(min_age=1, min_atoms=2)

    def total_id_bits(self) -> int:
        return sum(p.size_bits for p in self.doc.posids())

    def element_count(self) -> int:
        return self.doc.tree.id_length
