"""The sequence-CRDT contract shared by Treedoc and the baselines.

Every implementation offers local ``insert``/``delete`` returning an
opaque operation, remote ``apply``, and the measurement hooks the
benchmark harness reads (identifier bits, element counts). The contract
tests in ``tests/baselines/test_crdt_contract.py`` run one suite —
including hypothesis convergence properties — over all implementations.
"""

from __future__ import annotations

import abc
from typing import List, Sequence

from repro.core.disambiguator import SiteId
from repro.core.treedoc import Treedoc


class SequenceCRDT(abc.ABC):
    """Abstract replicated sequence: the section 2 buffer abstraction."""

    site: SiteId

    @abc.abstractmethod
    def insert(self, index: int, atom: object) -> object:
        """Insert locally; returns the operation to broadcast."""

    @abc.abstractmethod
    def delete(self, index: int) -> object:
        """Delete locally; returns the operation to broadcast."""

    @abc.abstractmethod
    def apply(self, op: object) -> None:
        """Replay a remote operation (causal order assumed)."""

    @abc.abstractmethod
    def atoms(self) -> List[object]:
        """The visible sequence."""

    @abc.abstractmethod
    def total_id_bits(self) -> int:
        """Total identifier size over visible atoms, in bits (the
        Table 5 comparison metric)."""

    @abc.abstractmethod
    def element_count(self) -> int:
        """Stored elements including tombstones (overhead metric)."""

    def __len__(self) -> int:
        return len(self.atoms())

    def text(self, separator: str = "") -> str:
        """The visible sequence as a string."""
        return separator.join(str(a) for a in self.atoms())

    def insert_run(self, index: int, atoms: Sequence[object]) -> List[object]:
        """Insert a consecutive run; default is one-by-one."""
        ops = []
        for offset, atom in enumerate(atoms):
            ops.append(self.insert(index + offset, atom))
        return ops


class TreedocAdapter(SequenceCRDT):
    """Treedoc behind the common contract (for uniform comparisons)."""

    def __init__(self, site: SiteId, mode: str = "udis",
                 balanced: bool = True) -> None:
        self.site = site
        self.doc = Treedoc(site, mode=mode, balanced=balanced)

    def insert(self, index: int, atom: object) -> object:
        return self.doc.insert(index, atom)

    def insert_run(self, index: int, atoms: Sequence[object]) -> List[object]:
        return self.doc.insert_run(index, atoms)

    def delete(self, index: int) -> object:
        return self.doc.delete(index)

    def apply(self, op: object) -> None:
        self.doc.apply(op)

    def atoms(self) -> List[object]:
        return self.doc.atoms()

    def total_id_bits(self) -> int:
        return sum(p.size_bits for p in self.doc.posids())

    def element_count(self) -> int:
        return self.doc.tree.id_length
