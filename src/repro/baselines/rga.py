"""RGA — the Replicated Growable Array (Roh et al.).

Roh et al. independently proposed the CRDT approach (section 6 cites
their precedence-based array); RGA is their sequence design and the
third point of comparison in the extended benchmarks. Each element
carries a Lamport-timestamped identifier; an insert names the element it
goes *after*, and concurrent inserts after the same element order by
descending timestamp (newer first), which makes insertion commutative.
Deletes tombstone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.interface import SequenceCRDT
from repro.core.disambiguator import SiteId
from repro.errors import ReproError

#: An element identifier: (lamport timestamp, site).
RgaId = Tuple[int, SiteId]

#: Identifier size in bits: 4-byte timestamp + 6-byte site (UDIS sizing).
RGA_ID_BITS = (4 + 6) * 8


@dataclass(slots=True)
class _Node:
    """One linked-list cell. ``slots=True``: RGA keeps a cell per
    element ever inserted (tombstones included), so the per-instance
    dict would dominate replica memory — the same ``__slots__``
    treatment the Treedoc nodes got, keeping Table 1 memory comparisons
    apples-to-apples."""

    rid: RgaId
    atom: object
    visible: bool
    next: Optional[RgaId]


@dataclass(frozen=True, slots=True)
class RgaInsert:
    """Remote payload: insert ``atom`` with id ``rid`` after ``after``
    (None = document head)."""

    rid: RgaId
    atom: object
    after: Optional[RgaId]
    origin: SiteId

    @property
    def kind(self) -> str:
        return "insert"


@dataclass(frozen=True, slots=True)
class RgaDelete:
    """Remote payload of a delete."""

    rid: RgaId
    origin: SiteId

    @property
    def kind(self) -> str:
        return "delete"


class RgaDoc(SequenceCRDT):
    """One RGA replica (timestamped linked list with tombstones)."""

    def __init__(self, site: SiteId) -> None:
        self.site = site
        self._clock = 0
        self._head: Optional[RgaId] = None
        self._nodes: Dict[RgaId, _Node] = {}

    # -- internals ------------------------------------------------------------------

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _observe(self, timestamp: int) -> None:
        if timestamp > self._clock:
            self._clock = timestamp

    def _walk(self) -> List[_Node]:
        nodes = []
        rid = self._head
        while rid is not None:
            node = self._nodes[rid]
            nodes.append(node)
            rid = node.next
        return nodes

    def _visible_nodes(self) -> List[_Node]:
        return [n for n in self._walk() if n.visible]

    def _insert_after(self, after: Optional[RgaId], node: _Node) -> None:
        """The RGA placement rule: skip over any existing successors of
        ``after`` with greater identifiers (concurrent inserts that beat
        this one), then splice in."""
        if after is None:
            succ = self._head
        else:
            anchor = self._nodes.get(after)
            if anchor is None:
                raise ReproError(f"unknown anchor {after!r} (causal delivery?)")
            succ = anchor.next
        while succ is not None and succ > node.rid:
            after = succ
            succ = self._nodes[succ].next
        node.next = succ
        if after is None:
            self._head = node.rid
        else:
            self._nodes[after].next = node.rid
        self._nodes[node.rid] = node

    # -- contract ----------------------------------------------------------------------

    def insert(self, index: int, atom: object) -> RgaInsert:
        visible = self._visible_nodes()
        if index < 0 or index > len(visible):
            raise IndexError(f"insert index {index} out of range")
        after = visible[index - 1].rid if index > 0 else None
        rid: RgaId = (self._tick(), self.site)
        node = _Node(rid, atom, True, None)
        self._insert_after(after, node)
        return RgaInsert(rid, atom, after, self.site)

    def delete(self, index: int) -> RgaDelete:
        visible = self._visible_nodes()
        if index < 0 or index >= len(visible):
            raise IndexError(f"delete index {index} out of range")
        node = visible[index]
        node.visible = False
        node.atom = None
        return RgaDelete(node.rid, self.site)

    # -- batch fast paths ---------------------------------------------------------

    def _run_insert_ops(self, index: int,
                        atoms: List[object]) -> List[object]:
        """Walk the visible list once, then chain each new element after
        the previous one — the per-insert O(n) visible-list walk of the
        sequential path collapses to a single walk per batch."""
        visible = self._visible_nodes()
        if index < 0 or index > len(visible):
            raise IndexError(f"insert index {index} out of range")
        after = visible[index - 1].rid if index > 0 else None
        ops: List[RgaInsert] = []
        for atom in atoms:
            rid: RgaId = (self._tick(), self.site)
            node = _Node(rid, atom, True, None)
            self._insert_after(after, node)
            ops.append(RgaInsert(rid, atom, after, self.site))
            after = rid
        return ops

    def _range_delete_ops(self, start: int, end: int) -> List[object]:
        """Tombstone a contiguous visible range with one list walk."""
        visible = self._visible_nodes()
        if not 0 <= start <= end <= len(visible):
            raise IndexError(f"range [{start}, {end}) out of range")
        ops: List[RgaDelete] = []
        for node in visible[start:end]:
            node.visible = False
            node.atom = None
            ops.append(RgaDelete(node.rid, self.site))
        return ops

    def apply(self, op: object) -> None:
        if isinstance(op, RgaInsert):
            if op.rid in self._nodes:
                return  # duplicate delivery
            self._observe(op.rid[0])
            # Share the anchor's stored identifier tuple instead of the
            # payload's fresh copy: every cell's ``next`` then aliases
            # the successor's own ``rid`` (identifier interning).
            after = op.after
            if after is not None:
                anchor = self._nodes.get(after)
                if anchor is not None:
                    after = anchor.rid
            node = _Node(op.rid, op.atom, True, None)
            self._insert_after(after, node)
        elif isinstance(op, RgaDelete):
            node = self._nodes.get(op.rid)
            if node is None:
                raise ReproError(f"delete of unknown {op.rid!r}")
            node.visible = False  # idempotent
            node.atom = None
        else:
            raise ReproError(f"unknown RGA operation {op!r}")

    def atoms(self) -> List[object]:
        return [n.atom for n in self._visible_nodes()]

    def total_id_bits(self) -> int:
        return sum(RGA_ID_BITS for n in self._walk() if n.visible)

    def element_count(self) -> int:
        return len(self._nodes)

    def tombstone_count(self) -> int:
        """Invisible elements currently retained."""
        return sum(1 for n in self._nodes.values() if not n.visible)
