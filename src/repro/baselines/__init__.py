"""Baseline sequence CRDTs the paper compares against or cites.

- :mod:`repro.baselines.logoot` — Logoot (Weiss et al., ICDCS 2009), the
  section 5.3 comparator;
- :mod:`repro.baselines.woot` — WOOT (Oster et al., CSCW 2006);
- :mod:`repro.baselines.rga` — RGA (Roh et al.), the timestamped
  linked-list design;
- :mod:`repro.baselines.interface` — the sequence-CRDT contract all of
  them (and Treedoc, via an adapter) satisfy, so the contract tests and
  benchmarks treat every implementation uniformly.
"""

from repro.baselines.interface import SequenceCRDT, TreedocAdapter
from repro.baselines.logoot import LogootDoc
from repro.baselines.woot import WootDoc
from repro.baselines.rga import RgaDoc

__all__ = [
    "SequenceCRDT",
    "TreedocAdapter",
    "LogootDoc",
    "WootDoc",
    "RgaDoc",
]
