"""WOOT (Oster, Urso, Molli, Imine — CSCW 2006).

WOOT is the related-work CRDT of section 6: every character carries a
unique identifier plus the identifiers of its left and right neighbours
*at insertion time*; concurrent inserts into the same gap are ordered by
identifier through the recursive integration procedure. Deleted
characters become invisible but are never removed — "the data structure
grows indefinitely, because there is no garbage collection or
restructuring" — which is exactly the overhead Treedoc's flatten
addresses, and what the extended comparison benchmarks show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.interface import SequenceCRDT
from repro.core.disambiguator import SiteId
from repro.errors import ReproError

#: A W-character identifier: (site, local sequence number).
WId = Tuple[SiteId, int]

#: Sentinel identifiers for the document bounds.
BEGIN_ID: WId = (-1, 0)
END_ID: WId = (-2, 0)

#: Identifier size in bits: 6-byte site + 4-byte counter, matching the
#: UDIS sizing of section 5 for a fair comparison.
WID_BITS = (6 + 4) * 8


@dataclass(slots=True)
class WChar:
    """One stored character: identifier, visibility and its insertion-
    time neighbours. ``slots=True``: one instance per character ever
    inserted (tombstones never leave), so per-instance dicts dominate a
    replica's memory without it — the same treatment the Treedoc nodes
    got, keeping Table 1 memory comparisons apples-to-apples."""

    wid: WId
    atom: object
    visible: bool
    prev: WId
    next: WId


@dataclass(frozen=True, slots=True)
class WootInsert:
    """Remote payload of a WOOT insert: the full W-character."""

    wid: WId
    atom: object
    prev: WId
    next: WId
    origin: SiteId

    @property
    def kind(self) -> str:
        return "insert"


@dataclass(frozen=True, slots=True)
class WootDelete:
    """Remote payload of a WOOT delete."""

    wid: WId
    origin: SiteId

    @property
    def kind(self) -> str:
        return "delete"


class WootDoc(SequenceCRDT):
    """One WOOT replica.

    Assumes causal delivery (a character's neighbours exist before it
    arrives), which the replication layer provides; operations whose
    preconditions are not yet met raise, rather than being buffered, to
    surface delivery-order bugs in tests.
    """

    def __init__(self, site: SiteId) -> None:
        self.site = site
        self._counter = 0
        # The string: W-characters in document order, bounded by the
        # (conceptual) BEGIN and END sentinels which are not stored.
        self._chars: List[WChar] = []
        self._index: Dict[WId, int] = {}
        # WId interning pool: every character stores three identifiers
        # (its own + both insertion-time neighbours), and remote payloads
        # arrive as fresh tuples — mapping them through the pool makes
        # all references to one identifier share one tuple object.
        self._wid_pool: Dict[WId, WId] = {BEGIN_ID: BEGIN_ID, END_ID: END_ID}

    def _intern(self, wid: WId) -> WId:
        """The replica's shared tuple for ``wid``."""
        return self._wid_pool.setdefault(wid, wid)

    # -- helpers ------------------------------------------------------------------

    def _position(self, wid: WId) -> int:
        """Position of ``wid`` in the stored string; sentinels map to the
        virtual bounds -1 and len."""
        if wid == BEGIN_ID:
            return -1
        if wid == END_ID:
            return len(self._chars)
        position = self._index.get(wid)
        if position is None:
            raise ReproError(f"unknown W-character {wid!r} (causal delivery?)")
        return position

    def _visible_positions(self) -> List[int]:
        return [i for i, c in enumerate(self._chars) if c.visible]

    def _rebuild_index(self, start: int) -> None:
        for position in range(start, len(self._chars)):
            self._index[self._chars[position].wid] = position

    # -- integration (the WOOT algorithm) --------------------------------------------

    def _integrate(self, char: WChar, prev: WId, next_: WId) -> None:
        """Recursive insert between ``prev`` and ``next_`` (IntegrateIns).

        The subsequence strictly between the neighbours is reduced to the
        characters whose own insertion-time neighbours lie outside it;
        the new character finds its slot among those by identifier order,
        then recurses into the narrowed gap.
        """
        while True:
            lower = self._position(prev)
            upper = self._position(next_)
            if upper - lower == 1:
                position = lower + 1
                self._chars.insert(position, char)
                self._rebuild_index(position)
                return
            # L: prev · (d in S | CP(d) <= prev and next <= CN(d)) · next
            candidates: List[WId] = [prev]
            for position in range(lower + 1, upper):
                stored = self._chars[position]
                if (
                    self._position(stored.prev) <= lower
                    and upper <= self._position(stored.next)
                ):
                    candidates.append(stored.wid)
            candidates.append(next_)
            slot = 1
            while (
                slot < len(candidates) - 1
                and candidates[slot] < char.wid
            ):
                slot += 1
            prev, next_ = candidates[slot - 1], candidates[slot]

    # -- contract -----------------------------------------------------------------------

    def insert(self, index: int, atom: object) -> WootInsert:
        visible = self._visible_positions()
        if index < 0 or index > len(visible):
            raise IndexError(f"insert index {index} out of range")
        prev = self._chars[visible[index - 1]].wid if index > 0 else BEGIN_ID
        next_ = self._chars[visible[index]].wid if index < len(visible) else END_ID
        self._counter += 1
        wid: WId = self._intern((self.site, self._counter))
        char = WChar(wid, atom, True, prev, next_)
        self._integrate(char, prev, next_)
        return WootInsert(wid, atom, prev, next_, self.site)

    def delete(self, index: int) -> WootDelete:
        visible = self._visible_positions()
        if index < 0 or index >= len(visible):
            raise IndexError(f"delete index {index} out of range")
        char = self._chars[visible[index]]
        char.visible = False
        return WootDelete(char.wid, self.site)

    # -- batch fast paths ---------------------------------------------------------

    def _run_insert_ops(self, index: int,
                        atoms: List[object]) -> List[object]:
        """Resolve the gap's bounding characters once, then chain each
        new character after the previous one — skipping the sequential
        path's per-insert O(n) visible-position scan."""
        visible = self._visible_positions()
        if index < 0 or index > len(visible):
            raise IndexError(f"insert index {index} out of range")
        prev = self._chars[visible[index - 1]].wid if index > 0 else BEGIN_ID
        next_ = (
            self._chars[visible[index]].wid
            if index < len(visible) else END_ID
        )
        ops: List[WootInsert] = []
        for atom in atoms:
            self._counter += 1
            wid: WId = self._intern((self.site, self._counter))
            char = WChar(wid, atom, True, prev, next_)
            self._integrate(char, prev, next_)
            ops.append(WootInsert(wid, atom, prev, next_, self.site))
            prev = wid
        return ops

    def _range_delete_ops(self, start: int, end: int) -> List[object]:
        """Hide a contiguous visible range with one position scan."""
        visible = self._visible_positions()
        if not 0 <= start <= end <= len(visible):
            raise IndexError(f"range [{start}, {end}) out of range")
        ops: List[WootDelete] = []
        for position in visible[start:end]:
            char = self._chars[position]
            char.visible = False
            ops.append(WootDelete(char.wid, self.site))
        return ops

    def apply(self, op: object) -> None:
        if isinstance(op, WootInsert):
            if op.wid in self._index:
                return  # duplicate delivery
            wid = self._intern(op.wid)
            prev = self._intern(op.prev)
            next_ = self._intern(op.next)
            char = WChar(wid, op.atom, True, prev, next_)
            self._integrate(char, prev, next_)
        elif isinstance(op, WootDelete):
            position = self._index.get(op.wid)
            if position is None:
                raise ReproError(f"delete of unknown {op.wid!r}")
            self._chars[position].visible = False  # idempotent
        else:
            raise ReproError(f"unknown WOOT operation {op!r}")

    def atoms(self) -> List[object]:
        return [c.atom for c in self._chars if c.visible]

    def total_id_bits(self) -> int:
        # Each visible character stores its id plus its two neighbour
        # ids — WOOT's per-atom metadata is three identifiers.
        return sum(3 * WID_BITS for c in self._chars if c.visible)

    def element_count(self) -> int:
        return len(self._chars)  # tombstones never leave

    def tombstone_count(self) -> int:
        """Invisible characters (never garbage collected)."""
        return sum(1 for c in self._chars if not c.visible)
