"""The Treedoc tree: storage, lookup, counts and infix navigation.

This module implements the mutable tree that backs a Treedoc replica:
materializing identifier paths into nodes, applying remote inserts and
deletes, tombstone bookkeeping (SDIS) or discard-and-prune (UDIS),
index-to-slot descent via cached counts, and O(depth) infix successor /
predecessor walks over atom slots (used by the tombstone-aware neighbour
search and by the allocator's empty-slot reuse).

Incremental read path (DESIGN.md section 6)
-------------------------------------------

The tree maintains a *live-snapshot cache*: a flat list of the live atom
slots in document order, spliced in place by every slot-state change
(``set_live``, ``make_tombstone``, ``discard``) and coalesced to one
splice per bulk section. While the cache is valid, ``atoms()``,
``posids()`` and ``live_slot_at`` are O(1)/O(k) list operations instead
of O(n) tree walks / O(depth) descents. Structural surgery
(``recount_subtree`` after flatten/explode, disk load) *invalidates* the
cache — never leaves it stale — and the next snapshot read rebuilds it
with one walk. ``purge_tombstone`` does not touch the live sequence, so
the cache stays valid across SDIS garbage collection.

Two companions ride along: a monotonically increasing *generation*
counter (bumped on every visible-content change) that downstream layers
key their own derived caches on (text, editor lines, replica
snapshots), and an *edit finger* — the last resolved ``(index, slot)``
pair — that resolves nearby live indexes by successor/predecessor
chain walks when the snapshot cache is unavailable, exploiting the
edit locality the paper's trace study reports.

Live mixed storage (DESIGN.md section 7, paper section 4.2)
-----------------------------------------------------------

Quiescent subtrees in canonical exploded form may be *collapsed* into
:class:`repro.core.node.ArrayLeaf` children — a bare atom list with one
parent link and zero per-atom metadata (:meth:`collapse_subtree`). The
snapshot cache then holds the leaf as **one entry contributing a
slice**, so ``atoms()``/``text()`` extend from the array at C speed
instead of appending per slot. Any operation that needs real structure
inside a region — a remote path resolving into it (``materialize`` /
``lookup``), an index descent, a successor/predecessor walk, an
allocation landing next to it — *explodes on touch*: the canonical form
is rebuilt deterministically and locally (:meth:`explode_leaf`), so
replicas never ship an explode operation and a collapsing replica stays
bit-identical in identifier space with a non-collapsing one. Collapse
and explode preserve the subtree counts exactly (a leaf reports its
visible atoms and used identifiers as its aggregates), so neither
touches ancestor aggregates or the generation counter; both *splice*
the snapshot cache in place — a collapse folds the region's slot
entries into one leaf entry, an explode expands the leaf entry into
the new subtree's live entries — so a mixed cache survives edits
around untouched leaf segments instead of being dropped and rebuilt.

Large leaves explode *partially* (DESIGN.md section 12): the spine to
the touched atom is materialized as real canonical structure while the
off-spine sides stay collapsed as sub-leaves, bounding the explode to
O(edit) instead of O(region). The split follows the canonical
``_canonical_split`` arithmetic at every level, so the partial form is
a strict subset of the full canonical form and replicas that exploded
fully remain PosID-identical with replicas that exploded partially.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.disambiguator import Disambiguator
from repro.core.node import (
    EMPTY,
    LIVE,
    TOMBSTONE,
    ArrayLeaf,
    AtomSlot,
    Entry,
    MiniNode,
    PosNode,
    build_exploded,
    build_exploded_with_dead,
    build_partial_exploded,
    canonical_bits_to_index,
    canonical_path_bits,
    collect_array_atoms,
    iter_subtree_entries,
    parent_host,
    slot_depth,
    slot_host,
    slot_is_id_holder,
    slot_is_live,
    slot_posid,
)
from repro.core.path import LEFT, RIGHT, PathElement, PosID
from repro.errors import MissingAtomError, TreeError


def _as_node(child) -> PosNode:
    """Resolve a plain child to tree form. A walk about to step *inside*
    a collapsed region is applying a path to an array: explode it
    (section 4.2.1) — deterministic and local, so no replication."""
    if isinstance(child, ArrayLeaf):
        return child.explode()
    return child


def _leftmost_slot(node: PosNode) -> AtomSlot:
    """First slot (in infix order) of the subtree rooted at ``node``."""
    # The leaf check is inlined (not _as_node): this loop runs once per
    # tree level on the replay hot path. A collapsed region explodes
    # around its first atom — the walk only needs the region's edge.
    while True:
        child = node.left
        if child is None:
            return node
        if type(child) is ArrayLeaf:
            child = child.explode(0)
        node = child


def _mini_region_first(mini: MiniNode) -> AtomSlot:
    """First slot of a mini-node's region (its left subtree, then it)."""
    if mini.left is not None:
        return _leftmost_slot(_as_node(mini.left))
    return mini


def _rightmost_slot(node: PosNode) -> AtomSlot:
    """Last slot (in infix order) of the subtree rooted at ``node``."""
    while True:
        child = node.right
        if child is not None:
            if type(child) is ArrayLeaf:
                child = child.explode(len(child.atoms) - 1)
            node = child
            continue
        if node.minis:
            mini = node.minis[-1]
            if mini.right is not None:
                node = _as_node(mini.right)
                continue
            return mini
        return node


def _mini_index(host: PosNode, mini: MiniNode) -> int:
    """Position of ``mini`` within its host's sorted mini list."""
    for index, candidate in enumerate(host.minis):
        if candidate is mini:
            return index
    raise TreeError("mini-node not attached to its host")


def _after_mini_region(host: PosNode, index: int) -> Optional[AtomSlot]:
    """Slot following the region of ``host.minis[index]``, within or
    above ``host``."""
    if index + 1 < len(host.minis):
        return _mini_region_first(host.minis[index + 1])
    if host.right is not None:
        return _leftmost_slot(_as_node(host.right))
    return _up_successor(host)


def _up_successor(node: PosNode) -> Optional[AtomSlot]:
    """Slot following the entire subtree rooted at ``node``."""
    while True:
        parent = node.parent
        if parent is None:
            return None
        container, bit = parent
        if isinstance(container, MiniNode):
            if bit == LEFT:
                return container
            host = container.host
            return _after_mini_region(host, _mini_index(host, container))
        if bit == LEFT:
            return container
        node = container


def successor_slot(slot: AtomSlot) -> Optional[AtomSlot]:
    """The next atom slot in identifier order, or None at the end.

    Stepping into a collapsed region explodes it (the caller needs real
    slots: neighbour searches and range walks precede edits)."""
    if isinstance(slot, MiniNode):
        if slot.right is not None:
            return _leftmost_slot(_as_node(slot.right))
        host = slot.host
        return _after_mini_region(host, _mini_index(host, slot))
    # A position node's plain slot: next is its first mini region, then
    # its right subtree, then upwards.
    node = slot
    if node.minis:
        return _mini_region_first(node.minis[0])
    child = node.right
    if child is not None:
        if type(child) is ArrayLeaf:
            child = child.explode(0)
        return _leftmost_slot(child)
    return _up_successor(node)


def _before_mini_region(host: PosNode, index: int) -> AtomSlot:
    """Slot preceding the region of ``host.minis[index]``."""
    if index > 0:
        previous = host.minis[index - 1]
        if previous.right is not None:
            return _rightmost_slot(_as_node(previous.right))
        return previous
    return host  # the host's plain slot precedes its first mini


def _up_predecessor(node: PosNode) -> Optional[AtomSlot]:
    """Slot preceding the entire subtree rooted at ``node``."""
    while True:
        parent = node.parent
        if parent is None:
            return None
        container, bit = parent
        if isinstance(container, MiniNode):
            if bit == RIGHT:
                return container
            host = container.host
            return _before_mini_region(host, _mini_index(host, container))
        if bit == RIGHT:
            if container.minis:
                mini = container.minis[-1]
                if mini.right is not None:
                    return _rightmost_slot(_as_node(mini.right))
                return mini
            return container
        node = container


def predecessor_slot(slot: AtomSlot) -> Optional[AtomSlot]:
    """The previous atom slot in identifier order, or None at the start."""
    if isinstance(slot, MiniNode):
        if slot.left is not None:
            return _rightmost_slot(_as_node(slot.left))
        host = slot.host
        return _before_mini_region(host, _mini_index(host, slot))
    node = slot
    if node.left is not None:
        return _rightmost_slot(_as_node(node.left))
    return _up_predecessor(node)


class TreedocTree:
    """The extended binary tree backing one Treedoc replica."""

    #: Live-index window within which the edit finger walks the
    #: successor/predecessor chain instead of descending from the root.
    FINGER_WINDOW = 64
    #: Hard cap on chain steps per finger walk (tombstone runs between
    #: live slots can make a short live distance arbitrarily long).
    FINGER_STEP_LIMIT = 256

    def __init__(self) -> None:
        self.root = PosNode()
        #: Deepest path length materialized so far (drives the balancing
        #: growth factor of section 4.1).
        self.height = 0
        #: When a bulk section is open, per-host (live, id) count deltas
        #: accumulate here instead of walking the spine per slot change;
        #: entries hold the node reference so ``id()`` keys stay unique.
        self._bulk_deltas: Optional[Dict[int, List]] = None
        #: Read-path feature toggles (benchmark A/B switches; production
        #: code leaves both on).
        self.cache_enabled = True
        self.finger_enabled = True
        #: The live-snapshot cache: live *entries* in document order —
        #: atom slots, plus one entry per collapsed region (ArrayLeaf) —
        #: or None when invalidated (an empty tree has a valid empty
        #: cache). Without leaves every entry has width 1 and all the
        #: splice fast paths below apply unchanged; with leaves, every
        #: mutation splices *around* untouched leaf segments.
        self._live: Optional[List[Entry]] = []
        #: True when the cache holds at least one ArrayLeaf entry
        #: (mirrors ``_live_leaves > 0``; kept as a plain attribute for
        #: the hot-path reads).
        self._live_has_leaf = False
        #: Number of ArrayLeaf entries currently in the cache,
        #: maintained by every splice.
        self._live_leaves = 0
        #: Total live atoms the cache represents (sum of entry widths:
        #: 1 per slot entry, ``live_count`` per leaf entry); meaningful
        #: only while ``_live`` is not None.
        self._live_total = 0
        #: Lazily built cumulative live-index starts per cache entry
        #: (only needed, and only built, when leaf entries exist).
        self._live_starts: Optional[List[int]] = None
        #: Bumped on every visible-content change; downstream layers key
        #: derived caches (text, lines, snapshots) on it.
        self._generation = 0
        #: Edit finger: last resolved (live index, slot), or None.
        self._finger: Optional[Tuple[int, AtomSlot]] = None
        #: Per-bulk-section cache deltas, coalesced at :meth:`end_bulk`.
        self._bulk_added: List[AtomSlot] = []
        self._bulk_removed = False
        #: Optional hint that the section's removals are exactly the
        #: live range [start, end) (set by range deletes resolved off
        #: the cache): one slice delete replaces the compaction pass.
        self._bulk_removed_range: Optional[Tuple[int, int]] = None
        #: Optional hint that the section's additions are one run whose
        #: first atom lands at this live index (local run inserts): the
        #: flush splices there without per-slot rank queries.
        self._bulk_added_at: Optional[int] = None
        #: Plain ``weakref.ref`` to the owning document, whose
        #: ``_on_explode(node)`` is called after every leaf explosion
        #: with the new subtree root (it feeds its re-collapse
        #: hysteresis and incremental sweep queue from it). A plain
        #: weakref is gc-opaque, so the tree's reachability graph never
        #: includes its owner.
        self._explode_listener = None
        #: Storage-health counters (surfaced by ``measure_tree`` and the
        #: daemon's admin status): region explosions (full and partial),
        #: snapshot-cache drops (a cache existed and was discarded) and
        #: segment-aware splices performed on a leaf-bearing cache.
        self.explodes = 0
        self.partial_explodes = 0
        self.cache_drops = 0
        self.cache_splices = 0

    @property
    def generation(self) -> int:
        """Monotonic counter of visible-content changes."""
        return self._generation

    def configure_read_cache(self, snapshot: bool = True,
                             finger: bool = True) -> None:
        """Toggle the read-path optimizations (benchmark A/B switch).

        Disabling the snapshot cache drops it and stops maintaining it;
        disabling the finger falls back to root descents. Re-enabling
        the cache leaves it invalid until the next snapshot read.
        """
        self.cache_enabled = snapshot
        self.finger_enabled = finger
        if not snapshot:
            self._live = None
            self._live_has_leaf = False
            self._live_leaves = 0
            self._live_total = 0
            self._live_starts = None
        if not finger:
            self._finger = None

    # -- path <-> structure ---------------------------------------------------

    @staticmethod
    def _leaf_touch_offset(leaf: ArrayLeaf, elements, position: int) -> int:
        """Slot offset inside ``leaf`` that the remaining path elements
        (``elements[position:]``) route to or through — the
        partial-explode touch point for a remote path landing in the
        region. Plain bits descend the canonical structure; the first
        disambiguated element anchors at the node its bit reaches (its
        mini-node hangs there); a path ending at the region root
        anchors at the root's own slot."""
        bits: List[int] = []
        for element in elements[position:]:
            bits.append(element.bit)
            if element.dis is not None:
                break
        return canonical_bits_to_index(len(leaf.atoms), bits)

    def materialize(self, posid: PosID) -> AtomSlot:
        """Walk ``posid``, creating missing structure; return its slot.

        Re-creates discarded ancestors, as the replay version of insert
        must under UDIS (section 3.3.1). A path landing on or inside a
        collapsed region explodes it first (section 4.2.1) — around the
        touched offset, so a large region only materializes its spine.
        """
        context: AtomSlot = self.root
        elements = posid.elements
        for position, element in enumerate(elements):
            child = context.child(element.bit)
            if child is None:
                child = PosNode(parent=(context, element.bit))
                context.set_child(element.bit, child)
            elif isinstance(child, ArrayLeaf):
                child = self.explode_leaf(
                    child,
                    self._leaf_touch_offset(child, elements, position + 1),
                )
            if element.dis is None:
                context = child
            else:
                context = child.get_or_create_mini(element.dis)
        if posid.depth > self.height:
            self.height = posid.depth
        return context

    def lookup(self, posid: PosID) -> Optional[AtomSlot]:
        """The slot named by ``posid`` if its structure exists, else None.

        Like :meth:`materialize`, a path routing into a collapsed region
        explodes it — a lookup precedes a structural use of the slot."""
        context: AtomSlot = self.root
        elements = posid.elements
        for position, element in enumerate(elements):
            child = context.child(element.bit)
            if child is None:
                return None
            if isinstance(child, ArrayLeaf):
                child = self.explode_leaf(
                    child,
                    self._leaf_touch_offset(child, elements, position + 1),
                )
            if element.dis is None:
                context = child
            else:
                mini = child.find_mini(element.dis)
                if mini is None:
                    return None
                context = mini
        return context

    # -- counts ----------------------------------------------------------------

    def _adjust_counts(self, slot: AtomSlot, d_live: int, d_id: int) -> None:
        """Propagate a slot-state change up the position-node spine.

        Inside a bulk section the delta is buffered at the slot's host
        instead; :meth:`end_bulk` propagates every buffered delta in one
        bottom-up pass, so a batch touching *n* slots under a shared
        subtree costs the shared spine once instead of *n* times.
        """
        if d_live == 0 and d_id == 0:
            return
        if self._bulk_deltas is not None:
            host = slot_host(slot)
            entry = self._bulk_deltas.get(id(host))
            if entry is None:
                self._bulk_deltas[id(host)] = [host, d_live, d_id]
            else:
                entry[1] += d_live
                entry[2] += d_id
            return
        node: Optional[PosNode] = slot_host(slot)
        while node is not None:
            node.live_count += d_live
            node.id_count += d_id
            parent = node.parent
            if parent is None:
                break
            container, _ = parent
            node = container.host if isinstance(container, MiniNode) else container

    # -- live-snapshot cache maintenance ------------------------------------------

    def invalidate_live_cache(self) -> None:
        """Drop the live-snapshot cache and edit finger.

        Called around structural surgery (flatten rebuilds, disk load,
        ``recount_subtree``): the next snapshot read rebuilds the cache
        with one walk. Invalidation — never staleness — is the
        contract; the generation bump makes downstream derived caches
        (text, lines, snapshots) refresh too.
        """
        self._generation += 1
        self._drop_live_cache()

    def _drop_live_cache(self) -> None:
        """Drop the cache and finger *without* a generation bump: used
        around structural surgery whose result the splice paths cannot
        follow (flatten rebuilds, disk load, recounts)."""
        if self._live is not None:
            self.cache_drops += 1
        self._live = None
        self._live_has_leaf = False
        self._live_leaves = 0
        self._live_total = 0
        self._live_starts = None
        self._finger = None

    def _ensure_live(self) -> Optional[List[Entry]]:
        """The live-snapshot cache, rebuilding it if invalidated.
        Returns None when the cache is disabled."""
        live = self._live
        if live is None and self.cache_enabled:
            live = []
            append = live.append
            leaves = 0
            total = 0
            for entry in iter_subtree_entries(self.root):
                # Slots first (the common case); a leaf's pseudo-state
                # never equals LIVE.
                if entry.state == LIVE:
                    append(entry)
                    total += 1
                elif type(entry) is ArrayLeaf:
                    append(entry)
                    leaves += 1
                    total += entry.live_count
            self._live = live
            self._live_has_leaf = leaves > 0
            self._live_leaves = leaves
            self._live_total = total
            self._live_starts = None
        return live

    def _position_at(self, index: int) -> Tuple[int, int]:
        """``(cache entry position, offset inside that entry)`` covering
        live ``index``; an index at or past the cached total maps to
        ``(len(cache), overshoot)``. Valid cache required."""
        starts = self._live_starts
        if starts is None:
            starts = []
            total = 0
            for entry in self._live:
                starts.append(total)
                total += (
                    entry.live_count if isinstance(entry, ArrayLeaf) else 1
                )
            self._live_starts = starts
        if index >= self._live_total:
            return len(self._live), index - self._live_total
        position = bisect_right(starts, index) - 1
        return position, index - starts[position]

    def _entry_at(self, index: int) -> Tuple[Entry, int]:
        """Cache entry covering live ``index``, plus the offset inside
        it (0 for slots; a *live* atom offset for ArrayLeaf entries).
        Valid cache required."""
        position, offset = self._position_at(index)
        return self._live[position], offset

    def _note_insert(self, slot: AtomSlot) -> None:
        """Record ``slot`` turning LIVE (counts already adjusted).

        Outside a bulk section this splices the cache in place: an
        O(depth) rank query plus an O(n) C-level memmove. That keeps
        single-op editing (type a character, read the line) far cheaper
        than an invalidate-and-rebuild would, at the cost of making a
        *large* document replayed through the legacy one-op-at-a-time
        path quadratic in memmove work — the batch API (one splice per
        batch) is the intended path for bulk replay.
        """
        self._generation += 1
        if self._bulk_deltas is not None:
            self._bulk_added.append(slot)
            return
        live = self._live
        if live is not None:
            rank = self.live_rank(slot)
            if not self._live_has_leaf:
                if rank == len(live):
                    live.append(slot)
                else:
                    live.insert(rank, slot)
                self._live_total += 1
            else:
                # Leaf entries make live indexes differ from entry
                # positions: locate the boundary covering ``rank`` and
                # splice the new slot there, leaving every untouched
                # leaf segment opaque. A rank strictly interior to a
                # leaf entry is impossible — a mutation inside a region
                # explodes it first, and the explode splice replaced
                # the leaf entry already — so an interior hit means the
                # bookkeeping drifted: invalidate, never go stale.
                position, offset = self._position_at(rank)
                if offset:
                    self.invalidate_live_cache()
                    if self.finger_enabled:
                        self._finger = (rank, slot)
                    return
                live.insert(position, slot)
                self._live_starts = None
                self._live_total += 1
                self.cache_splices += 1
            if self.finger_enabled:
                self._finger = (rank, slot)
        elif self.finger_enabled:
            # No cache to index into, but the new slot is the freshest
            # edit location — exactly what the finger wants.
            self._finger = (self.live_rank(slot), slot)

    def _note_remove(self, slot: AtomSlot) -> None:
        """Record ``slot`` leaving the LIVE state (call *before* the
        state flip: the rank query needs the pre-change counts)."""
        self._generation += 1
        if self._bulk_deltas is not None:
            self._bulk_removed = True
            return
        rank: Optional[int] = None
        live = self._live
        if live is not None:
            rank = self.live_rank(slot)
            if not self._live_has_leaf:
                if rank < len(live) and live[rank] is slot:
                    del live[rank]
                    self._live_total -= 1
                else:
                    # Bookkeeping out of sync: the counts' rank and the
                    # cached sequence disagree about this slot.
                    self.invalidate_live_cache()
                    return
            else:
                position, offset = self._position_at(rank)
                if (
                    offset == 0
                    and position < len(live)
                    and live[position] is slot
                ):
                    del live[position]
                    self._live_starts = None
                    self._live_total -= 1
                    self.cache_splices += 1
                else:
                    # The covering entry is not this slot (an interior
                    # leaf offset, or drifted counts): invalidate.
                    self.invalidate_live_cache()
                    return
        finger = self._finger
        if finger is not None:
            if finger[1] is slot:
                self._finger = None
            else:
                if rank is None:
                    rank = self.live_rank(slot)
                if rank < finger[0]:
                    self._finger = (finger[0] - 1, finger[1])

    def hint_bulk_removed_range(self, start: int, end: int) -> None:
        """Tell the open bulk section that its removals are exactly the
        live slots currently at [start, end) (a cache-resolved range
        delete): :meth:`end_bulk` then splices instead of compacting."""
        if self._bulk_deltas is None:
            raise TreeError("removal-range hint outside a bulk section")
        self._bulk_removed_range = (start, end)

    def hint_bulk_added_at(self, index: int) -> None:
        """Tell the open bulk section that its additions are one
        document-order run whose first atom becomes the live slot at
        ``index`` (a local run insert): :meth:`end_bulk` then splices
        there without per-slot rank queries."""
        if self._bulk_deltas is None:
            raise TreeError("added-at hint outside a bulk section")
        self._bulk_added_at = index

    def _flush_bulk_cache(self) -> None:
        """Fold a closed bulk section's slot changes into the cache:
        one compaction pass (or one hinted slice delete) for removals,
        one splice (contiguous runs, the common case) or one ordered
        merge for insertions. Leaf entries are opaque segments spliced
        *around* — explode/collapse inside the section already kept the
        entry list aligned — and only drifted bookkeeping (a hint that
        does not match the changes actually made) invalidates."""
        added = self._bulk_added
        removed = self._bulk_removed
        removed_range = self._bulk_removed_range
        added_at = self._bulk_added_at
        self._bulk_removed_range = None
        self._bulk_added_at = None
        if not added and not removed:
            return
        self._bulk_added = []
        self._bulk_removed = False
        self._finger = None
        live = self._live
        if live is None:
            return
        has_leaf = self._live_has_leaf
        if removed:
            if removed_range is not None and not added:
                start, end = removed_range
                count = end - start
                if not has_leaf:
                    del live[start:end]
                    self._live_total -= count
                else:
                    position, offset = self._position_at(start)
                    # Range deletes explode every overlapping region up
                    # front (live_slice), so the range covers width-1
                    # entries only; an interior leaf offset means the
                    # hint and the cache disagree.
                    if offset or any(
                        type(s) is ArrayLeaf
                        for s in live[position:position + count]
                    ):
                        self.invalidate_live_cache()
                        return
                    del live[position:position + count]
                    self._live_starts = None
                    self._live_total -= count
                    self.cache_splices += 1
                if self._live_total != self.root.live_count:
                    # The hint did not match the removals actually made.
                    self.invalidate_live_cache()
                return
            kept: List[Entry] = []
            total = 0
            for entry in live:
                if entry.state == LIVE:
                    kept.append(entry)
                    total += 1
                elif type(entry) is ArrayLeaf:
                    kept.append(entry)
                    total += entry.live_count
            live = kept
            self._live = live
            self._live_total = total
            if has_leaf:
                self._live_starts = None
                self.cache_splices += 1
        if added:
            if added_at is not None and not removed:
                # A local run insert: the slots land, in batch order, as
                # the contiguous live range starting at the hinted index
                # — splice without any rank queries.
                if not has_leaf:
                    live[added_at:added_at] = added
                else:
                    position, offset = self._position_at(added_at)
                    if offset:
                        self.invalidate_live_cache()
                        return
                    live[position:position] = added
                    self._live_starts = None
                    self.cache_splices += 1
                self._live_total += len(added)
                if self._live_total != self.root.live_count:
                    # The hint did not match the additions actually made.
                    self.invalidate_live_cache()
                return
            seen: set = set()
            pairs: List[Tuple[int, AtomSlot]] = []
            for slot in added:
                key = id(slot)
                # Skip duplicates and slots deleted later in the same
                # batch; ranks are valid now that end_bulk flushed counts.
                if key not in seen and slot.state == LIVE:
                    seen.add(key)
                    pairs.append((self.live_rank(slot), slot))
            total = self.root.live_count
            if self._live_total + len(pairs) != total:
                # A slot re-entered the cache (or bookkeeping drifted):
                # fall back to invalidation, never to staleness.
                self.invalidate_live_cache()
                return
            if not pairs:
                # Every added slot died again within the same batch
                # (insert+delete of the same identifier): nothing to
                # splice.
                return
            pairs.sort(key=lambda pair: pair[0])
            lo = pairs[0][0]
            if pairs[-1][0] - lo == len(pairs) - 1:
                if not has_leaf:
                    live[lo:lo] = [slot for _, slot in pairs]
                else:
                    position, offset = self._position_at(lo)
                    if offset:
                        self.invalidate_live_cache()
                        return
                    live[position:position] = [slot for _, slot in pairs]
                    self._live_starts = None
                    self.cache_splices += 1
                self._live_total = total
            else:
                # Scattered insertions: one ordered merge over entries,
                # advancing a live-index cursor by each entry's width.
                merged: List[Entry] = []
                cursor = 0
                old_index = 0
                old_count = len(live)
                next_added = 0
                npairs = len(pairs)
                while next_added < npairs or old_index < old_count:
                    if next_added < npairs and pairs[next_added][0] == cursor:
                        merged.append(pairs[next_added][1])
                        next_added += 1
                        cursor += 1
                        continue
                    if old_index >= old_count:
                        # A rank points past the end: drifted.
                        self.invalidate_live_cache()
                        return
                    entry = live[old_index]
                    old_index += 1
                    if type(entry) is ArrayLeaf:
                        width = entry.live_count
                        if (
                            next_added < npairs
                            and pairs[next_added][0] < cursor + width
                        ):
                            # A rank interior to a leaf segment: the
                            # region should have exploded first.
                            self.invalidate_live_cache()
                            return
                        merged.append(entry)
                        cursor += width
                    else:
                        merged.append(entry)
                        cursor += 1
                self._live = merged
                self._live_total = total
                if has_leaf:
                    self._live_starts = None
                    self.cache_splices += 1
        if self._live is not None and self._live_total != self.root.live_count:
            # Safety net: every path above must leave the cached widths
            # agreeing with the root's live count.
            self.invalidate_live_cache()

    # -- rank and finger navigation ------------------------------------------------

    def live_rank(self, slot: AtomSlot) -> int:
        """Number of live slots strictly before ``slot`` in identifier
        order, via the cached counts (O(depth)). Requires flushed counts
        (not callable inside a bulk section)."""
        if self._bulk_deltas is not None:
            raise TreeError("live_rank inside a bulk section")
        index = 0
        if isinstance(slot, MiniNode):
            host = slot.host
            if slot.left is not None:
                index += slot.left.live_count
            for mini in host.minis:
                if mini is slot:
                    break
                index += int(mini.state == LIVE)
                if mini.left is not None:
                    index += mini.left.live_count
                if mini.right is not None:
                    index += mini.right.live_count
            index += int(host.plain_state == LIVE)
            if host.left is not None:
                index += host.left.live_count
            node: PosNode = host
        else:
            node = slot
            if node.left is not None:
                index += node.left.live_count
        while node.parent is not None:
            container, bit = node.parent
            if isinstance(container, MiniNode):
                mini = container
                host = mini.host
                if bit == RIGHT:
                    index += int(mini.state == LIVE)
                    if mini.left is not None:
                        index += mini.left.live_count
                for earlier in host.minis:
                    if earlier is mini:
                        break
                    index += int(earlier.state == LIVE)
                    if earlier.left is not None:
                        index += earlier.left.live_count
                    if earlier.right is not None:
                        index += earlier.right.live_count
                index += int(host.plain_state == LIVE)
                if host.left is not None:
                    index += host.left.live_count
                node = host
            else:
                if bit == RIGHT:
                    index += int(container.plain_state == LIVE)
                    if container.left is not None:
                        index += container.left.live_count
                    for mini in container.minis:
                        index += int(mini.state == LIVE)
                        if mini.left is not None:
                            index += mini.left.live_count
                        if mini.right is not None:
                            index += mini.right.live_count
                node = container
        return index

    def _finger_seek(self, index: int) -> Optional[AtomSlot]:
        """Resolve live ``index`` by walking the successor/predecessor
        chain from the edit finger, or None when the finger is unset,
        too far, or the walk exceeds the step cap."""
        finger = self._finger
        if finger is None:
            return None
        position, slot = finger
        if slot.state != LIVE:
            # The finger slot was tombstoned/discarded behind our back;
            # walking from a detached slot is unsafe.
            self._finger = None  # pragma: no cover - defensive
            return None
        distance = index - position
        if distance == 0:
            return slot
        if distance > self.FINGER_WINDOW or -distance > self.FINGER_WINDOW:
            return None
        steps = self.FINGER_STEP_LIMIT
        step = successor_slot if distance > 0 else predecessor_slot
        remaining = distance if distance > 0 else -distance
        current: Optional[AtomSlot] = slot
        while remaining and steps:
            current = step(current)
            if current is None:  # pragma: no cover - counts out of sync
                return None
            steps -= 1
            if current.state == LIVE:
                remaining -= 1
        if remaining:
            return None  # step cap hit inside a tombstone desert
        self._finger = (index, current)
        return current

    # -- bulk sections (the apply_batch fast path) --------------------------------

    def begin_bulk(self) -> None:
        """Open a bulk section: count maintenance is deferred until
        :meth:`end_bulk`. While open, ``live_length`` / ``id_length`` and
        the index-to-slot descent are stale — callers must not read them
        (the Treedoc batch methods resolve every index first).
        """
        if self._bulk_deltas is not None:
            raise TreeError("bulk section already open")
        self._bulk_deltas = {}
        self._bulk_added = []
        self._bulk_removed = False
        self._bulk_removed_range = None
        self._bulk_added_at = None

    def end_bulk(self) -> None:
        """Close the bulk section: propagate the buffered count deltas.

        Deltas are applied level by level, deepest first; a node's delta
        is pushed into its parent's pending entry, so ancestors shared
        by many touched slots are visited once with the merged delta.
        Depths are memoized along shared spines, making the whole flush
        O(distinct spine nodes). Detached (pruned) nodes keep their
        parent links, so deltas buffered before a prune still reach the
        surviving ancestors.
        """
        pending = self._bulk_deltas
        self._bulk_deltas = None
        if not pending:
            self._flush_bulk_cache()
            return
        if len(pending) <= 8:
            # Few touched hosts (one-slot batches, tight edits): plain
            # spine walks beat the level-by-level machinery even with a
            # shared ancestor visited once per entry.
            for node, d_live, d_id in pending.values():
                walker: Optional[PosNode] = node
                while walker is not None:
                    walker.live_count += d_live
                    walker.id_count += d_id
                    walker = parent_host(walker)
            self._flush_bulk_cache()
            return
        depth_cache: Dict[int, int] = {}
        # All nodes reached below stay alive through the entries' strong
        # parent links, so id() keys cannot be reused mid-flush.
        levels: Dict[int, Dict[int, List]] = {}
        max_depth = 0
        for node, d_live, d_id in pending.values():
            trail: List[int] = []
            current: Optional[PosNode] = node
            while True:
                key = id(current)
                depth = depth_cache.get(key)
                if depth is not None:
                    break
                above = parent_host(current)
                if above is None:
                    depth = 0
                    depth_cache[key] = 0
                    break
                trail.append(key)
                current = above
            for key in reversed(trail):
                depth += 1
                depth_cache[key] = depth
            if depth > max_depth:
                max_depth = depth
            levels.setdefault(depth, {})[id(node)] = [node, d_live, d_id]
        for depth in range(max_depth, 0, -1):
            for entry in levels.pop(depth, {}).values():
                node, d_live, d_id = entry
                if d_live == 0 and d_id == 0:
                    continue
                node.live_count += d_live
                node.id_count += d_id
                host = parent_host(node)
                parent_entry = levels.setdefault(depth - 1, {}).get(id(host))
                if parent_entry is None:
                    levels[depth - 1][id(host)] = [host, d_live, d_id]
                else:
                    parent_entry[1] += d_live
                    parent_entry[2] += d_id
        for entry in levels.pop(0, {}).values():
            node, d_live, d_id = entry
            node.live_count += d_live
            node.id_count += d_id
        self._flush_bulk_cache()

    def recount_subtree(self, node: PosNode,
                        old_counts: Optional[Tuple[int, int]] = None
                        ) -> Tuple[int, int]:
        """Recompute ``(live, id)`` counts of ``node``'s subtree bottom-up
        and fix ancestor aggregates by the delta (used after structural
        surgery such as flatten).

        ``old_counts`` must be the subtree's ``(live, id)`` as the
        ancestors last saw them; pass the values captured *before* the
        surgery when the surgery itself rewrote the node's cached counts
        (``build_exploded`` does).
        """
        if self._bulk_deltas is not None:
            raise TreeError("recount_subtree inside a bulk section")
        # Structural surgery: the cached live sequence (and the finger's
        # slot) may no longer exist — invalidate, never go stale.
        self.invalidate_live_cache()
        old = old_counts if old_counts is not None else (
            node.live_count, node.id_count
        )
        new = self._recount(node)
        d_live, d_id = new[0] - old[0], new[1] - old[1]
        parent = node.parent
        while parent is not None:
            container, _ = parent
            host = container.host if isinstance(container, MiniNode) else container
            host.live_count += d_live
            host.id_count += d_id
            parent = host.parent
        return new

    def _recount(self, node: PosNode) -> Tuple[int, int]:
        live = 0
        ids = 0
        # Post-order over position nodes, iteratively (deep trees).
        # Array-leaf children are their own ground truth — counts
        # maintained by construction, dead bitmap included — and are
        # not descended.
        order: List[PosNode] = []
        stack = [node]
        while stack:
            current = stack.pop()
            order.append(current)
            for mini in current.minis:
                if mini.left is not None:
                    stack.append(mini.left)
                if mini.right is not None:
                    stack.append(mini.right)
            for child in (current.left, current.right):
                if child is not None and type(child) is not ArrayLeaf:
                    stack.append(child)
        for current in reversed(order):
            live = int(current.plain_state == LIVE)
            ids = int(current.plain_state != EMPTY)
            for mini in current.minis:
                live += int(mini.state == LIVE)
                ids += int(mini.state != EMPTY)
                for child in (mini.left, mini.right):
                    if child is not None:
                        live += child.live_count
                        ids += child.id_count
            for child in (current.left, current.right):
                if child is not None:
                    live += child.live_count
                    ids += child.id_count
            current.live_count = live
            current.id_count = ids
        return (node.live_count, node.id_count)

    # -- mixed storage: collapse and explode (section 4.2) -----------------------

    #: Leaf size at or above which a targeted explode splits the region
    #: into ``leaf / exploded-core / leaf`` around the touch point
    #: instead of materializing every atom (partial explode).
    PARTIAL_EXPLODE_MIN = 256
    #: Atom count at or below which the partial descent stops splitting
    #: and materializes the remainder as plain canonical structure.
    PARTIAL_CORE_ATOMS = 64
    #: Minimum off-spine side worth keeping collapsed; smaller sides
    #: are materialized into the spine.
    PARTIAL_LEAF_MIN = 8

    def collapse_subtree(self, node: PosNode,
                         atoms: Optional[List[object]] = None,
                         min_atoms: int = 1,
                         dead: int = 0) -> ArrayLeaf:
        """Replace ``node``'s subtree by an :class:`ArrayLeaf` holding
        its atoms — zero per-atom metadata.

        The subtree must be in canonical exploded form (fully live,
        fully plain, :func:`repro.core.node.collect_array_atoms`) — or,
        for the tombstone-tolerant form, canonical in *shape* with
        stable SDIS tombstones at the offsets of the ``dead`` bitmap
        (:func:`repro.core.node.collect_leaf_slots`, which the caller
        must have run to produce ``atoms`` and ``dead``). Either way a
        later explode-on-touch rebuilds the identical structure and the
        transformation is invisible to remote operations; that is what
        makes collapse a purely local decision needing no replication.

        Counts are unchanged — the leaf reports the region's visible
        atoms and used identifiers as its aggregates — so no ancestor
        propagation happens; the snapshot cache is *spliced* (the
        region's slot entries fold into one leaf entry) without bumping
        the generation, since the visible content is untouched.
        """
        if self._bulk_deltas is not None:
            raise TreeError("collapse inside a bulk section")
        parent = node.parent
        if node is self.root or parent is None:
            raise TreeError("cannot collapse the root region")
        container, bit = parent
        if isinstance(container, MiniNode):
            raise TreeError("collapse regions must hang at plain children")
        if container.child(bit) is not node:
            raise TreeError("collapse region detached from its container")
        if atoms is None:
            atoms = collect_array_atoms(node, min_atoms)
            if atoms is None:
                raise TreeError(
                    "subtree is not an array-representable canonical region"
                )
        region_live = [
            entry for entry in iter_subtree_entries(node)
            if entry.state == LIVE or type(entry) is ArrayLeaf
        ]
        leaf = ArrayLeaf((container, bit), list(atoms), self, dead=dead)
        container.set_child(bit, leaf)
        self._splice_collapsed(region_live, leaf)
        return leaf

    def _splice_collapsed(self, region_live: List[Entry],
                          leaf: ArrayLeaf) -> None:
        """Replace a collapsed region's cache entries (its live slots
        and sub-leaves, contiguous in document order) by the one new
        leaf entry."""
        live = self._live
        if live is None:
            return
        if not region_live:  # pragma: no cover - leaves hold >=1 atom
            self.invalidate_live_cache()
            return
        try:
            position = live.index(region_live[0])
        except ValueError:
            self.invalidate_live_cache()
            return
        count = len(region_live)
        window = live[position:position + count]
        if len(window) != count or any(
            a is not b for a, b in zip(window, region_live)
        ):
            # The cache disagrees about the region's entries: drifted.
            self.invalidate_live_cache()
            return
        swallowed = sum(1 for e in region_live if type(e) is ArrayLeaf)
        live[position:position + count] = [leaf]
        self._live_leaves += 1 - swallowed
        self._live_has_leaf = self._live_leaves > 0
        self._live_starts = None
        self.cache_splices += 1
        # The finger may anchor on a slot the collapse just replaced;
        # it rebuilds cheaply, so drop it outright (collapse is rare).
        self._finger = None

    def explode_leaf(self, leaf: ArrayLeaf,
                     around: Optional[int] = None) -> PosNode:
        """Rebuild a collapsed region as tree structure, in place
        (section 4.2.1's implicit explode: deterministic and local, so
        all replicas touching the region independently agree).

        ``around``, when given, is the slot offset (index into
        ``leaf.atoms``) the caller is about to touch: a large enough
        tombstone-free leaf then explodes *partially* — real canonical
        structure along the spine to that atom, off-spine sides kept
        collapsed as sub-leaves — bounding the work to O(edit) instead
        of O(region). The partial form is a strict subset of the full
        canonical form, so replicas stay PosID-identical either way.

        Returns the new subtree root. Counts are unchanged; the cache
        entry for the leaf is *spliced* into the replacement subtree's
        live entries without a generation bump. Safe inside a bulk
        section — remote batch paths resolve into leaves mid-batch —
        because no count deltas are involved.
        """
        parent = leaf.parent
        if parent is None:
            raise TreeError("array leaf already exploded")
        container, bit = parent
        if container.child(bit) is not leaf:
            raise TreeError("array leaf detached from its container")
        node = PosNode(parent=(container, bit))
        atoms = leaf.atoms
        if (
            around is not None
            and not leaf.dead
            and len(atoms) >= self.PARTIAL_EXPLODE_MIN
        ):
            build_partial_exploded(
                node, atoms, min(max(around, 0), len(atoms) - 1),
                core_atoms=self.PARTIAL_CORE_ATOMS,
                leaf_min=self.PARTIAL_LEAF_MIN,
                tree=self,
            )
            self.partial_explodes += 1
        else:
            if leaf.dead:
                build_exploded_with_dead(node, atoms, leaf.dead)
            else:
                build_exploded(node, atoms)
            self.explodes += 1
        container.set_child(bit, node)
        depth = slot_depth(container) + leaf.implicit_depth
        # Fully detach the husk: clearing the tree backref (not just the
        # parent link) means a stray reference to the dead leaf cannot
        # pin the whole tree, and the husk's own death never needs the
        # cycle collector (gc.disable() deployments).
        leaf.parent = None
        leaf.tree = None
        if depth > self.height:
            self.height = depth
        self._splice_exploded(leaf, node)
        listener = self._explode_listener
        if listener is not None:
            # The owning document may already be gone (husk trees,
            # teardown order) — then there is nobody to notify.
            owner = listener()
            if owner is not None:
                owner._on_explode(node)
        return node

    def _splice_exploded(self, leaf: ArrayLeaf, node: PosNode) -> None:
        """Replace the exploded leaf's cache entry by the live entries
        of its replacement subtree (same total width, so the rest of
        the cache — and the edit finger — stays valid, even inside a
        bulk section)."""
        live = self._live
        if live is None:
            return
        try:
            position = live.index(leaf)
        except ValueError:
            # A cache that does not know one of the tree's leaves is
            # out of sync; invalidate, never go stale.
            self.invalidate_live_cache()
            return
        entries: List[Entry] = []
        leaves = 0
        for entry in iter_subtree_entries(node):
            if entry.state == LIVE:
                entries.append(entry)
            elif type(entry) is ArrayLeaf:
                entries.append(entry)
                leaves += 1
        live[position:position + 1] = entries
        self._live_leaves += leaves - 1
        self._live_has_leaf = self._live_leaves > 0
        self._live_starts = None
        self.cache_splices += 1

    def iter_entries(self) -> Iterator[Entry]:
        """All storage entries in identifier order: atom slots plus one
        entry per collapsed region."""
        return iter_subtree_entries(self.root)

    def array_leaves(self) -> List[ArrayLeaf]:
        """The collapsed regions, in document order."""
        return [
            entry for entry in iter_subtree_entries(self.root)
            if isinstance(entry, ArrayLeaf)
        ]

    def walk_atoms(self) -> List[object]:
        """Visible atoms by a fresh entry walk — never the cache, never
        exploding (the mixed-storage reference the property tests check
        reads against)."""
        atoms: List[object] = []
        append = atoms.append
        for entry in iter_subtree_entries(self.root):
            if entry.state == LIVE:
                append(entry.atom)
            elif type(entry) is ArrayLeaf:
                atoms.extend(entry.live_atoms())
        return atoms

    # -- slot state changes ------------------------------------------------------

    def set_live(self, slot: AtomSlot, atom: object) -> None:
        """Place ``atom`` in ``slot`` (must be EMPTY)."""
        if slot.state != EMPTY:
            raise TreeError(f"slot {slot_posid(slot)!r} is not empty")
        slot.state = LIVE
        slot.atom = atom
        self._adjust_counts(slot, +1, +1)
        self._note_insert(slot)

    def make_tombstone(self, slot: AtomSlot) -> None:
        """Delete the slot's atom, keeping the identifier used (SDIS)."""
        if slot.state != LIVE:
            raise MissingAtomError(f"no live atom at {slot_posid(slot)!r}")
        self._note_remove(slot)
        slot.state = TOMBSTONE
        slot.atom = None
        self._adjust_counts(slot, -1, 0)

    def discard(self, slot: AtomSlot) -> None:
        """Delete the slot's atom and free its identifier (UDIS), pruning
        any structure that becomes empty and leaf-less."""
        if slot.state != LIVE:
            raise MissingAtomError(f"no live atom at {slot_posid(slot)!r}")
        self._note_remove(slot)
        slot.state = EMPTY
        slot.atom = None
        self._adjust_counts(slot, -1, -1)
        self._prune_from(slot)

    def purge_tombstone(self, slot: AtomSlot) -> None:
        """Free a tombstoned identifier (SDIS garbage collection, once
        the delete is known causally stable — section 4.2).

        The live sequence is untouched (tombstones are invisible), so
        the snapshot cache stays valid; only a finger whose chain could
        route through the pruned structure needs care — the finger
        anchors on a *live* slot, which pruning never removes.
        """
        if slot.state != TOMBSTONE:
            raise MissingAtomError(f"no tombstone at {slot_posid(slot)!r}")
        slot.state = EMPTY
        slot.atom = None
        self._adjust_counts(slot, 0, -1)
        self._prune_from(slot)

    def _prune_from(self, slot: AtomSlot) -> None:
        """Remove now-useless structure starting at ``slot`` (3.3.1):
        empty leaf mini-nodes go immediately; position nodes with no
        content and no children follow, cascading upward."""
        if isinstance(slot, MiniNode):
            if slot.state != EMPTY or not slot.is_leaf:
                return
            host = slot.host
            host.remove_mini(slot)
            node: Optional[PosNode] = host
        else:
            node = slot
        while node is not None and node is not self.root:
            if not node.is_structurally_empty:
                return
            parent = node.parent
            if parent is None:
                return
            container, bit = parent
            container.set_child(bit, None)
            if isinstance(container, MiniNode):
                if container.state == EMPTY and container.is_leaf:
                    host = container.host
                    host.remove_mini(container)
                    node = host
                else:
                    return
            else:
                node = container

    # -- remote operation application ---------------------------------------------

    def apply_insert(self, posid: PosID, atom: object) -> AtomSlot:
        """Replay ``insert(posid, atom)``; idempotent for exact duplicates."""
        slot = self.materialize(posid)
        if slot.state == LIVE:
            if slot.atom == atom:
                return slot  # duplicate delivery of the same operation
            raise TreeError(f"conflicting atom already at {posid!r}")
        if slot.state == TOMBSTONE:
            # Insert happened-before any delete of the same PosID, so a
            # tombstone here means causal delivery was violated.
            raise TreeError(f"insert at tombstoned identifier {posid!r}")
        self.set_live(slot, atom)
        return slot

    def apply_delete(self, posid: PosID, keep_tombstone: bool) -> Optional[AtomSlot]:
        """Replay ``delete(posid)``; idempotent (section 2.2)."""
        slot = self.lookup(posid)
        if slot is None or slot.state != LIVE:
            # Already deleted (and possibly discarded): deletes commute
            # and are idempotent, so this is a no-op.
            return None
        if keep_tombstone:
            self.make_tombstone(slot)
        else:
            self.discard(slot)
        return slot

    # -- index navigation -----------------------------------------------------------

    @property
    def live_length(self) -> int:
        """Number of visible atoms."""
        return self.root.live_count

    @property
    def id_length(self) -> int:
        """Number of used identifiers (visible atoms + tombstones)."""
        return self.root.id_count

    def live_slot_at(self, index: int) -> AtomSlot:
        """Slot of the ``index``-th visible atom (0-based).

        O(1) off the live-snapshot cache when valid; otherwise a finger
        chain walk for nearby indexes, falling back to the O(depth)
        count descent. An index inside a collapsed region explodes it —
        the caller wants a real slot, which precedes an edit; use
        :meth:`live_atom_at` / :meth:`live_posid_at` for pure reads that
        should leave quiescent regions collapsed.
        """
        if index < 0 or index >= self.root.live_count:
            raise IndexError(f"visible index {index} out of range")
        live = self._live
        if live is not None:
            if not self._live_has_leaf:
                return live[index]
            entry, offset = self._entry_at(index)
            # Explode around the touched atom; the splice keeps the
            # cache valid, so re-resolving the index stays cheap. A
            # partial explode can leave the index inside a sub-leaf,
            # hence the loop (each pass shrinks the covering leaf).
            while isinstance(entry, ArrayLeaf) and self._live is not None:
                self.explode_leaf(entry, entry.live_to_slot(offset))
                if self._live is None:
                    break  # splice drifted: fall back to a descent
                entry, offset = self._entry_at(index)
            if self._live is not None:
                if self.finger_enabled:
                    self._finger = (index, entry)
                return entry
        if self.finger_enabled:
            slot = self._finger_seek(index)
            if slot is not None:
                return slot
        slot = self._slot_at(index, live=True)
        if self.finger_enabled:
            self._finger = (index, slot)
        return slot

    def live_atom_at(self, index: int) -> object:
        """The ``index``-th visible atom — a pure read: served straight
        from a collapsed region's array without exploding it."""
        if index < 0 or index >= self.root.live_count:
            raise IndexError(f"visible index {index} out of range")
        if self._ensure_live() is not None:
            if not self._live_has_leaf:
                return self._live[index].atom
            entry, offset = self._entry_at(index)
            if isinstance(entry, ArrayLeaf):
                return entry.live_atom(offset)
            return entry.atom
        return self.live_slot_at(index).atom

    def live_posid_at(self, index: int) -> PosID:
        """PosID of the ``index``-th visible atom — a pure read: a
        collapsed region answers from its implied canonical structure
        without exploding."""
        if index < 0 or index >= self.root.live_count:
            raise IndexError(f"visible index {index} out of range")
        if self._ensure_live() is not None and self._live_has_leaf:
            entry, offset = self._entry_at(index)
            if isinstance(entry, ArrayLeaf):
                bits = canonical_path_bits(
                    len(entry.atoms), entry.live_to_slot(offset)
                )
                return PosID(
                    entry.base_elements()
                    + tuple(PathElement(bit) for bit in bits)
                )
            return slot_posid(entry)
        return slot_posid(self.live_slot_at(index))

    def live_slice(self, start: int, end: int) -> Optional[List[AtomSlot]]:
        """Slots of the visible atoms in ``[start, end)`` straight off
        the snapshot cache, or None when the cache is unavailable (the
        caller then falls back to a descent-plus-successor walk).

        Collapsed regions overlapping the range are exploded first —
        the callers (range deletes, lock checks) need real slots."""
        live = self._live
        if live is None:
            return None
        if not self._live_has_leaf:
            return live[start:end]
        # Slice semantics for degenerate ranges, exactly like the flat
        # path's live[start:end] (no explosion side effects).
        if start >= end or start >= self.root.live_count:
            return []
        while True:
            live = self._ensure_live()
            if live is None:  # pragma: no cover - cache disabled mid-loop
                return None
            if not self._live_has_leaf:
                return live[start:end]
            self._entry_at(start)  # materialize the starts index
            starts = self._live_starts
            first = bisect_right(starts, start) - 1
            overlapping: List[Tuple[ArrayLeaf, int]] = []
            position = first
            while position < len(live) and starts[position] < end:
                entry = live[position]
                if type(entry) is ArrayLeaf:
                    overlapping.append((entry, starts[position]))
                position += 1
            if not overlapping:
                # Every entry overlapping the range is a slot: with the
                # leaves all outside it, entry widths inside are 1.
                return live[first:first + (end - start)]
            # Explode every overlapping region — around the first
            # touched atom when the range only grazes the leaf, so a
            # big region clipped at one edge materializes a spine, not
            # everything. Captured starts stay correct across splices
            # (explode preserves widths). A wide overlap explodes
            # whole: a partial form would re-explode its sub-leaves
            # pass after pass.
            for leaf, leaf_start in overlapping:
                lo = max(start - leaf_start, 0)
                hi = min(end - leaf_start, leaf.live_count)
                if hi - lo <= self.PARTIAL_CORE_ATOMS:
                    self.explode_leaf(leaf, leaf.live_to_slot(lo))
                else:
                    self.explode_leaf(leaf)

    def id_slot_at(self, index: int) -> AtomSlot:
        """Slot of the ``index``-th used identifier (0-based)."""
        if index < 0 or index >= self.root.id_count:
            raise IndexError(f"identifier index {index} out of range")
        return self._slot_at(index, live=False)

    def _slot_at(self, index: int, live: bool) -> AtomSlot:
        def slot_weight(slot: AtomSlot) -> int:
            if live:
                return int(slot.state == LIVE)
            return int(slot.state != EMPTY)

        def node_weight(node: Optional[PosNode]) -> int:
            if node is None:
                return 0
            return node.live_count if live else node.id_count

        node = self.root
        while True:
            weight = node_weight(node.left)
            if index < weight:
                node = node.left
                if type(node) is ArrayLeaf:
                    # ``index`` is the offset inside the region (live
                    # descents over a dead-free leaf: live offset ==
                    # slot offset; a dead-bearing leaf always explodes
                    # fully, so the hint only picks the spine there).
                    node = node.explode(index)
                continue
            index -= weight
            weight = slot_weight(node)
            if index < weight:
                return node
            index -= weight
            descended = False
            for mini in node.minis:
                weight = node_weight(mini.left)
                if index < weight:
                    node = _as_node(mini.left)
                    descended = True
                    break
                index -= weight
                weight = slot_weight(mini)
                if index < weight:
                    return mini
                index -= weight
                weight = node_weight(mini.right)
                if index < weight:
                    node = _as_node(mini.right)
                    descended = True
                    break
                index -= weight
            if descended:
                continue
            if node.right is None:
                raise TreeError("count bookkeeping out of sync")
            node = node.right
            if type(node) is ArrayLeaf:
                node = node.explode(index)

    # -- iteration --------------------------------------------------------------------

    def iter_slots(self) -> Iterator[AtomSlot]:
        """All slots in identifier order (including EMPTY ones)."""
        return self.root.iter_slots()

    def iter_id_slots(self) -> Iterator[AtomSlot]:
        """Used-identifier slots (LIVE and TOMBSTONE) in order."""
        return (s for s in self.iter_slots() if slot_is_id_holder(s))

    def iter_live_slots(self) -> Iterator[AtomSlot]:
        """Visible atom slots in document order — always a *fresh* tree
        walk, never the cache (the property tests use it as the
        reference the snapshot cache is checked against)."""
        return (s for s in self.iter_slots() if slot_is_live(s))

    def live_slots(self) -> List[AtomSlot]:
        """Visible atom slots in document order, off the snapshot cache
        (amortized O(n) copy; rebuilds the cache when invalidated).
        Promises real slots, so collapsed regions are exploded first —
        all of them, then one rebuild — whether or not the cache is
        enabled."""
        for leaf in self.array_leaves():
            self.explode_leaf(leaf)
        live = self._ensure_live()
        if live is not None:
            return list(live)
        return [s for s in self.iter_slots() if slot_is_live(s)]

    def atoms(self) -> List[object]:
        """The visible document content as a list of atoms (a collapsed
        region contributes its array in one ``extend``)."""
        live = self._ensure_live()
        if live is not None:
            if not self._live_has_leaf:
                return [slot.atom for slot in live]
            atoms: List[object] = []
            for entry in live:
                if isinstance(entry, ArrayLeaf):
                    atoms.extend(entry.live_atoms())
                else:
                    atoms.append(entry.atom)
            return atoms
        return self.walk_atoms()

    def posids(self) -> List[PosID]:
        """PosIDs of all visible atoms, in document order (collapsed
        regions answer from their implied canonical paths)."""
        live = self._ensure_live()
        if live is not None and not self._live_has_leaf:
            return [slot_posid(slot) for slot in live]
        entries = live if live is not None else iter_subtree_entries(self.root)
        posids: List[PosID] = []
        for entry in entries:
            if isinstance(entry, ArrayLeaf):
                posids.extend(entry.posids())
            elif entry.state == LIVE:
                posids.append(slot_posid(entry))
        return posids

    def first_slot(self) -> Optional[AtomSlot]:
        """The first slot in identifier order, if any structure exists."""
        return _leftmost_slot(self.root)

    def next_id_holder(self, slot: Optional[AtomSlot]) -> Optional[AtomSlot]:
        """First used-identifier slot strictly after ``slot`` (or from the
        start of the document when ``slot`` is None)."""
        current = _leftmost_slot(self.root) if slot is None else successor_slot(slot)
        while current is not None and not slot_is_id_holder(current):
            current = successor_slot(current)
        return current

    def gap_slots(self, after: Optional[AtomSlot],
                  before: Optional[AtomSlot]) -> Iterator[AtomSlot]:
        """Slots strictly between ``after`` and ``before`` in infix order
        (None bounds mean document start / end). The caller guarantees
        ``after`` precedes ``before``; iteration stops at ``before``."""
        current = (
            _leftmost_slot(self.root) if after is None else successor_slot(after)
        )
        while current is not None and current is not before:
            yield current
            current = successor_slot(current)

    # -- integrity ---------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Validate counts, ordering, parent links, slot states and
        array-leaf boundaries.

        Raises :class:`TreeError` on the first violation. Used by tests
        and by the failure-injection harness; not called on hot paths.
        """
        cached_live = self._live
        if cached_live is not None:
            fresh: List[Entry] = [
                entry for entry in iter_subtree_entries(self.root)
                if isinstance(entry, ArrayLeaf) or entry.state == LIVE
            ]
            if len(fresh) != len(cached_live) or any(
                a is not b for a, b in zip(fresh, cached_live)
            ):
                raise TreeError("live-snapshot cache out of sync")
        before = (self.root.live_count, self.root.id_count)
        live, ids = self.recount_subtree(self.root)
        if (live, ids) != before:
            raise TreeError("aggregate counts inconsistent")  # pragma: no cover
        # recount_subtree invalidated the cache defensively; it was just
        # verified against a fresh walk, so reinstate it (widths
        # recomputed — the invalidation zeroed them).
        self._live = cached_live
        if cached_live is not None:
            leaves = 0
            total = 0
            for entry in cached_live:
                if isinstance(entry, ArrayLeaf):
                    leaves += 1
                    total += entry.live_count
                else:
                    total += 1
            self._live_has_leaf = leaves > 0
            self._live_leaves = leaves
            self._live_total = total
            if total != self.root.live_count:
                raise TreeError("live-snapshot cache width out of sync")
        previous: Optional[PosID] = None
        for entry in iter_subtree_entries(self.root):
            if isinstance(entry, ArrayLeaf):
                previous = self._check_leaf(entry, previous)
                continue
            slot = entry
            host = slot_host(slot)
            node: Optional[PosNode] = host
            hops = 0
            while node is not None and node.parent is not None:
                container, bit = node.parent
                if container.child(bit) is not node:
                    raise TreeError("broken parent link")
                node = (
                    container.host
                    if isinstance(container, MiniNode)
                    else container
                )
                hops += 1
                if hops > 100000:
                    raise TreeError("parent chain does not terminate")
            if node is not self.root:
                raise TreeError("slot not reachable from the root")
            if slot.state == LIVE and host.plain_state == LIVE and (
                isinstance(slot, MiniNode)
            ):
                raise TreeError(
                    "live plain atom coexists with live mini-node "
                    f"at {slot_posid(slot)!r}"
                )
            if slot_is_id_holder(slot):
                posid = slot_posid(slot)
                if self.lookup(posid) is not slot:
                    raise TreeError(f"posid round-trip failed for {posid!r}")
                if previous is not None and not previous < posid:
                    raise TreeError(
                        f"identifier order violated: {previous!r} !< {posid!r}"
                    )
                previous = posid

    def _check_leaf(self, leaf: ArrayLeaf,
                    previous: Optional[PosID]) -> PosID:
        """Validate one collapsed region: attachment, ownership, and the
        identifier order of its implied canonical region against its
        neighbours. Returns the region's last PosID."""
        if not leaf.atoms:
            raise TreeError("empty array leaf")  # pragma: no cover
        if leaf.dead < 0 or leaf.dead >> len(leaf.atoms):
            raise TreeError("dead bitmap wider than the atom array")
        if leaf.live_count != len(leaf.atoms) - leaf.dead.bit_count():
            raise TreeError("array-leaf live count out of sync")
        if leaf.live_count < 1:
            raise TreeError("array leaf with no visible atoms")
        if leaf.tree is not self:
            raise TreeError("array leaf owned by a different tree")
        parent = leaf.parent
        if parent is None:
            raise TreeError("detached array leaf still reachable")
        container, bit = parent
        if isinstance(container, MiniNode):
            raise TreeError("array leaf attached under a mini-node")
        if container.child(bit) is not leaf:
            raise TreeError("broken parent link at array leaf")
        region = leaf.id_posids()
        if any(not a < b for a, b in zip(region, region[1:])):
            raise TreeError("array-leaf region out of order")  # pragma: no cover
        if previous is not None and not previous < region[0]:
            raise TreeError(
                f"identifier order violated at array leaf: "
                f"{previous!r} !< {region[0]!r}"
            )
        return region[-1]
