"""The Treedoc tree: storage, lookup, counts and infix navigation.

This module implements the mutable tree that backs a Treedoc replica:
materializing identifier paths into nodes, applying remote inserts and
deletes, tombstone bookkeeping (SDIS) or discard-and-prune (UDIS),
index-to-slot descent via cached counts, and O(depth) infix successor /
predecessor walks over atom slots (used by the tombstone-aware neighbour
search and by the allocator's empty-slot reuse).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.disambiguator import Disambiguator
from repro.core.node import (
    EMPTY,
    LIVE,
    TOMBSTONE,
    AtomSlot,
    MiniNode,
    PosNode,
    parent_host,
    slot_host,
    slot_is_id_holder,
    slot_is_live,
    slot_posid,
)
from repro.core.path import LEFT, RIGHT, PosID
from repro.errors import MissingAtomError, TreeError


def _leftmost_slot(node: PosNode) -> AtomSlot:
    """First slot (in infix order) of the subtree rooted at ``node``."""
    while node.left is not None:
        node = node.left
    return node


def _mini_region_first(mini: MiniNode) -> AtomSlot:
    """First slot of a mini-node's region (its left subtree, then it)."""
    if mini.left is not None:
        return _leftmost_slot(mini.left)
    return mini


def _rightmost_slot(node: PosNode) -> AtomSlot:
    """Last slot (in infix order) of the subtree rooted at ``node``."""
    while True:
        if node.right is not None:
            node = node.right
            continue
        if node.minis:
            mini = node.minis[-1]
            if mini.right is not None:
                node = mini.right
                continue
            return mini
        return node


def _mini_index(host: PosNode, mini: MiniNode) -> int:
    """Position of ``mini`` within its host's sorted mini list."""
    for index, candidate in enumerate(host.minis):
        if candidate is mini:
            return index
    raise TreeError("mini-node not attached to its host")


def _after_mini_region(host: PosNode, index: int) -> Optional[AtomSlot]:
    """Slot following the region of ``host.minis[index]``, within or
    above ``host``."""
    if index + 1 < len(host.minis):
        return _mini_region_first(host.minis[index + 1])
    if host.right is not None:
        return _leftmost_slot(host.right)
    return _up_successor(host)


def _up_successor(node: PosNode) -> Optional[AtomSlot]:
    """Slot following the entire subtree rooted at ``node``."""
    while True:
        parent = node.parent
        if parent is None:
            return None
        container, bit = parent
        if isinstance(container, MiniNode):
            if bit == LEFT:
                return container
            host = container.host
            return _after_mini_region(host, _mini_index(host, container))
        if bit == LEFT:
            return container
        node = container


def successor_slot(slot: AtomSlot) -> Optional[AtomSlot]:
    """The next atom slot in identifier order, or None at the end."""
    if isinstance(slot, MiniNode):
        if slot.right is not None:
            return _leftmost_slot(slot.right)
        host = slot.host
        return _after_mini_region(host, _mini_index(host, slot))
    # A position node's plain slot: next is its first mini region, then
    # its right subtree, then upwards.
    node = slot
    if node.minis:
        return _mini_region_first(node.minis[0])
    if node.right is not None:
        return _leftmost_slot(node.right)
    return _up_successor(node)


def _before_mini_region(host: PosNode, index: int) -> AtomSlot:
    """Slot preceding the region of ``host.minis[index]``."""
    if index > 0:
        previous = host.minis[index - 1]
        if previous.right is not None:
            return _rightmost_slot(previous.right)
        return previous
    return host  # the host's plain slot precedes its first mini


def _up_predecessor(node: PosNode) -> Optional[AtomSlot]:
    """Slot preceding the entire subtree rooted at ``node``."""
    while True:
        parent = node.parent
        if parent is None:
            return None
        container, bit = parent
        if isinstance(container, MiniNode):
            if bit == RIGHT:
                return container
            host = container.host
            return _before_mini_region(host, _mini_index(host, container))
        if bit == RIGHT:
            if container.minis:
                mini = container.minis[-1]
                if mini.right is not None:
                    return _rightmost_slot(mini.right)
                return mini
            return container
        node = container


def predecessor_slot(slot: AtomSlot) -> Optional[AtomSlot]:
    """The previous atom slot in identifier order, or None at the start."""
    if isinstance(slot, MiniNode):
        if slot.left is not None:
            return _rightmost_slot(slot.left)
        host = slot.host
        return _before_mini_region(host, _mini_index(host, slot))
    node = slot
    if node.left is not None:
        return _rightmost_slot(node.left)
    return _up_predecessor(node)


class TreedocTree:
    """The extended binary tree backing one Treedoc replica."""

    def __init__(self) -> None:
        self.root = PosNode()
        #: Deepest path length materialized so far (drives the balancing
        #: growth factor of section 4.1).
        self.height = 0
        #: When a bulk section is open, per-host (live, id) count deltas
        #: accumulate here instead of walking the spine per slot change;
        #: entries hold the node reference so ``id()`` keys stay unique.
        self._bulk_deltas: Optional[Dict[int, List]] = None

    # -- path <-> structure ---------------------------------------------------

    def materialize(self, posid: PosID) -> AtomSlot:
        """Walk ``posid``, creating missing structure; return its slot.

        Re-creates discarded ancestors, as the replay version of insert
        must under UDIS (section 3.3.1).
        """
        context: AtomSlot = self.root
        for element in posid:
            child = context.child(element.bit)
            if child is None:
                child = PosNode(parent=(context, element.bit))
                context.set_child(element.bit, child)
            if element.dis is None:
                context = child
            else:
                context = child.get_or_create_mini(element.dis)
        if posid.depth > self.height:
            self.height = posid.depth
        return context

    def lookup(self, posid: PosID) -> Optional[AtomSlot]:
        """The slot named by ``posid`` if its structure exists, else None."""
        context: AtomSlot = self.root
        for element in posid:
            child = context.child(element.bit)
            if child is None:
                return None
            if element.dis is None:
                context = child
            else:
                mini = child.find_mini(element.dis)
                if mini is None:
                    return None
                context = mini
        return context

    # -- counts ----------------------------------------------------------------

    def _adjust_counts(self, slot: AtomSlot, d_live: int, d_id: int) -> None:
        """Propagate a slot-state change up the position-node spine.

        Inside a bulk section the delta is buffered at the slot's host
        instead; :meth:`end_bulk` propagates every buffered delta in one
        bottom-up pass, so a batch touching *n* slots under a shared
        subtree costs the shared spine once instead of *n* times.
        """
        if d_live == 0 and d_id == 0:
            return
        if self._bulk_deltas is not None:
            host = slot_host(slot)
            entry = self._bulk_deltas.get(id(host))
            if entry is None:
                self._bulk_deltas[id(host)] = [host, d_live, d_id]
            else:
                entry[1] += d_live
                entry[2] += d_id
            return
        node: Optional[PosNode] = slot_host(slot)
        while node is not None:
            node.live_count += d_live
            node.id_count += d_id
            parent = node.parent
            if parent is None:
                break
            container, _ = parent
            node = container.host if isinstance(container, MiniNode) else container

    # -- bulk sections (the apply_batch fast path) --------------------------------

    def begin_bulk(self) -> None:
        """Open a bulk section: count maintenance is deferred until
        :meth:`end_bulk`. While open, ``live_length`` / ``id_length`` and
        the index-to-slot descent are stale — callers must not read them
        (the Treedoc batch methods resolve every index first).
        """
        if self._bulk_deltas is not None:
            raise TreeError("bulk section already open")
        self._bulk_deltas = {}

    def end_bulk(self) -> None:
        """Close the bulk section: propagate the buffered count deltas.

        Deltas are applied level by level, deepest first; a node's delta
        is pushed into its parent's pending entry, so ancestors shared
        by many touched slots are visited once with the merged delta.
        Depths are memoized along shared spines, making the whole flush
        O(distinct spine nodes). Detached (pruned) nodes keep their
        parent links, so deltas buffered before a prune still reach the
        surviving ancestors.
        """
        pending = self._bulk_deltas
        self._bulk_deltas = None
        if not pending:
            return
        depth_cache: Dict[int, int] = {}
        # All nodes reached below stay alive through the entries' strong
        # parent links, so id() keys cannot be reused mid-flush.
        levels: Dict[int, Dict[int, List]] = {}
        max_depth = 0
        for node, d_live, d_id in pending.values():
            trail: List[int] = []
            current: Optional[PosNode] = node
            while True:
                key = id(current)
                depth = depth_cache.get(key)
                if depth is not None:
                    break
                above = parent_host(current)
                if above is None:
                    depth = 0
                    depth_cache[key] = 0
                    break
                trail.append(key)
                current = above
            for key in reversed(trail):
                depth += 1
                depth_cache[key] = depth
            if depth > max_depth:
                max_depth = depth
            levels.setdefault(depth, {})[id(node)] = [node, d_live, d_id]
        for depth in range(max_depth, 0, -1):
            for entry in levels.pop(depth, {}).values():
                node, d_live, d_id = entry
                if d_live == 0 and d_id == 0:
                    continue
                node.live_count += d_live
                node.id_count += d_id
                host = parent_host(node)
                parent_entry = levels.setdefault(depth - 1, {}).get(id(host))
                if parent_entry is None:
                    levels[depth - 1][id(host)] = [host, d_live, d_id]
                else:
                    parent_entry[1] += d_live
                    parent_entry[2] += d_id
        for entry in levels.pop(0, {}).values():
            node, d_live, d_id = entry
            node.live_count += d_live
            node.id_count += d_id

    def recount_subtree(self, node: PosNode,
                        old_counts: Optional[Tuple[int, int]] = None
                        ) -> Tuple[int, int]:
        """Recompute ``(live, id)`` counts of ``node``'s subtree bottom-up
        and fix ancestor aggregates by the delta (used after structural
        surgery such as flatten).

        ``old_counts`` must be the subtree's ``(live, id)`` as the
        ancestors last saw them; pass the values captured *before* the
        surgery when the surgery itself rewrote the node's cached counts
        (``build_exploded`` does).
        """
        if self._bulk_deltas is not None:
            raise TreeError("recount_subtree inside a bulk section")
        old = old_counts if old_counts is not None else (
            node.live_count, node.id_count
        )
        new = self._recount(node)
        d_live, d_id = new[0] - old[0], new[1] - old[1]
        parent = node.parent
        while parent is not None:
            container, _ = parent
            host = container.host if isinstance(container, MiniNode) else container
            host.live_count += d_live
            host.id_count += d_id
            parent = host.parent
        return new

    def _recount(self, node: PosNode) -> Tuple[int, int]:
        live = 0
        ids = 0
        # Post-order over position nodes, iteratively (deep trees).
        order: List[PosNode] = []
        stack = [node]
        while stack:
            current = stack.pop()
            order.append(current)
            for mini in current.minis:
                if mini.left is not None:
                    stack.append(mini.left)
                if mini.right is not None:
                    stack.append(mini.right)
            if current.left is not None:
                stack.append(current.left)
            if current.right is not None:
                stack.append(current.right)
        for current in reversed(order):
            live = int(current.plain_state == LIVE)
            ids = int(current.plain_state != EMPTY)
            for mini in current.minis:
                live += int(mini.state == LIVE)
                ids += int(mini.state != EMPTY)
                for child in (mini.left, mini.right):
                    if child is not None:
                        live += child.live_count
                        ids += child.id_count
            for child in (current.left, current.right):
                if child is not None:
                    live += child.live_count
                    ids += child.id_count
            current.live_count = live
            current.id_count = ids
        return (node.live_count, node.id_count)

    # -- slot state changes ------------------------------------------------------

    def set_live(self, slot: AtomSlot, atom: object) -> None:
        """Place ``atom`` in ``slot`` (must be EMPTY)."""
        if slot.state != EMPTY:
            raise TreeError(f"slot {slot_posid(slot)!r} is not empty")
        slot.state = LIVE
        slot.atom = atom
        self._adjust_counts(slot, +1, +1)

    def make_tombstone(self, slot: AtomSlot) -> None:
        """Delete the slot's atom, keeping the identifier used (SDIS)."""
        if slot.state != LIVE:
            raise MissingAtomError(f"no live atom at {slot_posid(slot)!r}")
        slot.state = TOMBSTONE
        slot.atom = None
        self._adjust_counts(slot, -1, 0)

    def discard(self, slot: AtomSlot) -> None:
        """Delete the slot's atom and free its identifier (UDIS), pruning
        any structure that becomes empty and leaf-less."""
        if slot.state != LIVE:
            raise MissingAtomError(f"no live atom at {slot_posid(slot)!r}")
        slot.state = EMPTY
        slot.atom = None
        self._adjust_counts(slot, -1, -1)
        self._prune_from(slot)

    def purge_tombstone(self, slot: AtomSlot) -> None:
        """Free a tombstoned identifier (SDIS garbage collection, once
        the delete is known causally stable — section 4.2)."""
        if slot.state != TOMBSTONE:
            raise MissingAtomError(f"no tombstone at {slot_posid(slot)!r}")
        slot.state = EMPTY
        slot.atom = None
        self._adjust_counts(slot, 0, -1)
        self._prune_from(slot)

    def _prune_from(self, slot: AtomSlot) -> None:
        """Remove now-useless structure starting at ``slot`` (3.3.1):
        empty leaf mini-nodes go immediately; position nodes with no
        content and no children follow, cascading upward."""
        if isinstance(slot, MiniNode):
            if slot.state != EMPTY or not slot.is_leaf:
                return
            host = slot.host
            host.remove_mini(slot)
            node: Optional[PosNode] = host
        else:
            node = slot
        while node is not None and node is not self.root:
            if not node.is_structurally_empty:
                return
            parent = node.parent
            if parent is None:
                return
            container, bit = parent
            container.set_child(bit, None)
            if isinstance(container, MiniNode):
                if container.state == EMPTY and container.is_leaf:
                    host = container.host
                    host.remove_mini(container)
                    node = host
                else:
                    return
            else:
                node = container

    # -- remote operation application ---------------------------------------------

    def apply_insert(self, posid: PosID, atom: object) -> AtomSlot:
        """Replay ``insert(posid, atom)``; idempotent for exact duplicates."""
        slot = self.materialize(posid)
        if slot.state == LIVE:
            if slot.atom == atom:
                return slot  # duplicate delivery of the same operation
            raise TreeError(f"conflicting atom already at {posid!r}")
        if slot.state == TOMBSTONE:
            # Insert happened-before any delete of the same PosID, so a
            # tombstone here means causal delivery was violated.
            raise TreeError(f"insert at tombstoned identifier {posid!r}")
        self.set_live(slot, atom)
        return slot

    def apply_delete(self, posid: PosID, keep_tombstone: bool) -> Optional[AtomSlot]:
        """Replay ``delete(posid)``; idempotent (section 2.2)."""
        slot = self.lookup(posid)
        if slot is None or slot.state != LIVE:
            # Already deleted (and possibly discarded): deletes commute
            # and are idempotent, so this is a no-op.
            return None
        if keep_tombstone:
            self.make_tombstone(slot)
        else:
            self.discard(slot)
        return slot

    # -- index navigation -----------------------------------------------------------

    @property
    def live_length(self) -> int:
        """Number of visible atoms."""
        return self.root.live_count

    @property
    def id_length(self) -> int:
        """Number of used identifiers (visible atoms + tombstones)."""
        return self.root.id_count

    def live_slot_at(self, index: int) -> AtomSlot:
        """Slot of the ``index``-th visible atom (0-based)."""
        if index < 0 or index >= self.root.live_count:
            raise IndexError(f"visible index {index} out of range")
        return self._slot_at(index, live=True)

    def id_slot_at(self, index: int) -> AtomSlot:
        """Slot of the ``index``-th used identifier (0-based)."""
        if index < 0 or index >= self.root.id_count:
            raise IndexError(f"identifier index {index} out of range")
        return self._slot_at(index, live=False)

    def _slot_at(self, index: int, live: bool) -> AtomSlot:
        def slot_weight(slot: AtomSlot) -> int:
            if live:
                return int(slot.state == LIVE)
            return int(slot.state != EMPTY)

        def node_weight(node: Optional[PosNode]) -> int:
            if node is None:
                return 0
            return node.live_count if live else node.id_count

        node = self.root
        while True:
            weight = node_weight(node.left)
            if index < weight:
                node = node.left
                continue
            index -= weight
            weight = slot_weight(node)
            if index < weight:
                return node
            index -= weight
            descended = False
            for mini in node.minis:
                weight = node_weight(mini.left)
                if index < weight:
                    node = mini.left
                    descended = True
                    break
                index -= weight
                weight = slot_weight(mini)
                if index < weight:
                    return mini
                index -= weight
                weight = node_weight(mini.right)
                if index < weight:
                    node = mini.right
                    descended = True
                    break
                index -= weight
            if descended:
                continue
            if node.right is None:
                raise TreeError("count bookkeeping out of sync")
            node = node.right

    # -- iteration --------------------------------------------------------------------

    def iter_slots(self) -> Iterator[AtomSlot]:
        """All slots in identifier order (including EMPTY ones)."""
        return self.root.iter_slots()

    def iter_id_slots(self) -> Iterator[AtomSlot]:
        """Used-identifier slots (LIVE and TOMBSTONE) in order."""
        return (s for s in self.iter_slots() if slot_is_id_holder(s))

    def iter_live_slots(self) -> Iterator[AtomSlot]:
        """Visible atom slots in document order."""
        return (s for s in self.iter_slots() if slot_is_live(s))

    def atoms(self) -> List[object]:
        """The visible document content as a list of atoms."""
        return [slot.atom for slot in self.iter_live_slots()]

    def posids(self) -> List[PosID]:
        """PosIDs of all visible atoms, in document order."""
        return [slot_posid(slot) for slot in self.iter_live_slots()]

    def first_slot(self) -> Optional[AtomSlot]:
        """The first slot in identifier order, if any structure exists."""
        return _leftmost_slot(self.root)

    def next_id_holder(self, slot: Optional[AtomSlot]) -> Optional[AtomSlot]:
        """First used-identifier slot strictly after ``slot`` (or from the
        start of the document when ``slot`` is None)."""
        current = _leftmost_slot(self.root) if slot is None else successor_slot(slot)
        while current is not None and not slot_is_id_holder(current):
            current = successor_slot(current)
        return current

    def gap_slots(self, after: Optional[AtomSlot],
                  before: Optional[AtomSlot]) -> Iterator[AtomSlot]:
        """Slots strictly between ``after`` and ``before`` in infix order
        (None bounds mean document start / end). The caller guarantees
        ``after`` precedes ``before``; iteration stops at ``before``."""
        current = (
            _leftmost_slot(self.root) if after is None else successor_slot(after)
        )
        while current is not None and current is not before:
            yield current
            current = successor_slot(current)

    # -- integrity ---------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Validate counts, ordering, parent links and slot states.

        Raises :class:`TreeError` on the first violation. Used by tests
        and by the failure-injection harness; not called on hot paths.
        """
        live, ids = self.recount_subtree(self.root)
        if live != self.root.live_count or ids != self.root.id_count:
            raise TreeError("aggregate counts inconsistent")  # pragma: no cover
        previous: Optional[PosID] = None
        for slot in self.iter_slots():
            host = slot_host(slot)
            node: Optional[PosNode] = host
            hops = 0
            while node is not None and node.parent is not None:
                container, bit = node.parent
                if container.child(bit) is not node:
                    raise TreeError("broken parent link")
                node = (
                    container.host
                    if isinstance(container, MiniNode)
                    else container
                )
                hops += 1
                if hops > 100000:
                    raise TreeError("parent chain does not terminate")
            if node is not self.root:
                raise TreeError("slot not reachable from the root")
            if slot.state == LIVE and host.plain_state == LIVE and (
                isinstance(slot, MiniNode)
            ):
                raise TreeError(
                    "live plain atom coexists with live mini-node "
                    f"at {slot_posid(slot)!r}"
                )
            if slot_is_id_holder(slot):
                posid = slot_posid(slot)
                if self.lookup(posid) is not slot:
                    raise TreeError(f"posid round-trip failed for {posid!r}")
                if previous is not None and not previous < posid:
                    raise TreeError(
                        f"identifier order violated: {previous!r} !< {posid!r}"
                    )
                previous = posid
