"""On-disk Treedoc format (section 5.2).

The paper stores a Treedoc like a binary heap: nodes top to bottom, line
by line, left to right; absent positions are filled with a special
marker, and marker runs are run-length encoded. Each entry carries the
node's disambiguator(s) and a reference into a separate atom file.

This module implements that format faithfully:

- the tree skeleton (plain children of position nodes) is laid out
  level by level; within a level, present positions are emitted left to
  right, and the gaps between them are gamma-coded run lengths (the RLE
  of marker sequences);
- an entry holds the plain slot's state and atom reference, plus the
  mini-node array (disambiguator, state, atom reference each). The paper
  notes mini-node arrays "do not occur in our tests"; they do occur
  under concurrency, so entries support them;
- children *of mini-nodes* cannot be addressed by heap position (they
  would collide with the major node's children), so each mini entry may
  carry an escape: a recursively encoded sub-document for each child
  side. Serialized traces never take the escape, matching the paper;
- atoms live in a separate byte stream ("stored in a separate file"),
  referenced by index.

Format v2 (live mixed storage, section 4.2): a plain child slot may
hold an array leaf instead of a subtree. The v2 record spends two bits
per present child — tree or leaf — and serializes a leaf inline as an
RLE atom run: the leaf's atoms are appended to the atom file
contiguously, so one (count, first-reference) pair names them all.
Cold documents therefore load back as array leaves **without
exploding**; v1 images (no leaves possible) still load.

Format v3 (tombstone-tolerant leaves): the leaf record gains an
optional dead-slot bitmap sidecar — one flag bit, and when set, a
gamma-coded dead count followed by gamma-coded offset deltas, ahead of
the run record (which then carries only the *live* atoms; dead slots
have no payload). SDIS regions whose tombstones are stable can
therefore persist collapsed. v2 images (no bitmap possible) still
load, and ``save(version=2)`` rejects trees holding dead-slot leaves.

The run record and the atom file are the shared segment codec of
:mod:`repro.core.runs` (``write_run_record`` / ``AtomTable``) — the
same layout the v2 *wire* frames use, so disk and wire cannot drift.

``measure_on_disk`` reports the Table 1 "On-disk overhead": the tree
bytes, i.e. everything except the atom payload itself.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.encoding import read_disambiguator, write_disambiguator
from repro.core.node import (
    EMPTY,
    LIVE,
    TOMBSTONE,
    ArrayLeaf,
    MiniNode,
    PosNode,
)
from repro.core.runs import AtomTable, read_run_record, write_run_record
from repro.core.tree import TreedocTree
from repro.errors import DecodeError, EncodingError
from repro.util.bits import BitReader, BitWriter
from repro.util.files import atomic_write_bytes

_STATE_TAGS = {EMPTY: 0, LIVE: 1, TOMBSTONE: 2}
_TAG_STATES = {tag: state for state, tag in _STATE_TAGS.items()}

#: Current on-disk format: v2 added array-leaf child records; v3 adds
#: the optional dead-slot bitmap sidecar to the leaf record.
FORMAT_VERSION = 3


@dataclass
class DiskImage:
    """A serialized Treedoc: tree bytes plus the atom file."""

    tree_bytes: bytes
    tree_bits: int
    atom_payloads: List[bytes]
    #: Record format the tree bytes use (see module docstring).
    version: int = field(default=FORMAT_VERSION)

    @property
    def tree_size_bytes(self) -> int:
        """On-disk size of the tree structure (the overhead)."""
        return (self.tree_bits + 7) // 8

    @property
    def atom_size_bytes(self) -> int:
        """On-disk size of the atom file (the document proper)."""
        return sum(len(p) for p in self.atom_payloads)


#: The atom file is the shared atom table of :mod:`repro.core.runs`.
_AtomFile = AtomTable


def _write_slot_state(writer: BitWriter, state: str, atom: object,
                      atoms: _AtomFile) -> None:
    writer.write_bits(_STATE_TAGS[state], 2)
    if state == LIVE:
        writer.write_elias_gamma(atoms.add(atom) + 1)


def _read_slot_state(reader: BitReader,
                     payloads: List[bytes]) -> Tuple[str, Optional[str]]:
    state = _TAG_STATES[reader.read_bits(2)]
    if state == LIVE:
        index = reader.read_elias_gamma() - 1
        return state, payloads[index].decode("utf-8")
    return state, None


def _write_leaf(writer: BitWriter, leaf: ArrayLeaf, atoms: _AtomFile,
                version: int) -> None:
    """An array-leaf record: the shared RLE run record of
    :mod:`repro.core.runs` — atoms appended to the atom file
    contiguously, one (count, first-reference) pair naming them all.
    v3 precedes it with the dead-slot bitmap sidecar: a flag bit, and
    when set, gamma(dead count) + gamma-coded offset deltas; the run
    record then carries only the live atoms."""
    if leaf.dead == 0:
        if version >= 3:
            writer.write_bit(0)
        write_run_record(writer, len(leaf.atoms), atoms.add_run(leaf.atoms))
        return
    if version < 3:
        raise EncodingError(
            f"format v{version} cannot carry dead-slot bitmaps"
        )
    writer.write_bit(1)
    dead = leaf.dead
    offsets = [i for i in range(len(leaf.atoms)) if (dead >> i) & 1]
    writer.write_elias_gamma(len(offsets))
    previous = -1
    for offset in offsets:
        writer.write_elias_gamma(offset - previous)
        previous = offset
    live = leaf.live_atoms()
    write_run_record(writer, len(live), atoms.add_run(live))


def _read_leaf(reader: BitReader, parent, bit: int,
               payloads: List[bytes], version: int) -> ArrayLeaf:
    dead = 0
    ndead = 0
    if version >= 3 and reader.read_bit():
        ndead = reader.read_elias_gamma()
        position = -1
        for _ in range(ndead):
            position += reader.read_elias_gamma()
            dead |= 1 << position
    count, first = read_run_record(reader)
    if dead >> (count + ndead):
        raise EncodingError("leaf dead bitmap out of bounds")
    live = AtomTable(payloads).get_run(first, count)
    if dead:
        atoms: List[object] = []
        it = iter(live)
        for slot in range(count + ndead):
            atoms.append(None if (dead >> slot) & 1 else next(it))
    else:
        atoms = live
    # The owning tree is attached by load() once it exists.
    return ArrayLeaf((parent, bit), atoms, None, dead=dead)


def _write_subtree(writer: BitWriter, root: PosNode, atoms: _AtomFile,
                   version: int) -> None:
    """Heap-style level-order encoding of one subtree skeleton."""
    level: List[Tuple[int, PosNode]] = [(0, root)]
    writer.write_bit(1)  # subtree present
    while level:
        # Present positions of this level, left to right, with gamma-
        # coded gaps standing in for RLE-compressed marker runs.
        writer.write_elias_gamma(len(level) + 1)
        previous = -1
        next_level: List[Tuple[int, PosNode]] = []
        for index, node in level:
            writer.write_elias_gamma(index - previous)
            previous = index
            _write_entry(writer, node, atoms, version)
            if isinstance(node.left, PosNode):
                next_level.append((2 * index, node.left))
            if isinstance(node.right, PosNode):
                next_level.append((2 * index + 1, node.right))
        level = next_level


def _write_entry(writer: BitWriter, node: PosNode, atoms: _AtomFile,
                 version: int) -> None:
    _write_slot_state(writer, node.plain_state, node.plain_atom, atoms)
    writer.write_elias_gamma(len(node.minis) + 1)
    for mini in node.minis:
        write_disambiguator(writer, mini.dis)
        _write_slot_state(writer, mini.state, mini.atom, atoms)
        for child in (mini.left, mini.right):
            if child is None:
                writer.write_bit(0)
            elif isinstance(child, ArrayLeaf):
                raise EncodingError(
                    "array leaf under a mini-node"
                )  # pragma: no cover - the tree never builds one
            else:
                # Escape: a mini-node's child subtree, recursively.
                _write_subtree(writer, child, atoms, version)
    # Plain-child presence: the next heap level cannot be peeked at read
    # time, so record which children exist. v2 spends a second bit on
    # present children to distinguish tree subtrees from array leaves
    # (serialized inline, not in the heap layout).
    for child in (node.left, node.right):
        if child is None:
            writer.write_bit(0)
            continue
        writer.write_bit(1)
        if version >= 2:
            if isinstance(child, ArrayLeaf):
                writer.write_bit(1)
                _write_leaf(writer, child, atoms, version)
            else:
                writer.write_bit(0)
        elif isinstance(child, ArrayLeaf):
            raise EncodingError("format v1 cannot carry array leaves")


def _read_subtree(reader: BitReader, parent, bit: int,
                  payloads: List[bytes], version: int) -> Optional[PosNode]:
    if not reader.read_bit():
        return None
    root = PosNode(parent=(parent, bit) if parent is not None else None)
    level: Dict[int, PosNode] = {0: root}
    while level:
        count = reader.read_elias_gamma() - 1
        position = -1
        ordered: List[Tuple[int, PosNode]] = sorted(level.items())
        if count != len(ordered):
            raise EncodingError("level population mismatch")
        next_level: Dict[int, PosNode] = {}
        for expected_index, node in ordered:
            position += reader.read_elias_gamma()
            if position != expected_index:
                raise EncodingError("heap position mismatch")
            children = _read_entry(reader, node, payloads, version)
            for child_bit in children:
                child = PosNode(parent=(node, child_bit))
                node.set_child(child_bit, child)
                next_level[2 * expected_index + child_bit] = child
        level = next_level
    return root


def _read_entry(reader: BitReader, node: PosNode,
                payloads: List[bytes], version: int) -> List[int]:
    node.plain_state, node.plain_atom = _read_slot_state(reader, payloads)
    mini_count = reader.read_elias_gamma() - 1
    for _ in range(mini_count):
        dis = read_disambiguator(reader)
        mini = node.get_or_create_mini(dis)
        mini.state, mini.atom = _read_slot_state(reader, payloads)
        for child_bit in (0, 1):
            child = _read_subtree(reader, mini, child_bit, payloads, version)
            if child is not None:
                mini.set_child(child_bit, child)
    # Plain-child presence bits, mirroring _write_entry.
    children = []
    for child_bit in (0, 1):
        if not reader.read_bit():
            continue
        if version >= 2 and reader.read_bit():
            node.set_child(
                child_bit,
                _read_leaf(reader, node, child_bit, payloads, version),
            )
            continue
        children.append(child_bit)
    return children


def save(tree: TreedocTree, version: int = FORMAT_VERSION) -> DiskImage:
    """Serialize a tree to its on-disk image.

    ``version=1`` writes the legacy record (rejecting trees that hold
    array leaves); ``version=2`` serializes leaves as RLE atom runs
    (rejecting dead-slot bitmaps); the default v3 adds the bitmap
    sidecar, so tombstone-bearing leaves persist collapsed.
    """
    writer = BitWriter()
    atoms = _AtomFile()
    _write_subtree(writer, tree.root, atoms, version)
    return DiskImage(
        writer.getvalue(), writer.bit_length, atoms.payloads, version
    )


def load(image: DiskImage) -> TreedocTree:
    """Reconstruct a tree from its on-disk image.

    Array-leaf records come back as collapsed regions — a cold document
    loads without exploding anything.
    """
    reader = BitReader(image.tree_bytes, image.tree_bits)
    root = _read_subtree(reader, None, 0, image.atom_payloads, image.version)
    tree = TreedocTree()
    if root is not None:
        tree.root = root
    height = 0
    stack: List[Tuple[PosNode, int]] = [(tree.root, 0)]
    while stack:
        node, depth = stack.pop()
        height = max(height, depth)
        for mini in node.minis:
            for child in (mini.left, mini.right):
                if child is not None:
                    stack.append((child, depth + 1))
        for child in (node.left, node.right):
            if isinstance(child, ArrayLeaf):
                child.tree = tree
                height = max(height, depth + child.implicit_depth)
            elif child is not None:
                stack.append((child, depth + 1))
    tree.recount_subtree(tree.root)
    tree.height = height
    return tree


def measure_on_disk(tree: TreedocTree) -> Tuple[int, int]:
    """``(overhead_bytes, document_bytes)`` of the on-disk image."""
    image = save(tree)
    return image.tree_size_bytes, image.atom_size_bytes


# -- file container ---------------------------------------------------------------
#
# One real file holds both halves of a DiskImage ("a separate file" for
# atoms in the paper means a separate *stream*; the container keeps the
# streams length-prefixed side by side) behind the same integrity
# discipline as the wire: a trailing CRC-32 over the whole body, so a
# torn or bit-flipped image surfaces as the typed DecodeError. Writes
# are atomic (temp sibling + fsync + rename) — a crash mid-save leaves
# the previous image intact, never a half-written one.

_IMAGE_MAGIC = b"TDOC"
_IMAGE_HEADER = struct.Struct(">BII")
_U32 = struct.Struct(">I")


def image_to_bytes(image: DiskImage) -> bytes:
    """Serialize a :class:`DiskImage` to one CRC-terminated byte string."""
    parts = [
        _IMAGE_MAGIC,
        _IMAGE_HEADER.pack(image.version, image.tree_bits,
                           len(image.tree_bytes)),
        image.tree_bytes,
        _U32.pack(len(image.atom_payloads)),
    ]
    for payload in image.atom_payloads:
        parts.append(_U32.pack(len(payload)))
        parts.append(payload)
    body = b"".join(parts)
    return body + _U32.pack(zlib.crc32(body))


def image_from_bytes(data: bytes) -> DiskImage:
    """Parse a container produced by :func:`image_to_bytes`.

    Raises the typed :class:`repro.errors.DecodeError` on anything
    short, torn, or bit-flipped — CRC first, so damage anywhere in the
    file is caught before any structure is trusted.
    """
    if len(data) < len(_IMAGE_MAGIC) + _IMAGE_HEADER.size + 2 * _U32.size:
        raise DecodeError("disk image truncated")
    body, crc = data[:-_U32.size], _U32.unpack(data[-_U32.size:])[0]
    if zlib.crc32(body) != crc:
        raise DecodeError("disk image CRC mismatch")
    if not body.startswith(_IMAGE_MAGIC):
        raise DecodeError("not a Treedoc disk image")
    offset = len(_IMAGE_MAGIC)
    version, tree_bits, tree_len = _IMAGE_HEADER.unpack_from(body, offset)
    offset += _IMAGE_HEADER.size
    if offset + tree_len + _U32.size > len(body):
        raise DecodeError("disk image tree bytes truncated")
    tree_bytes = body[offset:offset + tree_len]
    if tree_bits > 8 * tree_len:
        raise DecodeError("disk image bit length exceeds tree bytes")
    offset += tree_len
    (count,) = _U32.unpack_from(body, offset)
    offset += _U32.size
    payloads: List[bytes] = []
    for _ in range(count):
        if offset + _U32.size > len(body):
            raise DecodeError("disk image atom file truncated")
        (length,) = _U32.unpack_from(body, offset)
        offset += _U32.size
        if offset + length > len(body):
            raise DecodeError("disk image atom payload truncated")
        payloads.append(body[offset:offset + length])
        offset += length
    if offset != len(body):
        raise DecodeError("trailing garbage after disk image")
    return DiskImage(tree_bytes, tree_bits, payloads, version)


def write_image(image: DiskImage, path: Path, fsync: bool = True,
                before_replace: Optional[Callable[[], None]] = None) -> int:
    """Write ``image`` to ``path`` atomically; returns the byte size.

    ``before_replace`` is the crash-injection hook of
    :func:`repro.util.files.atomic_write_bytes` (tests use it to prove
    a crash mid-save cannot damage the previous image).
    """
    data = image_to_bytes(image)
    atomic_write_bytes(path, data, fsync=fsync,
                       before_replace=before_replace)
    return len(data)


def read_image(path: Path) -> DiskImage:
    """Read an image file back (typed DecodeError on damage)."""
    return image_from_bytes(Path(path).read_bytes())


def save_file(tree: TreedocTree, path: Path,
              version: int = FORMAT_VERSION, fsync: bool = True) -> int:
    """Serialize ``tree`` straight to an image file (atomically);
    returns the file size in bytes."""
    return write_image(save(tree, version), path, fsync=fsync)


def load_file(path: Path) -> TreedocTree:
    """Reconstruct a tree from an image file."""
    return load(read_image(path))
