"""PosID allocation: Algorithm 1 and the balancing strategy (section 4.1).

The allocator answers one question: *where does a fresh atom go between
two adjacent used identifiers?* It operates structurally on the tree, so
the four rules of Algorithm 1 become placements:

- rule 4 (``p /+ f``): a new mini-node under the left plain child of
  ``f``'s position node;
- rule 5 (``f /+ p``) and rule 7 (unrelated nodes): a new mini-node under
  the right plain child of ``p``'s position node (this is the paper's
  "strip the disambiguator" rewriting — the path routes through the
  major node);
- rule 6 (``p`` and ``f`` mini-siblings, or ``f`` under a greater
  mini-sibling of ``p``): a new mini-node under the right child *of the
  mini-node* ``p`` itself.

On top of Algorithm 1 the allocator implements both optimizations of
section 4.1:

- **log-growth**: appending at the document end grows the tree by
  ``ceil(log2(h)) + 1`` levels at once and places the atom at the
  smallest identifier of the grown subtree; later inserts consume the
  empty positions (Figure 5);
- **empty-slot reuse**: before creating structure, the gap between the
  two neighbours is scanned for an existing empty slot (in infix order,
  matching Figure 5's numbering), which also re-uses positions freed by
  UDIS discards and left over by explode;
- **run grouping** (the variant evaluated in section 5.1): a burst of
  consecutive inserts is laid out in one minimal complete subtree.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.disambiguator import Disambiguator
from repro.core.node import EMPTY, AtomSlot, MiniNode, PosNode, slot_host
from repro.core.path import LEFT, RIGHT
from repro.core.tree import TreedocTree, _as_node
from repro.errors import AllocationError

#: Upper bound on the number of gap slots inspected when looking for an
#: empty position to reuse. Gaps are tiny in practice (the inside of one
#: grown subtree); the cap keeps worst-case allocation O(1)-ish.
GAP_SCAN_LIMIT = 256


def _is_within_subtree(slot: AtomSlot, ancestor: PosNode) -> bool:
    """True when ``slot`` lies in the subtree rooted at ``ancestor``."""
    node: Optional[PosNode] = slot_host(slot)
    while node is not None:
        if node is ancestor:
            return True
        parent = node.parent
        if parent is None:
            return False
        container, _ = parent
        node = container.host if isinstance(container, MiniNode) else container
    return False


def _greater_mini_sibling_above(slot: AtomSlot, p: MiniNode) -> bool:
    """Rule 6, second clause: does ``slot`` sit under a mini-sibling of
    ``p`` with a greater disambiguator?"""
    p_key = p.dis.key
    node: Optional[PosNode] = slot_host(slot)
    while node is not None:
        parent = node.parent
        if parent is None:
            return False
        container, _ = parent
        if isinstance(container, MiniNode):
            if container.host is p.host and container.dis.key > p_key:
                return True
            node = container.host
        else:
            node = container
    return False


class Allocator:
    """Fresh-PosID allocation for one Treedoc tree.

    ``balanced`` toggles the section 4.1 growth heuristic; with it off,
    the allocator is exactly the naive Algorithm 1 (used by the
    no-balancing rows of Tables 3 and 4).
    """

    def __init__(self, tree: TreedocTree, balanced: bool = True) -> None:
        self.tree = tree
        self.balanced = balanced

    # -- public API -------------------------------------------------------------

    def place_between(
        self,
        p_slot: Optional[AtomSlot],
        f_slot: Optional[AtomSlot],
        dis: Disambiguator,
    ) -> AtomSlot:
        """Return a fresh EMPTY slot ordered strictly between the two
        adjacent used identifiers (None = document start / end).

        The returned slot is a mini-node tagged ``dis``; the caller fills
        it with :meth:`TreedocTree.set_live`.
        """
        reused = self._reuse_empty_slot(p_slot, f_slot)
        if reused is not None:
            # The atom becomes a mini-node of the empty position, so two
            # sites concurrently reusing the same position stay distinct
            # and ordered by disambiguator.
            return reused.get_or_create_mini(dis)
        if f_slot is not None and not self._prefers_after(p_slot, f_slot):
            return self._place_before(f_slot, dis)
        if p_slot is not None:
            return self._place_after(p_slot, f_slot, dis)
        # Empty identifier space: open the document at the root's right
        # child, giving the first atom the identifier [(1:d)].
        return self._create_chain(self.tree.root, RIGHT, dis, append=f_slot is None)

    def place_run(
        self,
        p_slot: Optional[AtomSlot],
        f_slot: Optional[AtomSlot],
        dises: Sequence[Disambiguator],
    ) -> List[AtomSlot]:
        """Allocate slots for a burst of consecutive atoms.

        With balancing enabled this is the section 5.1 variant: the run
        is laid out in a minimal complete subtree (depth
        ``ceil(log2(n+1))``), so a revision's paste of *n* lines costs
        paths of length ``O(log n)`` instead of *n*. Without balancing
        each atom is placed one by one.
        """
        if not dises:
            return []
        if not self.balanced or len(dises) == 1:
            return self._place_sequentially(p_slot, f_slot, dises)
        anchor = self._run_anchor(p_slot, f_slot)
        if anchor is None:
            return self._place_sequentially(p_slot, f_slot, dises)
        container, bit = anchor
        depth = max(1, math.ceil(math.log2(len(dises) + 1)))
        root = self._build_complete_subtree(container, bit, depth)
        nodes = self._infix_positions(root)
        slots: List[AtomSlot] = []
        for dis, node in zip(dises, nodes):
            slots.append(node.get_or_create_mini(dis))
        remaining = list(dises[len(nodes):])
        if remaining:
            # The subtree was sized for the run, so this only happens if
            # sizing and capacity disagree; fall back to one-by-one.
            previous: Optional[AtomSlot] = slots[-1] if slots else p_slot
            slots.extend(self._place_sequentially(previous, f_slot, remaining))
        return slots

    # -- internals ---------------------------------------------------------------

    def _place_sequentially(
        self,
        p_slot: Optional[AtomSlot],
        f_slot: Optional[AtomSlot],
        dises: Sequence[Disambiguator],
    ) -> List[AtomSlot]:
        slots: List[AtomSlot] = []
        previous = p_slot
        for dis in dises:
            slot = self.place_between(previous, f_slot, dis)
            # A slot only becomes the left neighbour of the next one once
            # it holds an identifier; the Treedoc facade fills it right
            # away, but mark it used defensively for the search below.
            slots.append(slot)
            previous = slot
        return slots

    def _reuse_empty_slot(
        self, p_slot: Optional[AtomSlot], f_slot: Optional[AtomSlot]
    ) -> Optional[PosNode]:
        """First empty position node in the gap, in infix order
        (Figure 5's numbering). Empty *mini-node* identifiers are never
        re-used: under SDIS the same (position, site) pair could be
        minted twice (the scenario of section 3.3.2)."""
        for steps, slot in enumerate(self.tree.gap_slots(p_slot, f_slot)):
            if steps >= GAP_SCAN_LIMIT:
                return None
            if (
                slot.state == EMPTY
                and not isinstance(slot, MiniNode)
                and not slot.minis
                and slot is not self.tree.root
            ):
                # The node must carry no mini-nodes: a fresh mini would
                # sort among existing ones by disambiguator — possibly
                # outside the gap — and under SDIS could even re-mint a
                # tombstone's identifier (the section 3.3.2 scenario).
                # (A mini at the root is also impossible: a zero-length
                # path cannot carry a disambiguator.)
                return slot
        return None

    def _prefers_after(self, p_slot: Optional[AtomSlot], f_slot: AtomSlot) -> bool:
        """Decide between placing before ``f`` and after ``p``.

        Placing before ``f`` is only sound when ``p`` does not itself lie
        in the left region of ``f``'s position node (rules 5-7 territory).
        """
        if p_slot is None:
            return False
        if _is_within_subtree(p_slot, slot_host(f_slot)):
            return True
        return False

    def _place_before(self, f_slot: AtomSlot, dis: Disambiguator) -> AtomSlot:
        """Rule 4: new mini-node under the left plain child of ``f``'s
        position node. Rule 6's second clause takes precedence when it
        applies (handled by the caller via `_prefers_after` being False
        only for unrelated ``p``)."""
        host = slot_host(f_slot)
        if host.left is not None:
            # The gap scan found no empty slot, yet the left child
            # exists; descend its right spine to a fresh creation point.
            node = _as_node(host.left)
            while node.right is not None:
                node = _as_node(node.right)
            return self._create_chain(node, RIGHT, dis, append=False)
        return self._create_chain(host, LEFT, dis, append=False)

    def _place_after(
        self,
        p_slot: AtomSlot,
        f_slot: Optional[AtomSlot],
        dis: Disambiguator,
    ) -> AtomSlot:
        appending = f_slot is None
        if isinstance(p_slot, MiniNode):
            if f_slot is not None and (
                slot_host(f_slot) is p_slot.host
                or _greater_mini_sibling_above(f_slot, p_slot)
            ):
                # Rule 6: a direct descendant of the mini-node itself.
                if p_slot.right is not None:
                    node = _as_node(p_slot.right)
                    while node.left is not None:
                        node = _as_node(node.left)
                    return self._create_chain(node, LEFT, dis, append=False)
                return self._create_chain(p_slot, RIGHT, dis, append=False)
            # Rules 5 and 7: strip the disambiguator — a child of the
            # major node, i.e. the position node's plain right child.
            host = p_slot.host
        else:
            host = p_slot
        if host.right is not None:
            node = _as_node(host.right)
            while node.left is not None:
                node = _as_node(node.left)
            return self._create_chain(node, LEFT, dis, append=appending)
        return self._create_chain(host, RIGHT, dis, append=appending)

    #: Cap on growth depth: a growth step materializes 2^k - 1 empty
    #: positions, so unbounded k would make single appends allocate
    #: large subtrees for very tall trees.
    MAX_GROWTH_LEVELS = 8

    def _growth_levels(self) -> int:
        """How many levels to grow on an append: ``ceil(log2(h)) + 1``."""
        height = max(1, self.tree.height)
        if height == 1:
            return 1
        return min(self.MAX_GROWTH_LEVELS, math.ceil(math.log2(height)) + 1)

    def _create_chain(
        self,
        container,
        bit: int,
        dis: Disambiguator,
        append: bool,
    ) -> AtomSlot:
        """Create a new position node at ``(container, bit)``; when
        balancing an append, grow a whole *complete* subtree of
        ``growth`` levels and use its smallest (leftmost) position, as
        in Figure 5 — subsequent appends then consume the grown tree's
        empty positions in infix order via the gap scan."""
        if container.child(bit) is not None:
            raise AllocationError("creation point already occupied")
        if append and self.balanced:
            depth = self._growth_levels()
            root = self._build_complete_subtree(container, bit, depth)
            node = root
            while node.left is not None:
                node = node.left
        else:
            node = PosNode(parent=(container, bit))
            container.set_child(bit, node)
            depth = self._node_depth(node)
            if depth > self.tree.height:
                self.tree.height = depth
        return node.get_or_create_mini(dis)

    def _node_depth(self, node: PosNode) -> int:
        depth = 0
        current: Optional[PosNode] = node
        while current is not None and current.parent is not None:
            depth += 1
            container, _ = current.parent
            current = (
                container.host if isinstance(container, MiniNode) else container
            )
        return depth

    def _run_anchor(
        self, p_slot: Optional[AtomSlot], f_slot: Optional[AtomSlot]
    ) -> Optional[Tuple[object, int]]:
        """Creation point ``(container, bit)`` for a run subtree, or None
        when no fresh creation point exists (then fall back to one-by-one
        placement, which can reuse empty slots)."""
        if f_slot is not None and not self._prefers_after(p_slot, f_slot):
            host = slot_host(f_slot)
            if host.left is None:
                return (host, LEFT)
            return None
        if p_slot is None:
            if self.tree.root.right is None and self.tree.root.left is None:
                return (self.tree.root, RIGHT)
            return None
        if isinstance(p_slot, MiniNode):
            if f_slot is not None and (
                slot_host(f_slot) is p_slot.host
                or _greater_mini_sibling_above(f_slot, p_slot)
            ):
                if p_slot.right is None:
                    return (p_slot, RIGHT)
                return None
            host = p_slot.host
        else:
            host = p_slot
        if host.right is None:
            return (host, RIGHT)
        return None

    def _build_complete_subtree(
        self, container, bit: int, depth: int
    ) -> PosNode:
        """Materialize a complete binary subtree of ``depth`` levels."""
        root = PosNode(parent=(container, bit))
        container.set_child(bit, root)
        frontier = [root]
        for _ in range(depth - 1):
            next_frontier = []
            for node in frontier:
                for child_bit in (LEFT, RIGHT):
                    child = PosNode(parent=(node, child_bit))
                    node.set_child(child_bit, child)
                    next_frontier.append(child)
            frontier = next_frontier
        root_depth = self._node_depth(root)
        total_depth = root_depth + depth - 1
        if total_depth > self.tree.height:
            self.tree.height = total_depth
        return root

    def _infix_positions(self, root: PosNode) -> List[PosNode]:
        """Position nodes of ``root``'s subtree in infix order."""
        result: List[PosNode] = []
        stack: List[Tuple[PosNode, bool]] = [(root, False)]
        while stack:
            node, visited = stack.pop()
            if visited:
                result.append(node)
                continue
            if node.right is not None:
                stack.append((node.right, False))
            stack.append((node, True))
            if node.left is not None:
                stack.append((node.left, False))
        return result
