"""Replicated operations of the abstract buffer type (section 2.2).

Operations are plain immutable records; the replication layer wraps them
in causally-stamped envelopes. ``insert`` and ``delete`` are the user
edit operations; ``flatten`` is the structural clean-up of section 4.2,
which replicates only through the commitment protocol.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.core.disambiguator import SiteId
from repro.core.path import PosID


@dataclass(frozen=True)
class InsertOp:
    """``insert(PosID, atom)``: add a fresh (atom, PosID) couple."""

    posid: PosID
    atom: object
    origin: SiteId

    @property
    def kind(self) -> str:
        return "insert"

    def __repr__(self) -> str:
        return f"insert({self.posid!r}, {self.atom!r}) @{self.origin}"


@dataclass(frozen=True)
class DeleteOp:
    """``delete(PosID)``: remove the atom with that identifier."""

    posid: PosID
    origin: SiteId

    @property
    def kind(self) -> str:
        return "delete"

    def __repr__(self) -> str:
        return f"delete({self.posid!r}) @{self.origin}"


def content_digest(atoms: Tuple[object, ...]) -> str:
    """Stable digest of an atom sequence (sanity check for flatten)."""
    hasher = hashlib.sha256()
    for atom in atoms:
        encoded = repr(atom).encode("utf-8")
        hasher.update(len(encoded).to_bytes(4, "big"))
        hasher.update(encoded)
    return hasher.hexdigest()


@dataclass(frozen=True)
class FlattenOp:
    """``flatten(path)``: replace the subtree at ``path`` by its canonical
    exploded form, discarding tombstones and disambiguators.

    ``digest`` is the content digest of the subtree's visible atoms as
    seen by the initiator; every committer must agree (the commitment
    protocol guarantees it — the assertion catches protocol bugs).
    ``expected_atoms`` optionally carries the atoms themselves so a
    replica can validate, or apply, without local recomputation.
    """

    path: PosID
    digest: str
    origin: SiteId
    expected_atoms: Optional[Tuple[object, ...]] = field(default=None)
    #: Commitment-protocol transaction tag (opaque to the data type);
    #: lets participants match the committed flatten to their vote lock.
    txn: Optional[str] = field(default=None)

    @property
    def kind(self) -> str:
        return "flatten"

    def __repr__(self) -> str:
        return f"flatten({self.path!r}, {self.digest[:8]}…) @{self.origin}"


Operation = Union[InsertOp, DeleteOp, FlattenOp]
