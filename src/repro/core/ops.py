"""Replicated operations of the abstract buffer type (section 2.2).

Operations are plain immutable records; the replication layer wraps them
in causally-stamped envelopes. ``insert`` and ``delete`` are the user
edit operations; ``flatten`` is the structural clean-up of section 4.2,
which replicates only through the commitment protocol.

:class:`OpBatch` is the wire unit of the batch-first API: an ordered,
versioned group of operations produced by one local edit (a typed
string, a deleted range, a replayed revision). Every layer of the stack
speaks batches — local edit methods return one, causal broadcast ships
one envelope per batch, and ``apply_batch`` replays one with deferred
index maintenance — while the single-operation methods remain as thin
compatibility wrappers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple, Union

from repro.core.disambiguator import SiteId
from repro.core.path import PosID


@dataclass(frozen=True)
class InsertOp:
    """``insert(PosID, atom)``: add a fresh (atom, PosID) couple."""

    posid: PosID
    atom: object
    origin: SiteId

    @property
    def kind(self) -> str:
        return "insert"

    def __repr__(self) -> str:
        return f"insert({self.posid!r}, {self.atom!r}) @{self.origin}"


@dataclass(frozen=True)
class DeleteOp:
    """``delete(PosID)``: remove the atom with that identifier."""

    posid: PosID
    origin: SiteId

    @property
    def kind(self) -> str:
        return "delete"

    def __repr__(self) -> str:
        return f"delete({self.posid!r}) @{self.origin}"


def content_digest(atoms: Tuple[object, ...]) -> str:
    """Stable digest of an atom sequence (sanity check for flatten).

    String atoms (characters, lines, paragraphs — every shipped
    workload) hash their UTF-8 bytes directly under an ``s`` tag;
    anything else falls back to its ``repr`` under an ``r`` tag.
    """
    hasher = hashlib.sha256()
    update = hasher.update
    for atom in atoms:
        if type(atom) is str:
            encoded = b"s" + atom.encode("utf-8")
        else:
            encoded = b"r" + repr(atom).encode("utf-8")
        update(len(encoded).to_bytes(4, "big"))
        update(encoded)
    return hasher.hexdigest()


@dataclass(frozen=True)
class FlattenOp:
    """``flatten(path)``: replace the subtree at ``path`` by its canonical
    exploded form, discarding tombstones and disambiguators.

    ``digest`` is the content digest of the subtree's visible atoms as
    seen by the initiator; every committer must agree (the commitment
    protocol guarantees it — the assertion catches protocol bugs).
    ``expected_atoms`` optionally carries the atoms themselves so a
    replica can validate, or apply, without local recomputation.
    """

    path: PosID
    digest: str
    origin: SiteId
    expected_atoms: Optional[Tuple[object, ...]] = field(default=None)
    #: Commitment-protocol transaction tag (opaque to the data type);
    #: lets participants match the committed flatten to their vote lock.
    txn: Optional[str] = field(default=None)

    @property
    def kind(self) -> str:
        return "flatten"

    def __repr__(self) -> str:
        return f"flatten({self.path!r}, {self.digest[:8]}…) @{self.origin}"


Operation = Union[InsertOp, DeleteOp, FlattenOp]


def batch_digest(ops: Tuple[object, ...]) -> str:
    """Stable digest of an operation sequence.

    Treedoc's own operations digest through the PosID's cached packed
    sort key (:meth:`repro.core.path.PosID.sort_key`) — a flat integer
    tuple that identifies the path — instead of rendering per-element
    reprs, which dominated batch minting in replay profiles. Any other
    operation (the baselines' records) falls back to its deterministic
    ``repr``; both encodings are transport-independent.
    """
    hasher = hashlib.sha256()
    update = hasher.update
    for op in ops:
        kind = type(op)
        if kind is InsertOp:
            encoded = (
                f"i{op.posid.sort_key()}@{op.origin}|{op.atom!r}"
            ).encode("utf-8")
        elif kind is DeleteOp:
            encoded = f"d{op.posid.sort_key()}@{op.origin}".encode("utf-8")
        else:
            encoded = repr(op).encode("utf-8")
        update(len(encoded).to_bytes(4, "big"))
        update(encoded)
    return hasher.hexdigest()


class OpBatch:
    """An ordered, versioned group of operations from one origin.

    ``[seq_start, seq_end)`` is the half-open range of the origin's
    local operation counter covered by the batch: batches minted by one
    replica carry non-overlapping, monotonically increasing ranges, so a
    receiver can order, deduplicate, or gap-check an origin's batches
    without inspecting the operations. ``digest`` is the content digest
    of the operations (see :func:`batch_digest`), computed lazily on
    first access — a batch minted and applied inside one replica
    (single-site replay, benchmarks) never pays for it, while shipping
    or verifying one forces it; :meth:`verify` checks it after
    transport.

    Operations are deliberately opaque (``object``): a batch can carry
    Treedoc operations or any baseline's, which is what lets the whole
    stack — replication, editor, workloads — speak one wire unit.
    """

    __slots__ = ("ops", "origin", "seq_start", "seq_end", "_digest")

    def __init__(self, ops: Tuple[object, ...], origin: SiteId,
                 seq_start: int, seq_end: int,
                 digest: Optional[str] = None) -> None:
        self.ops = tuple(ops)
        self.origin = origin
        self.seq_start = seq_start
        self.seq_end = seq_end
        self._digest = digest

    @property
    def digest(self) -> str:
        """The operations' content digest (computed once, on demand)."""
        if self._digest is None:
            self._digest = batch_digest(self.ops)
        return self._digest

    def seal(self) -> "OpBatch":
        """Materialize the digest and return the batch.

        Ship points (outboxes, broadcast) call this so every batch that
        leaves its minting replica carries a digest stamped *before*
        transport — :meth:`verify` on the receiving side then checks
        real integrity, not a lazily self-computed tautology. Batches
        that live and die inside one replica never pay for it.
        """
        if self._digest is None:
            self._digest = batch_digest(self.ops)
        return self

    @classmethod
    def build(cls, ops, origin: SiteId, seq_start: int) -> "OpBatch":
        """Mint a batch covering ``len(ops)`` sequence numbers from
        ``seq_start``; the content digest materializes on first use."""
        ops = tuple(ops)
        return cls(ops, origin, seq_start, seq_start + len(ops))

    @property
    def kind(self) -> str:
        return "batch"

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[object]:
        return iter(self.ops)

    def __bool__(self) -> bool:
        return bool(self.ops)

    def verify(self) -> bool:
        """True when the digest matches the carried operations."""
        return batch_digest(self.ops) == self.digest

    def merge(self, other: "OpBatch") -> "OpBatch":
        """Concatenate an adjacent batch from the same origin (e.g. the
        delete and insert halves of a replace)."""
        if other.origin != self.origin:
            raise ValueError(
                f"cannot merge batches from origins {self.origin} "
                f"and {other.origin}"
            )
        if other.seq_start != self.seq_end:
            raise ValueError(
                f"cannot merge non-adjacent batches: [{self.seq_start}, "
                f"{self.seq_end}) + [{other.seq_start}, {other.seq_end})"
            )
        return OpBatch.build(self.ops + other.ops, self.origin,
                             self.seq_start)

    def __repr__(self) -> str:
        return (
            f"<OpBatch {len(self.ops)} ops @{self.origin} "
            f"seq [{self.seq_start}, {self.seq_end})>"
        )
