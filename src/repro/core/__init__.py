"""Treedoc core: the paper's primary contribution.

Public surface:

- :class:`repro.core.treedoc.Treedoc` — the document replica.
- :class:`repro.core.path.PosID` / :class:`repro.core.path.PathElement` —
  the dense identifier space.
- :class:`repro.core.disambiguator.Udis` /
  :class:`repro.core.disambiguator.Sdis` — disambiguator designs.
- :mod:`repro.core.ops` — the replicated operations.
"""

from repro.core.disambiguator import Disambiguator, Udis, Sdis, SiteId
from repro.core.path import PathElement, PosID, ROOT
from repro.core.encoding import DocumentState
from repro.core.runs import AtomRun
from repro.core.treedoc import Treedoc
from repro.core.ops import (
    InsertOp,
    DeleteOp,
    FlattenOp,
    OpBatch,
    Operation,
    batch_digest,
)

__all__ = [
    "Disambiguator",
    "Udis",
    "Sdis",
    "SiteId",
    "PathElement",
    "PosID",
    "ROOT",
    "Treedoc",
    "AtomRun",
    "DocumentState",
    "InsertOp",
    "DeleteOp",
    "FlattenOp",
    "OpBatch",
    "Operation",
    "batch_digest",
]
