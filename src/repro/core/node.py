"""Tree storage nodes for Treedoc (section 3).

The extended binary tree is made of *position nodes* (:class:`PosNode`,
the paper's major nodes) and *mini-nodes* (:class:`MiniNode`). A position
node owns:

- a ``plain`` atom slot — used by identifiers whose final element carries
  no disambiguator (single-user documents and exploded/flattened regions);
- a collection of mini-nodes keyed by disambiguator — concurrent inserts
  at the same position land here;
- two child slots (left/right) reached by *plain* path elements.

Each mini-node additionally owns its own two child slots, reached by path
elements that follow a disambiguated element (rule (ii) of section 3.1).

Both the plain slot of a position node and every mini-node are *atom
slots*; a slot is EMPTY (structural only), LIVE (holds an atom) or a
TOMBSTONE (atom deleted under SDIS; the identifier stays used).

Position nodes cache two subtree aggregates maintained incrementally:

- ``live_count`` — LIVE atoms in the subtree (visible document length);
- ``id_count`` — LIVE + TOMBSTONE slots (used identifiers), which drives
  the tombstone-aware neighbour search of DESIGN.md section 3.2.

Mixed storage (section 4.2)
---------------------------

A plain child slot may also hold an :class:`ArrayLeaf`: a quiescent
subtree stored as a bare atom list with *zero per-atom metadata*. A leaf
always stands for the **canonical exploded form** of its atoms (the
shape :func:`build_exploded` produces — what flatten leaves behind), so
exploding it back rebuilds the identical identifier structure
deterministically, without any replicated operation (the paper's
section 4.2.1 argument). The canonical-form machinery lives here, next
to the nodes, so :mod:`repro.core.tree` can explode on touch without an
import cycle; :mod:`repro.core.flatten` re-exports it.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.disambiguator import Disambiguator
from repro.core.path import LEFT, RIGHT, PathElement, PosID
from repro.errors import TreeError

# Atom-slot states.
EMPTY = "empty"
LIVE = "live"
TOMBSTONE = "tombstone"


class MiniNode:
    """A mini-node: one disambiguated atom slot inside a position node."""

    __slots__ = ("host", "dis", "state", "atom", "left", "right")

    def __init__(self, host: "PosNode", dis: Disambiguator) -> None:
        self.host = host
        self.dis = dis
        self.state = EMPTY
        self.atom = None
        self.left: Optional[PosNode] = None
        self.right: Optional[PosNode] = None

    def child(self, bit: int) -> Optional["PosNode"]:
        """The child position node on side ``bit``, if materialized."""
        return self.left if bit == LEFT else self.right

    def set_child(self, bit: int, node: Optional["PosNode"]) -> None:
        """Attach or detach the child position node on side ``bit``."""
        if bit == LEFT:
            self.left = node
        else:
            self.right = node

    @property
    def is_leaf(self) -> bool:
        """True when the mini-node has no materialized children."""
        return self.left is None and self.right is None

    def __repr__(self) -> str:
        return f"<mini {self.dis!r} {self.state}>"


#: A parent link: the owning container and the branch bit, or None at root.
ParentLink = Optional[Tuple[Union["PosNode", MiniNode], int]]

#: An atom slot: a position node stands for its own plain slot.
AtomSlot = Union["PosNode", MiniNode]

#: What a plain child slot can hold: a position node, or a collapsed
#: quiescent region (section 4.2 mixed storage).
Child = Union["PosNode", "ArrayLeaf"]

#: An infix storage entry: an atom slot, or a whole collapsed region.
Entry = Union["PosNode", MiniNode, "ArrayLeaf"]


class PosNode:
    """A position node (major node) of the extended binary tree."""

    __slots__ = (
        "parent",
        "plain_state",
        "plain_atom",
        "minis",
        "left",
        "right",
        "live_count",
        "id_count",
        "cached_posid",
    )

    def __init__(self, parent: ParentLink = None) -> None:
        self.parent: ParentLink = parent
        self.plain_state = EMPTY
        self.plain_atom = None
        # Sorted list of mini-nodes; nearly always 0 or 1 entries, so a
        # list with insertion-sort beats a tree or dict here.
        self.minis: List[MiniNode] = []
        self.left: Optional[PosNode] = None
        self.right: Optional[PosNode] = None
        self.live_count = 0
        self.id_count = 0
        #: Memoized PosID of this node's plain slot. Parent links never
        #: mutate after creation (structure is only ever added or
        #: detached whole; flatten builds fresh nodes), so the path is
        #: stable for the node's lifetime.
        self.cached_posid: Optional[PosID] = None

    # -- structure -----------------------------------------------------------

    def child(self, bit: int) -> Optional["PosNode"]:
        """The plain child on side ``bit``, if materialized."""
        return self.left if bit == LEFT else self.right

    def set_child(self, bit: int, node: Optional["PosNode"]) -> None:
        """Attach or detach the plain child on side ``bit``."""
        if bit == LEFT:
            self.left = node
        else:
            self.right = node

    def find_mini(self, dis: Disambiguator) -> Optional[MiniNode]:
        """The mini-node with disambiguator ``dis``, if present."""
        key = dis.key
        for mini in self.minis:
            mini_key = mini.dis.key
            if mini_key == key:
                return mini
            if mini_key > key:
                return None
        return None

    def get_or_create_mini(self, dis: Disambiguator) -> MiniNode:
        """Find or insert (in disambiguator order) the mini-node ``dis``."""
        key = dis.key
        for index, mini in enumerate(self.minis):
            mini_key = mini.dis.key
            if mini_key == key:
                return mini
            if mini_key > key:
                new = MiniNode(self, dis)
                self.minis.insert(index, new)
                return new
        new = MiniNode(self, dis)
        self.minis.append(new)
        return new

    def remove_mini(self, mini: MiniNode) -> None:
        """Detach ``mini`` from this node (UDIS discard)."""
        try:
            self.minis.remove(mini)
        except ValueError:
            raise TreeError("mini-node not attached to this position node")

    @property
    def is_structurally_empty(self) -> bool:
        """No atoms, no tombstones, no minis, no children: prunable."""
        return (
            self.plain_state == EMPTY
            and not self.minis
            and self.left is None
            and self.right is None
        )

    # -- slot protocol for the plain slot ------------------------------------

    @property
    def state(self) -> str:
        """State of this node's plain atom slot."""
        return self.plain_state

    @state.setter
    def state(self, value: str) -> None:
        self.plain_state = value

    @property
    def atom(self):
        """Atom held by the plain slot (None unless LIVE)."""
        return self.plain_atom

    @atom.setter
    def atom(self, value) -> None:
        self.plain_atom = value

    # -- infix iteration -----------------------------------------------------

    def iter_slots(self) -> Iterator[AtomSlot]:
        """All atom slots of this subtree, in identifier (infix) order.

        Yields position nodes (their plain slot) and mini-nodes. The
        order matches :func:`repro.core.path.compare_posids`: left child,
        plain slot, mini-nodes (each with its own left subtree, slot,
        right subtree) in disambiguator order, right child.

        Raises :class:`TreeError` on an :class:`ArrayLeaf` child: leaf
        atoms have no slot objects. Callers that must handle mixed
        storage walk :func:`iter_subtree_entries` instead; callers that
        need slots explode the region first.
        """
        # Iterative walk with an explicit stack: documents replayed from
        # long append-heavy histories produce trees deeper than CPython's
        # default recursion limit.
        stack: List[Tuple[object, int]] = [(self, 0)]
        while stack:
            item, phase = stack.pop()
            if isinstance(item, ArrayLeaf):
                raise TreeError(
                    "iter_slots over a subtree holding an array leaf; "
                    "walk iter_subtree_entries or explode first"
                )
            if isinstance(item, PosNode):
                if phase == 0:
                    stack.append((item, 1))
                    if item.left is not None:
                        stack.append((item.left, 0))
                else:
                    yield item
                    if item.right is not None:
                        stack.append((item.right, 0))
                    for mini in reversed(item.minis):
                        stack.append((mini, 0))
            else:  # MiniNode
                mini = item
                if phase == 0:
                    stack.append((mini, 1))
                    if mini.left is not None:
                        stack.append((mini.left, 0))
                else:
                    yield mini
                    if mini.right is not None:
                        stack.append((mini.right, 0))

    def iter_nodes(self) -> Iterator["PosNode"]:
        """All tree-resident position nodes of this subtree (pre-order,
        iterative). Collapsed regions (:class:`ArrayLeaf`) hold no nodes
        and are skipped; walk :func:`iter_subtree_entries` to see them."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            for mini in node.minis:
                if mini.right is not None:
                    stack.append(mini.right)
                if mini.left is not None:
                    stack.append(mini.left)
            for child in (node.right, node.left):
                if child is not None and not isinstance(child, ArrayLeaf):
                    stack.append(child)


# ---------------------------------------------------------------------------
# Slot helpers (shared by tree, allocation and flatten code).
# ---------------------------------------------------------------------------


def slot_state(slot: AtomSlot) -> str:
    """State of an atom slot (plain slot of a PosNode, or a MiniNode)."""
    return slot.state


def slot_is_id_holder(slot: AtomSlot) -> bool:
    """True when the slot occupies a used identifier (LIVE or TOMBSTONE)."""
    return slot.state != EMPTY


def slot_is_live(slot: AtomSlot) -> bool:
    """True when the slot currently holds a visible atom."""
    return slot.state == LIVE


def slot_host(slot: AtomSlot) -> PosNode:
    """The position node that owns the slot."""
    return slot.host if isinstance(slot, MiniNode) else slot


def parent_host(node: PosNode) -> Optional[PosNode]:
    """The position node one spine hop above ``node`` (through its
    parent link, resolving a mini-node container to its host), or None
    at the root. The one place the hop rule lives."""
    parent = node.parent
    if parent is None:
        return None
    container, _ = parent
    return container.host if isinstance(container, MiniNode) else container


def _node_posid(node: PosNode) -> PosID:
    """PosID of a position node's plain slot, memoized on the node.

    Walks up only as far as the first ancestor with a cached path, then
    fills the caches back down — a run of *k* fresh slots under one
    subtree costs O(depth + k) total instead of O(k * depth).
    """
    chain: List[PosNode] = []
    current = node
    while current.cached_posid is None and current.parent is not None:
        chain.append(current)
        container, _ = current.parent
        current = container.host if isinstance(container, MiniNode) else container
    if current.cached_posid is None:  # the root
        current.cached_posid = PosID()
    for current in reversed(chain):
        container, bit = current.parent
        if isinstance(container, MiniNode):
            host_elements = container.host.cached_posid.elements
            if not host_elements:
                # A mini-node directly at the root would need a
                # zero-length path carrying a disambiguator, which the
                # identifier space cannot express; the tree never
                # creates one.
                raise TreeError("mini-node attached to the root position node")
            current.cached_posid = PosID(
                host_elements[:-1]
                + (
                    PathElement(host_elements[-1].bit, container.dis),
                    PathElement(bit),
                )
            )
        else:
            current.cached_posid = container.cached_posid.child(bit)
    return node.cached_posid


def slot_posid(slot: AtomSlot) -> PosID:
    """Reconstruct the PosID naming ``slot`` (memoized per node)."""
    if isinstance(slot, MiniNode):
        host_elements = _node_posid(slot.host).elements
        if not host_elements:
            raise TreeError("mini-node attached to the root position node")
        return PosID(
            host_elements[:-1]
            + (PathElement(host_elements[-1].bit, slot.dis),)
        )
    return _node_posid(slot)


def slot_depth(slot: AtomSlot) -> int:
    """Number of path elements in the slot's PosID (cheap, no PosID)."""
    depth = 0
    node: Optional[PosNode] = slot_host(slot)
    while node is not None and node.parent is not None:
        depth += 1
        container, _ = node.parent
        node = container.host if isinstance(container, MiniNode) else container
    return depth


# ---------------------------------------------------------------------------
# Canonical exploded form (section 4.2, Algorithm 2) — the shape that
# both flatten and explode-on-touch build, and the shape a subtree must
# have to be collapsible into an ArrayLeaf.
# ---------------------------------------------------------------------------


def explode_depth(atom_count: int) -> int:
    """Depth of the canonical complete tree for ``atom_count`` atoms.

    ``ceil(log2(n + 1))`` computed exactly as ``n.bit_length()`` — no
    float round-trip (the shape check must be bit-exact at any size).
    """
    return atom_count.bit_length() if atom_count else 1


def _canonical_split(count: int) -> Tuple[int, int]:
    """``(left_atoms, right_atoms)`` of the canonical root for ``count``
    atoms: the root sits after its complete left subtree, or takes the
    last atom when the final level is only partially filled."""
    left = min((1 << (explode_depth(count) - 1)) - 1, count - 1)
    return left, count - 1 - left


def build_exploded(node: "PosNode", atoms: Sequence[object]) -> None:
    """Rebuild ``node``'s subtree as the canonical exploded form of
    ``atoms`` (Algorithm 2), in place. The node keeps its parent link.

    With no atoms the subtree becomes a bare empty node.
    """
    node.plain_state = EMPTY
    node.plain_atom = None
    node.minis = []
    node.left = None
    node.right = None
    if not atoms:
        node.live_count = 0
        node.id_count = 0
        return
    _fill_complete(node, list(atoms), 0, len(atoms))


def _fill_complete(node: "PosNode", atoms: Sequence[object],
                   lo: int, hi: int) -> None:
    """Assign ``atoms[lo:hi]`` infix-style to a complete subtree under
    ``node``.

    The middle atom lands on ``node`` itself; left and right halves
    recurse into freshly created children. Surplus positions are simply
    never created, which realizes Algorithm 2's "remove any remaining
    nodes" without a second pass. Children are complete trees, so the
    result equals building the full tree and pruning.
    """
    # Iterative splitting to cope with large arrays without recursion
    # limits: stack of (node, atom-slice bounds).
    stack: List[Tuple[PosNode, int, int]] = [(node, lo, hi)]
    while stack:
        current, lo, hi = stack.pop()
        count = hi - lo
        left_atoms, right_atoms = _canonical_split(count)
        mid = lo + left_atoms
        current.plain_state = LIVE
        current.plain_atom = atoms[mid]
        current.live_count = count
        current.id_count = count
        if left_atoms > 0:
            left = PosNode(parent=(current, LEFT))
            current.left = left
            stack.append((left, lo, mid))
        if right_atoms > 0:
            right = PosNode(parent=(current, RIGHT))
            current.right = right
            stack.append((right, mid + 1, hi))


def _popcount_range(dead: int, lo: int, hi: int) -> int:
    """Number of set bits of the ``dead`` bitmap in offsets [lo, hi)."""
    return ((dead >> lo) & ((1 << (hi - lo)) - 1)).bit_count()


def build_exploded_with_dead(node: "PosNode", atoms: Sequence[object],
                             dead: int) -> None:
    """Rebuild ``node``'s subtree as the canonical exploded form of a
    tombstone-bearing region, in place: the shape of ``len(atoms)``
    identifiers, with the slots at the set offsets of the ``dead``
    bitmap restored as SDIS tombstones instead of live atoms.

    This is the inverse of :func:`collect_leaf_slots`, exactly as
    :func:`build_exploded` is the inverse of :func:`collect_array_atoms`:
    a region collapsed with its stable tombstones explodes back to the
    identical structure, so the bitmap leaf stays invisible to remote
    operations.
    """
    node.plain_state = EMPTY
    node.plain_atom = None
    node.minis = []
    node.left = None
    node.right = None
    if not atoms:
        node.live_count = 0
        node.id_count = 0
        return
    stack: List[Tuple[PosNode, int, int]] = [(node, 0, len(atoms))]
    while stack:
        current, lo, hi = stack.pop()
        count = hi - lo
        left_atoms, right_atoms = _canonical_split(count)
        mid = lo + left_atoms
        if (dead >> mid) & 1:
            current.plain_state = TOMBSTONE
            current.plain_atom = None
        else:
            current.plain_state = LIVE
            current.plain_atom = atoms[mid]
        current.live_count = count - _popcount_range(dead, lo, hi)
        current.id_count = count
        if left_atoms > 0:
            left = PosNode(parent=(current, LEFT))
            current.left = left
            stack.append((left, lo, mid))
        if right_atoms > 0:
            right = PosNode(parent=(current, RIGHT))
            current.right = right
            stack.append((right, mid + 1, hi))


def build_partial_exploded(node: "PosNode", atoms: Sequence[object],
                           around: int, core_atoms: int, leaf_min: int,
                           tree) -> None:
    """Rebuild ``node``'s subtree as a *partial* canonical explosion of
    ``atoms``: real structure along the canonical spine to slot offset
    ``around``, off-spine sides kept collapsed as sub-leaves.

    Every materialized node carries exactly the plain atom, counts and
    children the full canonical form (:func:`build_exploded`) would give
    it — the only difference is that subtrees the spine never enters
    stay :class:`ArrayLeaf`\\ s. Since a leaf *is* the canonical form of
    its atoms, the partial result is canonical too, and a replica that
    exploded fully remains PosID-identical with one that exploded
    partially. The descent stops splitting once the remainder holds at
    most ``core_atoms`` atoms (materialized complete); sides smaller
    than ``leaf_min`` are materialized rather than kept as leaves.
    """
    node.plain_state = EMPTY
    node.plain_atom = None
    node.minis = []
    node.left = None
    node.right = None
    current, lo, hi = node, 0, len(atoms)
    while True:
        count = hi - lo
        if count <= core_atoms:
            _fill_complete(current, atoms, lo, hi)
            return
        left_atoms, _right_atoms = _canonical_split(count)
        mid = lo + left_atoms
        current.plain_state = LIVE
        current.plain_atom = atoms[mid]
        current.live_count = count
        current.id_count = count
        if around < mid:
            _attach_partial_side(current, RIGHT, atoms, mid + 1, hi,
                                 leaf_min, tree)
            child = PosNode(parent=(current, LEFT))
            current.left = child
            current, hi = child, mid
        elif around > mid:
            _attach_partial_side(current, LEFT, atoms, lo, mid,
                                 leaf_min, tree)
            child = PosNode(parent=(current, RIGHT))
            current.right = child
            current, lo = child, mid + 1
        else:
            _attach_partial_side(current, LEFT, atoms, lo, mid,
                                 leaf_min, tree)
            _attach_partial_side(current, RIGHT, atoms, mid + 1, hi,
                                 leaf_min, tree)
            return


def _attach_partial_side(current: "PosNode", bit: int,
                         atoms: Sequence[object], lo: int, hi: int,
                         leaf_min: int, tree) -> None:
    """Attach ``atoms[lo:hi]`` as ``current``'s off-spine child: a
    sub-leaf when large enough to be worth keeping collapsed, else the
    materialized complete subtree."""
    if hi <= lo:
        return
    if hi - lo >= leaf_min:
        current.set_child(bit, ArrayLeaf((current, bit),
                                         list(atoms[lo:hi]), tree))
    else:
        child = PosNode(parent=(current, bit))
        current.set_child(bit, child)
        _fill_complete(child, atoms, lo, hi)


def collect_array_atoms(child: Child, min_atoms: int = 1) -> Optional[List[object]]:
    """The subtree's atoms when it is in canonical exploded form, else
    None (the collapse predicate and atom harvest in one walk).

    Canonical means: every position node holds a LIVE plain atom, no
    mini-nodes, no tombstones, no empty structural nodes, and the left/
    right split at every level matches :func:`build_exploded` — so a
    later explode rebuilds the *identical* structure. An already
    collapsed child (:class:`ArrayLeaf`) counts as canonical for its own
    atoms, which lets neighbouring leaves merge into a larger one.

    Verifying split counts before descending bounds the walk to the
    canonical depth (O(log n) recursion), so this is safe on trees far
    deeper than the recursion limit: a non-canonical deep chain fails
    its count check at the top.
    """
    expected = (
        len(child.atoms) if isinstance(child, ArrayLeaf) else child.live_count
    )
    if expected < min_atoms:
        return None
    out: List[object] = []
    if _collect_canonical(child, expected, out):
        return out
    return None


def _collect_canonical(child: Child, expected: int, out: List[object]) -> bool:
    if isinstance(child, ArrayLeaf):
        # A tombstone-bearing leaf is not *fully live* canonical form;
        # the tombstone-tolerant harvest is collect_leaf_slots.
        if child.dead or len(child.atoms) != expected:
            return False
        out.extend(child.atoms)
        return True
    node = child
    if (
        node.plain_state != LIVE
        or node.minis
        or node.live_count != expected
        or node.id_count != expected
    ):
        return False
    left_atoms, right_atoms = _canonical_split(expected)
    if left_atoms == 0:
        if node.left is not None:
            return False
    elif node.left is None or not _collect_canonical(node.left, left_atoms, out):
        return False
    out.append(node.plain_atom)
    if right_atoms == 0:
        return node.right is None
    if node.right is None:
        return False
    return _collect_canonical(node.right, right_atoms, out)


def collect_leaf_slots(child: Child, min_atoms: int = 1,
                       allow_tombstones: bool = False
                       ) -> Optional[Tuple[List[object], int]]:
    """``(atoms, dead)`` of a subtree in canonical *shape* whose only
    deviation from full liveness is stable SDIS tombstones, else None —
    the tombstone-tolerant collapse predicate and harvest in one walk.

    The shape check is keyed on **identifier** counts (a tombstone still
    occupies its slot), so a region that was canonical when built stays
    collapsible after some of its atoms are deleted under SDIS. The
    returned ``atoms`` list has the region's full identifier length with
    None at each dead offset; ``dead`` is the offset bitmap. With
    ``allow_tombstones`` False this degenerates to the fully live
    harvest (any tombstone rejects). A region with no visible atoms at
    all returns None — an all-dead leaf would be invisible yet
    unprunable, and purge+flatten handles it better.
    """
    expected = (
        len(child.atoms) if isinstance(child, ArrayLeaf) else child.id_count
    )
    if expected < min_atoms:
        return None
    out: List[object] = []
    dead_acc = [0]
    if not _collect_canonical_slots(child, expected, out, allow_tombstones,
                                    dead_acc):
        return None
    dead = dead_acc[0]
    if len(out) == dead.bit_count():
        return None
    return out, dead


def _collect_canonical_slots(child: Child, expected: int, out: List[object],
                             allow_tombstones: bool,
                             dead_acc: List[int]) -> bool:
    if isinstance(child, ArrayLeaf):
        if len(child.atoms) != expected:
            return False
        if child.dead:
            if not allow_tombstones:
                return False
            dead_acc[0] |= child.dead << len(out)
        out.extend(child.atoms)
        return True
    node = child
    if node.minis or node.id_count != expected:
        return False
    state = node.plain_state
    if state == EMPTY or (state == TOMBSTONE and not allow_tombstones):
        return False
    left_atoms, right_atoms = _canonical_split(expected)
    if left_atoms == 0:
        if node.left is not None:
            return False
    elif node.left is None or not _collect_canonical_slots(
        node.left, left_atoms, out, allow_tombstones, dead_acc
    ):
        return False
    if state == TOMBSTONE:
        dead_acc[0] |= 1 << len(out)
        out.append(None)
    else:
        out.append(node.plain_atom)
    if right_atoms == 0:
        return node.right is None
    if node.right is None:
        return False
    return _collect_canonical_slots(node.right, right_atoms, out,
                                    allow_tombstones, dead_acc)


def canonical_path_bits(count: int, index: int) -> Tuple[int, ...]:
    """Branch bits of atom ``index`` within a canonical region of
    ``count`` atoms, relative to the region root (O(log count))."""
    if not 0 <= index < count:
        raise TreeError(f"atom index {index} out of canonical region 0..{count}")
    bits: List[int] = []
    lo, hi = 0, count
    while True:
        left_atoms, _ = _canonical_split(hi - lo)
        mid = lo + left_atoms
        if index == mid:
            return tuple(bits)
        if index < mid:
            bits.append(LEFT)
            hi = mid
        else:
            bits.append(RIGHT)
            lo = mid + 1


def canonical_bits_to_index(count: int, bits: Sequence[int]) -> int:
    """Slot offset a path of plain branch ``bits`` routes *to or
    through* inside a canonical region of ``count`` atoms: the last
    on-path midpoint (the region root's own slot for an empty path).
    Bits that run past the region's structure — a path deeper than the
    canonical form, about to create fresh nodes — anchor at the last
    midpoint reached. Used to pick the partial-explode touch point for
    an incoming remote path."""
    lo, hi = 0, count
    left_atoms, _ = _canonical_split(count)
    mid = lo + left_atoms
    for bit in bits:
        if bit == LEFT:
            hi = mid
        else:
            lo = mid + 1
        if hi <= lo:
            break
        left_atoms, _ = _canonical_split(hi - lo)
        mid = lo + left_atoms
    return mid


def canonical_posids(base: Tuple[PathElement, ...], count: int) -> List[PosID]:
    """PosIDs of a canonical region's atoms, in document order.

    ``base`` is the path of the region root (the root atom's own PosID
    elements); deeper atoms extend it with plain branch bits. One
    infix-ordered pass shares the prefix tuples along each spine.
    """
    out: List[Optional[PosID]] = [None] * count
    stack: List[Tuple[Tuple[PathElement, ...], int, int]] = [(base, 0, count)]
    while stack:
        elements, lo, hi = stack.pop()
        left_atoms, right_atoms = _canonical_split(hi - lo)
        mid = lo + left_atoms
        out[mid] = PosID(elements)
        if left_atoms > 0:
            stack.append((elements + (PathElement(LEFT),), lo, mid))
        if right_atoms > 0:
            stack.append((elements + (PathElement(RIGHT),), mid + 1, hi))
    return out  # type: ignore[return-value]


class ArrayLeaf:
    """A quiescent region stored as a bare atom list (section 4.2).

    Replaces a whole subtree at a position node's plain child slot. The
    region is always the canonical exploded *shape* of its identifiers —
    fully plain, one slot per atom — so the leaf needs **no per-atom
    metadata**: its identifier structure is implied by the atom count
    and the attach point. :meth:`explode` rebuilds that structure
    deterministically and locally when a path lands inside the region
    ("applying a path to an array", section 4.2.1) — no replicated
    explode operation exists.

    The ``dead`` bitmap is the tombstone-tolerant extension (DESIGN.md
    section 12): a set bit marks a slot whose atom was deleted under
    SDIS but whose identifier is not yet causally stable enough to
    purge. ``atoms`` always has full identifier length, with None at
    each dead offset; reads mask the dead slots (``live_atoms``,
    ``live_to_slot``), and explode restores them as TOMBSTONE slots. A
    fully live leaf has ``dead == 0`` and pays nothing for the feature.

    ``tree`` is the owning :class:`repro.core.tree.TreedocTree`: explode
    must splice the tree's live-snapshot cache, and navigation helpers
    that step into a leaf have no other route to the tree. Explode
    clears both ``parent`` and ``tree`` on the way out, so an exploded
    husk is fully detached: it dies by reference counting alone and a
    stray reference to it cannot pin the tree.
    """

    __slots__ = ("parent", "atoms", "tree", "dead",
                 "live_count", "id_count", "_live_map")

    #: Class-level pseudo-state: a leaf is not an atom slot, but giving
    #: it a ``state`` that matches no slot state lets hot dispatch loops
    #: test ``entry.state == LIVE`` first (the common case) and fall to
    #: a type check only for leaves, instead of paying an isinstance on
    #: every slot.
    state = "array"

    def __init__(self, parent: ParentLink, atoms: List[object], tree,
                 dead: int = 0) -> None:
        if not atoms:
            raise TreeError("an array leaf must hold at least one atom")
        if dead:
            if dead < 0 or dead >> len(atoms):
                raise TreeError("dead bitmap wider than the atom array")
            if dead.bit_count() >= len(atoms):
                raise TreeError("an array leaf must hold a visible atom")
        self.parent = parent
        self.atoms = atoms
        self.tree = tree
        self.dead = dead
        #: Visible atoms / used identifiers of the region. Plain
        #: attributes, not properties: the snapshot cache's width
        #: arithmetic reads them on hot paths.
        self.live_count = len(atoms) - dead.bit_count()
        self.id_count = len(atoms)
        #: Lazily built live-offset -> slot-offset table (None until a
        #: masked read needs it; stays None for dead == 0).
        self._live_map: Optional[List[int]] = None

    @property
    def implicit_depth(self) -> int:
        """Levels the exploded form of this region occupies."""
        return explode_depth(len(self.atoms))

    def live_atoms(self) -> List[object]:
        """The region's visible atoms (the raw array when nothing is
        dead — callers must not mutate the result)."""
        if not self.dead:
            return self.atoms
        dead = self.dead
        return [atom for offset, atom in enumerate(self.atoms)
                if not (dead >> offset) & 1]

    def _ensure_live_map(self) -> List[int]:
        table = self._live_map
        if table is None:
            dead = self.dead
            table = [offset for offset in range(len(self.atoms))
                     if not (dead >> offset) & 1]
            self._live_map = table
        return table

    def live_to_slot(self, offset: int) -> int:
        """Slot offset (index into ``atoms``) of visible atom ``offset``."""
        if not self.dead:
            return offset
        return self._ensure_live_map()[offset]

    def live_atom(self, offset: int) -> object:
        """The ``offset``-th *visible* atom of the region."""
        if not self.dead:
            return self.atoms[offset]
        return self.atoms[self._ensure_live_map()[offset]]

    def explode(self, around: Optional[int] = None) -> "PosNode":
        """Rebuild the region as tree structure; returns the new subtree
        root. Delegates to the owning tree (cache maintenance).
        ``around`` is the slot offset about to be touched — large leaves
        then explode partially around it."""
        if self.tree is None:
            raise TreeError("array leaf already exploded")
        return self.tree.explode_leaf(self, around)

    def posids(self) -> List[PosID]:
        """PosIDs of the region's *visible* atoms in document order,
        without exploding."""
        region = canonical_posids(self.base_elements(), len(self.atoms))
        dead = self.dead
        if not dead:
            return region
        return [posid for offset, posid in enumerate(region)
                if not (dead >> offset) & 1]

    def id_posids(self) -> List[PosID]:
        """PosIDs of every used identifier of the region (visible atoms
        and dead slots), in document order."""
        return canonical_posids(self.base_elements(), len(self.atoms))

    def base_elements(self) -> Tuple[PathElement, ...]:
        """Path elements of the region root (the attach point's child)."""
        if self.parent is None:
            raise TreeError("detached array leaf has no path")
        container, bit = self.parent
        if isinstance(container, MiniNode):
            raise TreeError("array leaf attached under a mini-node")
        return _node_posid(container).elements + (PathElement(bit),)

    def __repr__(self) -> str:
        if self.dead:
            return (f"<array-leaf {self.live_count} atoms "
                    f"(+{self.id_count - self.live_count} dead)>")
        return f"<array-leaf {len(self.atoms)} atoms>"


def iter_subtree_entries(root: "PosNode") -> Iterator[Entry]:
    """All storage entries of ``root``'s subtree in identifier order:
    atom slots as in :meth:`PosNode.iter_slots`, plus each
    :class:`ArrayLeaf` yielded whole at its region's infix position.

    Type dispatch mirrors :meth:`PosNode.iter_slots` — the PosNode
    branch first, so the common path costs exactly what the slot walk
    costs; leaves only pay on the rare mini/leaf branches.
    """
    stack: List[Tuple[object, int]] = [(root, 0)]
    while stack:
        item, phase = stack.pop()
        if isinstance(item, PosNode):
            if phase == 0:
                stack.append((item, 1))
                if item.left is not None:
                    stack.append((item.left, 0))
            else:
                yield item
                if item.right is not None:
                    stack.append((item.right, 0))
                for mini in reversed(item.minis):
                    stack.append((mini, 0))
        elif isinstance(item, MiniNode):
            mini = item
            if phase == 0:
                stack.append((mini, 1))
                if mini.left is not None:
                    stack.append((mini.left, 0))
            else:
                yield mini
                if mini.right is not None:
                    stack.append((mini.right, 0))
        else:  # ArrayLeaf: the whole region, in one entry
            yield item


def entry_atoms(entry: Entry) -> Iterator[object]:
    """The visible atoms an entry contributes (0, 1, or a whole region)."""
    if isinstance(entry, ArrayLeaf):
        yield from entry.live_atoms()
    elif entry.state == LIVE:
        yield entry.atom
