"""Tree storage nodes for Treedoc (section 3).

The extended binary tree is made of *position nodes* (:class:`PosNode`,
the paper's major nodes) and *mini-nodes* (:class:`MiniNode`). A position
node owns:

- a ``plain`` atom slot — used by identifiers whose final element carries
  no disambiguator (single-user documents and exploded/flattened regions);
- a collection of mini-nodes keyed by disambiguator — concurrent inserts
  at the same position land here;
- two child slots (left/right) reached by *plain* path elements.

Each mini-node additionally owns its own two child slots, reached by path
elements that follow a disambiguated element (rule (ii) of section 3.1).

Both the plain slot of a position node and every mini-node are *atom
slots*; a slot is EMPTY (structural only), LIVE (holds an atom) or a
TOMBSTONE (atom deleted under SDIS; the identifier stays used).

Position nodes cache two subtree aggregates maintained incrementally:

- ``live_count`` — LIVE atoms in the subtree (visible document length);
- ``id_count`` — LIVE + TOMBSTONE slots (used identifiers), which drives
  the tombstone-aware neighbour search of DESIGN.md section 3.2.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple, Union

from repro.core.disambiguator import Disambiguator
from repro.core.path import LEFT, RIGHT, PathElement, PosID
from repro.errors import TreeError

# Atom-slot states.
EMPTY = "empty"
LIVE = "live"
TOMBSTONE = "tombstone"


class MiniNode:
    """A mini-node: one disambiguated atom slot inside a position node."""

    __slots__ = ("host", "dis", "state", "atom", "left", "right")

    def __init__(self, host: "PosNode", dis: Disambiguator) -> None:
        self.host = host
        self.dis = dis
        self.state = EMPTY
        self.atom = None
        self.left: Optional[PosNode] = None
        self.right: Optional[PosNode] = None

    def child(self, bit: int) -> Optional["PosNode"]:
        """The child position node on side ``bit``, if materialized."""
        return self.left if bit == LEFT else self.right

    def set_child(self, bit: int, node: Optional["PosNode"]) -> None:
        """Attach or detach the child position node on side ``bit``."""
        if bit == LEFT:
            self.left = node
        else:
            self.right = node

    @property
    def is_leaf(self) -> bool:
        """True when the mini-node has no materialized children."""
        return self.left is None and self.right is None

    def __repr__(self) -> str:
        return f"<mini {self.dis!r} {self.state}>"


#: A parent link: the owning container and the branch bit, or None at root.
ParentLink = Optional[Tuple[Union["PosNode", MiniNode], int]]

#: An atom slot: a position node stands for its own plain slot.
AtomSlot = Union["PosNode", MiniNode]


class PosNode:
    """A position node (major node) of the extended binary tree."""

    __slots__ = (
        "parent",
        "plain_state",
        "plain_atom",
        "minis",
        "left",
        "right",
        "live_count",
        "id_count",
        "cached_posid",
    )

    def __init__(self, parent: ParentLink = None) -> None:
        self.parent: ParentLink = parent
        self.plain_state = EMPTY
        self.plain_atom = None
        # Sorted list of mini-nodes; nearly always 0 or 1 entries, so a
        # list with insertion-sort beats a tree or dict here.
        self.minis: List[MiniNode] = []
        self.left: Optional[PosNode] = None
        self.right: Optional[PosNode] = None
        self.live_count = 0
        self.id_count = 0
        #: Memoized PosID of this node's plain slot. Parent links never
        #: mutate after creation (structure is only ever added or
        #: detached whole; flatten builds fresh nodes), so the path is
        #: stable for the node's lifetime.
        self.cached_posid: Optional[PosID] = None

    # -- structure -----------------------------------------------------------

    def child(self, bit: int) -> Optional["PosNode"]:
        """The plain child on side ``bit``, if materialized."""
        return self.left if bit == LEFT else self.right

    def set_child(self, bit: int, node: Optional["PosNode"]) -> None:
        """Attach or detach the plain child on side ``bit``."""
        if bit == LEFT:
            self.left = node
        else:
            self.right = node

    def find_mini(self, dis: Disambiguator) -> Optional[MiniNode]:
        """The mini-node with disambiguator ``dis``, if present."""
        key = dis.key
        for mini in self.minis:
            mini_key = mini.dis.key
            if mini_key == key:
                return mini
            if mini_key > key:
                return None
        return None

    def get_or_create_mini(self, dis: Disambiguator) -> MiniNode:
        """Find or insert (in disambiguator order) the mini-node ``dis``."""
        key = dis.key
        for index, mini in enumerate(self.minis):
            mini_key = mini.dis.key
            if mini_key == key:
                return mini
            if mini_key > key:
                new = MiniNode(self, dis)
                self.minis.insert(index, new)
                return new
        new = MiniNode(self, dis)
        self.minis.append(new)
        return new

    def remove_mini(self, mini: MiniNode) -> None:
        """Detach ``mini`` from this node (UDIS discard)."""
        try:
            self.minis.remove(mini)
        except ValueError:
            raise TreeError("mini-node not attached to this position node")

    @property
    def is_structurally_empty(self) -> bool:
        """No atoms, no tombstones, no minis, no children: prunable."""
        return (
            self.plain_state == EMPTY
            and not self.minis
            and self.left is None
            and self.right is None
        )

    # -- slot protocol for the plain slot ------------------------------------

    @property
    def state(self) -> str:
        """State of this node's plain atom slot."""
        return self.plain_state

    @state.setter
    def state(self, value: str) -> None:
        self.plain_state = value

    @property
    def atom(self):
        """Atom held by the plain slot (None unless LIVE)."""
        return self.plain_atom

    @atom.setter
    def atom(self, value) -> None:
        self.plain_atom = value

    # -- infix iteration -----------------------------------------------------

    def iter_slots(self) -> Iterator[AtomSlot]:
        """All atom slots of this subtree, in identifier (infix) order.

        Yields position nodes (their plain slot) and mini-nodes. The
        order matches :func:`repro.core.path.compare_posids`: left child,
        plain slot, mini-nodes (each with its own left subtree, slot,
        right subtree) in disambiguator order, right child.
        """
        # Iterative walk with an explicit stack: documents replayed from
        # long append-heavy histories produce trees deeper than CPython's
        # default recursion limit.
        stack: List[Tuple[object, int]] = [(self, 0)]
        while stack:
            item, phase = stack.pop()
            if isinstance(item, PosNode):
                if phase == 0:
                    stack.append((item, 1))
                    if item.left is not None:
                        stack.append((item.left, 0))
                else:
                    yield item
                    if item.right is not None:
                        stack.append((item.right, 0))
                    for mini in reversed(item.minis):
                        stack.append((mini, 0))
            else:  # MiniNode
                mini = item
                if phase == 0:
                    stack.append((mini, 1))
                    if mini.left is not None:
                        stack.append((mini.left, 0))
                else:
                    yield mini
                    if mini.right is not None:
                        stack.append((mini.right, 0))

    def iter_nodes(self) -> Iterator["PosNode"]:
        """All position nodes of this subtree (pre-order, iterative)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            for mini in node.minis:
                if mini.right is not None:
                    stack.append(mini.right)
                if mini.left is not None:
                    stack.append(mini.left)
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)


# ---------------------------------------------------------------------------
# Slot helpers (shared by tree, allocation and flatten code).
# ---------------------------------------------------------------------------


def slot_state(slot: AtomSlot) -> str:
    """State of an atom slot (plain slot of a PosNode, or a MiniNode)."""
    return slot.state


def slot_is_id_holder(slot: AtomSlot) -> bool:
    """True when the slot occupies a used identifier (LIVE or TOMBSTONE)."""
    return slot.state != EMPTY


def slot_is_live(slot: AtomSlot) -> bool:
    """True when the slot currently holds a visible atom."""
    return slot.state == LIVE


def slot_host(slot: AtomSlot) -> PosNode:
    """The position node that owns the slot."""
    return slot.host if isinstance(slot, MiniNode) else slot


def parent_host(node: PosNode) -> Optional[PosNode]:
    """The position node one spine hop above ``node`` (through its
    parent link, resolving a mini-node container to its host), or None
    at the root. The one place the hop rule lives."""
    parent = node.parent
    if parent is None:
        return None
    container, _ = parent
    return container.host if isinstance(container, MiniNode) else container


def _node_posid(node: PosNode) -> PosID:
    """PosID of a position node's plain slot, memoized on the node.

    Walks up only as far as the first ancestor with a cached path, then
    fills the caches back down — a run of *k* fresh slots under one
    subtree costs O(depth + k) total instead of O(k * depth).
    """
    chain: List[PosNode] = []
    current = node
    while current.cached_posid is None and current.parent is not None:
        chain.append(current)
        container, _ = current.parent
        current = container.host if isinstance(container, MiniNode) else container
    if current.cached_posid is None:  # the root
        current.cached_posid = PosID()
    for current in reversed(chain):
        container, bit = current.parent
        if isinstance(container, MiniNode):
            host_elements = container.host.cached_posid.elements
            if not host_elements:
                # A mini-node directly at the root would need a
                # zero-length path carrying a disambiguator, which the
                # identifier space cannot express; the tree never
                # creates one.
                raise TreeError("mini-node attached to the root position node")
            current.cached_posid = PosID(
                host_elements[:-1]
                + (
                    PathElement(host_elements[-1].bit, container.dis),
                    PathElement(bit),
                )
            )
        else:
            current.cached_posid = container.cached_posid.child(bit)
    return node.cached_posid


def slot_posid(slot: AtomSlot) -> PosID:
    """Reconstruct the PosID naming ``slot`` (memoized per node)."""
    if isinstance(slot, MiniNode):
        host_elements = _node_posid(slot.host).elements
        if not host_elements:
            raise TreeError("mini-node attached to the root position node")
        return PosID(
            host_elements[:-1]
            + (PathElement(host_elements[-1].bit, slot.dis),)
        )
    return _node_posid(slot)


def slot_depth(slot: AtomSlot) -> int:
    """Number of path elements in the slot's PosID (cheap, no PosID)."""
    depth = 0
    node: Optional[PosNode] = slot_host(slot)
    while node is not None and node.parent is not None:
        depth += 1
        container, _ = node.parent
        node = container.host if isinstance(container, MiniNode) else container
    return depth
