"""Tree storage nodes for Treedoc (section 3).

The extended binary tree is made of *position nodes* (:class:`PosNode`,
the paper's major nodes) and *mini-nodes* (:class:`MiniNode`). A position
node owns:

- a ``plain`` atom slot — used by identifiers whose final element carries
  no disambiguator (single-user documents and exploded/flattened regions);
- a collection of mini-nodes keyed by disambiguator — concurrent inserts
  at the same position land here;
- two child slots (left/right) reached by *plain* path elements.

Each mini-node additionally owns its own two child slots, reached by path
elements that follow a disambiguated element (rule (ii) of section 3.1).

Both the plain slot of a position node and every mini-node are *atom
slots*; a slot is EMPTY (structural only), LIVE (holds an atom) or a
TOMBSTONE (atom deleted under SDIS; the identifier stays used).

Position nodes cache two subtree aggregates maintained incrementally:

- ``live_count`` — LIVE atoms in the subtree (visible document length);
- ``id_count`` — LIVE + TOMBSTONE slots (used identifiers), which drives
  the tombstone-aware neighbour search of DESIGN.md section 3.2.

Mixed storage (section 4.2)
---------------------------

A plain child slot may also hold an :class:`ArrayLeaf`: a quiescent
subtree stored as a bare atom list with *zero per-atom metadata*. A leaf
always stands for the **canonical exploded form** of its atoms (the
shape :func:`build_exploded` produces — what flatten leaves behind), so
exploding it back rebuilds the identical identifier structure
deterministically, without any replicated operation (the paper's
section 4.2.1 argument). The canonical-form machinery lives here, next
to the nodes, so :mod:`repro.core.tree` can explode on touch without an
import cycle; :mod:`repro.core.flatten` re-exports it.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.disambiguator import Disambiguator
from repro.core.path import LEFT, RIGHT, PathElement, PosID
from repro.errors import TreeError

# Atom-slot states.
EMPTY = "empty"
LIVE = "live"
TOMBSTONE = "tombstone"


class MiniNode:
    """A mini-node: one disambiguated atom slot inside a position node."""

    __slots__ = ("host", "dis", "state", "atom", "left", "right")

    def __init__(self, host: "PosNode", dis: Disambiguator) -> None:
        self.host = host
        self.dis = dis
        self.state = EMPTY
        self.atom = None
        self.left: Optional[PosNode] = None
        self.right: Optional[PosNode] = None

    def child(self, bit: int) -> Optional["PosNode"]:
        """The child position node on side ``bit``, if materialized."""
        return self.left if bit == LEFT else self.right

    def set_child(self, bit: int, node: Optional["PosNode"]) -> None:
        """Attach or detach the child position node on side ``bit``."""
        if bit == LEFT:
            self.left = node
        else:
            self.right = node

    @property
    def is_leaf(self) -> bool:
        """True when the mini-node has no materialized children."""
        return self.left is None and self.right is None

    def __repr__(self) -> str:
        return f"<mini {self.dis!r} {self.state}>"


#: A parent link: the owning container and the branch bit, or None at root.
ParentLink = Optional[Tuple[Union["PosNode", MiniNode], int]]

#: An atom slot: a position node stands for its own plain slot.
AtomSlot = Union["PosNode", MiniNode]

#: What a plain child slot can hold: a position node, or a collapsed
#: quiescent region (section 4.2 mixed storage).
Child = Union["PosNode", "ArrayLeaf"]

#: An infix storage entry: an atom slot, or a whole collapsed region.
Entry = Union["PosNode", MiniNode, "ArrayLeaf"]


class PosNode:
    """A position node (major node) of the extended binary tree."""

    __slots__ = (
        "parent",
        "plain_state",
        "plain_atom",
        "minis",
        "left",
        "right",
        "live_count",
        "id_count",
        "cached_posid",
    )

    def __init__(self, parent: ParentLink = None) -> None:
        self.parent: ParentLink = parent
        self.plain_state = EMPTY
        self.plain_atom = None
        # Sorted list of mini-nodes; nearly always 0 or 1 entries, so a
        # list with insertion-sort beats a tree or dict here.
        self.minis: List[MiniNode] = []
        self.left: Optional[PosNode] = None
        self.right: Optional[PosNode] = None
        self.live_count = 0
        self.id_count = 0
        #: Memoized PosID of this node's plain slot. Parent links never
        #: mutate after creation (structure is only ever added or
        #: detached whole; flatten builds fresh nodes), so the path is
        #: stable for the node's lifetime.
        self.cached_posid: Optional[PosID] = None

    # -- structure -----------------------------------------------------------

    def child(self, bit: int) -> Optional["PosNode"]:
        """The plain child on side ``bit``, if materialized."""
        return self.left if bit == LEFT else self.right

    def set_child(self, bit: int, node: Optional["PosNode"]) -> None:
        """Attach or detach the plain child on side ``bit``."""
        if bit == LEFT:
            self.left = node
        else:
            self.right = node

    def find_mini(self, dis: Disambiguator) -> Optional[MiniNode]:
        """The mini-node with disambiguator ``dis``, if present."""
        key = dis.key
        for mini in self.minis:
            mini_key = mini.dis.key
            if mini_key == key:
                return mini
            if mini_key > key:
                return None
        return None

    def get_or_create_mini(self, dis: Disambiguator) -> MiniNode:
        """Find or insert (in disambiguator order) the mini-node ``dis``."""
        key = dis.key
        for index, mini in enumerate(self.minis):
            mini_key = mini.dis.key
            if mini_key == key:
                return mini
            if mini_key > key:
                new = MiniNode(self, dis)
                self.minis.insert(index, new)
                return new
        new = MiniNode(self, dis)
        self.minis.append(new)
        return new

    def remove_mini(self, mini: MiniNode) -> None:
        """Detach ``mini`` from this node (UDIS discard)."""
        try:
            self.minis.remove(mini)
        except ValueError:
            raise TreeError("mini-node not attached to this position node")

    @property
    def is_structurally_empty(self) -> bool:
        """No atoms, no tombstones, no minis, no children: prunable."""
        return (
            self.plain_state == EMPTY
            and not self.minis
            and self.left is None
            and self.right is None
        )

    # -- slot protocol for the plain slot ------------------------------------

    @property
    def state(self) -> str:
        """State of this node's plain atom slot."""
        return self.plain_state

    @state.setter
    def state(self, value: str) -> None:
        self.plain_state = value

    @property
    def atom(self):
        """Atom held by the plain slot (None unless LIVE)."""
        return self.plain_atom

    @atom.setter
    def atom(self, value) -> None:
        self.plain_atom = value

    # -- infix iteration -----------------------------------------------------

    def iter_slots(self) -> Iterator[AtomSlot]:
        """All atom slots of this subtree, in identifier (infix) order.

        Yields position nodes (their plain slot) and mini-nodes. The
        order matches :func:`repro.core.path.compare_posids`: left child,
        plain slot, mini-nodes (each with its own left subtree, slot,
        right subtree) in disambiguator order, right child.

        Raises :class:`TreeError` on an :class:`ArrayLeaf` child: leaf
        atoms have no slot objects. Callers that must handle mixed
        storage walk :func:`iter_subtree_entries` instead; callers that
        need slots explode the region first.
        """
        # Iterative walk with an explicit stack: documents replayed from
        # long append-heavy histories produce trees deeper than CPython's
        # default recursion limit.
        stack: List[Tuple[object, int]] = [(self, 0)]
        while stack:
            item, phase = stack.pop()
            if isinstance(item, ArrayLeaf):
                raise TreeError(
                    "iter_slots over a subtree holding an array leaf; "
                    "walk iter_subtree_entries or explode first"
                )
            if isinstance(item, PosNode):
                if phase == 0:
                    stack.append((item, 1))
                    if item.left is not None:
                        stack.append((item.left, 0))
                else:
                    yield item
                    if item.right is not None:
                        stack.append((item.right, 0))
                    for mini in reversed(item.minis):
                        stack.append((mini, 0))
            else:  # MiniNode
                mini = item
                if phase == 0:
                    stack.append((mini, 1))
                    if mini.left is not None:
                        stack.append((mini.left, 0))
                else:
                    yield mini
                    if mini.right is not None:
                        stack.append((mini.right, 0))

    def iter_nodes(self) -> Iterator["PosNode"]:
        """All tree-resident position nodes of this subtree (pre-order,
        iterative). Collapsed regions (:class:`ArrayLeaf`) hold no nodes
        and are skipped; walk :func:`iter_subtree_entries` to see them."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            for mini in node.minis:
                if mini.right is not None:
                    stack.append(mini.right)
                if mini.left is not None:
                    stack.append(mini.left)
            for child in (node.right, node.left):
                if child is not None and not isinstance(child, ArrayLeaf):
                    stack.append(child)


# ---------------------------------------------------------------------------
# Slot helpers (shared by tree, allocation and flatten code).
# ---------------------------------------------------------------------------


def slot_state(slot: AtomSlot) -> str:
    """State of an atom slot (plain slot of a PosNode, or a MiniNode)."""
    return slot.state


def slot_is_id_holder(slot: AtomSlot) -> bool:
    """True when the slot occupies a used identifier (LIVE or TOMBSTONE)."""
    return slot.state != EMPTY


def slot_is_live(slot: AtomSlot) -> bool:
    """True when the slot currently holds a visible atom."""
    return slot.state == LIVE


def slot_host(slot: AtomSlot) -> PosNode:
    """The position node that owns the slot."""
    return slot.host if isinstance(slot, MiniNode) else slot


def parent_host(node: PosNode) -> Optional[PosNode]:
    """The position node one spine hop above ``node`` (through its
    parent link, resolving a mini-node container to its host), or None
    at the root. The one place the hop rule lives."""
    parent = node.parent
    if parent is None:
        return None
    container, _ = parent
    return container.host if isinstance(container, MiniNode) else container


def _node_posid(node: PosNode) -> PosID:
    """PosID of a position node's plain slot, memoized on the node.

    Walks up only as far as the first ancestor with a cached path, then
    fills the caches back down — a run of *k* fresh slots under one
    subtree costs O(depth + k) total instead of O(k * depth).
    """
    chain: List[PosNode] = []
    current = node
    while current.cached_posid is None and current.parent is not None:
        chain.append(current)
        container, _ = current.parent
        current = container.host if isinstance(container, MiniNode) else container
    if current.cached_posid is None:  # the root
        current.cached_posid = PosID()
    for current in reversed(chain):
        container, bit = current.parent
        if isinstance(container, MiniNode):
            host_elements = container.host.cached_posid.elements
            if not host_elements:
                # A mini-node directly at the root would need a
                # zero-length path carrying a disambiguator, which the
                # identifier space cannot express; the tree never
                # creates one.
                raise TreeError("mini-node attached to the root position node")
            current.cached_posid = PosID(
                host_elements[:-1]
                + (
                    PathElement(host_elements[-1].bit, container.dis),
                    PathElement(bit),
                )
            )
        else:
            current.cached_posid = container.cached_posid.child(bit)
    return node.cached_posid


def slot_posid(slot: AtomSlot) -> PosID:
    """Reconstruct the PosID naming ``slot`` (memoized per node)."""
    if isinstance(slot, MiniNode):
        host_elements = _node_posid(slot.host).elements
        if not host_elements:
            raise TreeError("mini-node attached to the root position node")
        return PosID(
            host_elements[:-1]
            + (PathElement(host_elements[-1].bit, slot.dis),)
        )
    return _node_posid(slot)


def slot_depth(slot: AtomSlot) -> int:
    """Number of path elements in the slot's PosID (cheap, no PosID)."""
    depth = 0
    node: Optional[PosNode] = slot_host(slot)
    while node is not None and node.parent is not None:
        depth += 1
        container, _ = node.parent
        node = container.host if isinstance(container, MiniNode) else container
    return depth


# ---------------------------------------------------------------------------
# Canonical exploded form (section 4.2, Algorithm 2) — the shape that
# both flatten and explode-on-touch build, and the shape a subtree must
# have to be collapsible into an ArrayLeaf.
# ---------------------------------------------------------------------------


def explode_depth(atom_count: int) -> int:
    """Depth of the canonical complete tree for ``atom_count`` atoms.

    ``ceil(log2(n + 1))`` computed exactly as ``n.bit_length()`` — no
    float round-trip (the shape check must be bit-exact at any size).
    """
    return atom_count.bit_length() if atom_count else 1


def _canonical_split(count: int) -> Tuple[int, int]:
    """``(left_atoms, right_atoms)`` of the canonical root for ``count``
    atoms: the root sits after its complete left subtree, or takes the
    last atom when the final level is only partially filled."""
    left = min((1 << (explode_depth(count) - 1)) - 1, count - 1)
    return left, count - 1 - left


def build_exploded(node: "PosNode", atoms: Sequence[object]) -> None:
    """Rebuild ``node``'s subtree as the canonical exploded form of
    ``atoms`` (Algorithm 2), in place. The node keeps its parent link.

    With no atoms the subtree becomes a bare empty node.
    """
    node.plain_state = EMPTY
    node.plain_atom = None
    node.minis = []
    node.left = None
    node.right = None
    if not atoms:
        node.live_count = 0
        node.id_count = 0
        return
    _fill_complete(node, list(atoms))


def _fill_complete(node: "PosNode", atoms: List[object]) -> None:
    """Assign ``atoms`` infix-style to a complete subtree under ``node``.

    The middle atom lands on ``node`` itself; left and right halves
    recurse into freshly created children. Surplus positions are simply
    never created, which realizes Algorithm 2's "remove any remaining
    nodes" without a second pass. Children are complete trees, so the
    result equals building the full tree and pruning.
    """
    # Iterative splitting to cope with large arrays without recursion
    # limits: stack of (node, atom-slice bounds).
    stack: List[Tuple[PosNode, int, int]] = [(node, 0, len(atoms))]
    while stack:
        current, lo, hi = stack.pop()
        count = hi - lo
        left_atoms, right_atoms = _canonical_split(count)
        mid = lo + left_atoms
        current.plain_state = LIVE
        current.plain_atom = atoms[mid]
        current.live_count = count
        current.id_count = count
        if left_atoms > 0:
            left = PosNode(parent=(current, LEFT))
            current.left = left
            stack.append((left, lo, mid))
        if right_atoms > 0:
            right = PosNode(parent=(current, RIGHT))
            current.right = right
            stack.append((right, mid + 1, hi))


def collect_array_atoms(child: Child, min_atoms: int = 1) -> Optional[List[object]]:
    """The subtree's atoms when it is in canonical exploded form, else
    None (the collapse predicate and atom harvest in one walk).

    Canonical means: every position node holds a LIVE plain atom, no
    mini-nodes, no tombstones, no empty structural nodes, and the left/
    right split at every level matches :func:`build_exploded` — so a
    later explode rebuilds the *identical* structure. An already
    collapsed child (:class:`ArrayLeaf`) counts as canonical for its own
    atoms, which lets neighbouring leaves merge into a larger one.

    Verifying split counts before descending bounds the walk to the
    canonical depth (O(log n) recursion), so this is safe on trees far
    deeper than the recursion limit: a non-canonical deep chain fails
    its count check at the top.
    """
    expected = (
        len(child.atoms) if isinstance(child, ArrayLeaf) else child.live_count
    )
    if expected < min_atoms:
        return None
    out: List[object] = []
    if _collect_canonical(child, expected, out):
        return out
    return None


def _collect_canonical(child: Child, expected: int, out: List[object]) -> bool:
    if isinstance(child, ArrayLeaf):
        if len(child.atoms) != expected:
            return False
        out.extend(child.atoms)
        return True
    node = child
    if (
        node.plain_state != LIVE
        or node.minis
        or node.live_count != expected
        or node.id_count != expected
    ):
        return False
    left_atoms, right_atoms = _canonical_split(expected)
    if left_atoms == 0:
        if node.left is not None:
            return False
    elif node.left is None or not _collect_canonical(node.left, left_atoms, out):
        return False
    out.append(node.plain_atom)
    if right_atoms == 0:
        return node.right is None
    if node.right is None:
        return False
    return _collect_canonical(node.right, right_atoms, out)


def canonical_path_bits(count: int, index: int) -> Tuple[int, ...]:
    """Branch bits of atom ``index`` within a canonical region of
    ``count`` atoms, relative to the region root (O(log count))."""
    if not 0 <= index < count:
        raise TreeError(f"atom index {index} out of canonical region 0..{count}")
    bits: List[int] = []
    lo, hi = 0, count
    while True:
        left_atoms, _ = _canonical_split(hi - lo)
        mid = lo + left_atoms
        if index == mid:
            return tuple(bits)
        if index < mid:
            bits.append(LEFT)
            hi = mid
        else:
            bits.append(RIGHT)
            lo = mid + 1


def canonical_posids(base: Tuple[PathElement, ...], count: int) -> List[PosID]:
    """PosIDs of a canonical region's atoms, in document order.

    ``base`` is the path of the region root (the root atom's own PosID
    elements); deeper atoms extend it with plain branch bits. One
    infix-ordered pass shares the prefix tuples along each spine.
    """
    out: List[Optional[PosID]] = [None] * count
    stack: List[Tuple[Tuple[PathElement, ...], int, int]] = [(base, 0, count)]
    while stack:
        elements, lo, hi = stack.pop()
        left_atoms, right_atoms = _canonical_split(hi - lo)
        mid = lo + left_atoms
        out[mid] = PosID(elements)
        if left_atoms > 0:
            stack.append((elements + (PathElement(LEFT),), lo, mid))
        if right_atoms > 0:
            stack.append((elements + (PathElement(RIGHT),), mid + 1, hi))
    return out  # type: ignore[return-value]


class ArrayLeaf:
    """A quiescent region stored as a bare atom list (section 4.2).

    Replaces a whole subtree at a position node's plain child slot. The
    region is always the canonical exploded form of ``atoms`` — fully
    live, fully plain — so the leaf needs **no per-atom metadata**: its
    identifier structure is implied by the atom count and the attach
    point. :meth:`explode` rebuilds that structure deterministically and
    locally when a path lands inside the region ("applying a path to an
    array", section 4.2.1) — no replicated explode operation exists.

    ``tree`` is the owning :class:`repro.core.tree.TreedocTree`: explode
    must drop the tree's live-snapshot cache, and navigation helpers
    that step into a leaf have no other route to the tree. Explode
    clears both ``parent`` and ``tree`` on the way out, so an exploded
    husk is fully detached: it dies by reference counting alone and a
    stray reference to it cannot pin the tree.
    """

    __slots__ = ("parent", "atoms", "tree")

    #: Class-level pseudo-state: a leaf is not an atom slot, but giving
    #: it a ``state`` that matches no slot state lets hot dispatch loops
    #: test ``entry.state == LIVE`` first (the common case) and fall to
    #: a type check only for leaves, instead of paying an isinstance on
    #: every slot.
    state = "array"

    def __init__(self, parent: ParentLink, atoms: List[object], tree) -> None:
        if not atoms:
            raise TreeError("an array leaf must hold at least one atom")
        self.parent = parent
        self.atoms = atoms
        self.tree = tree

    @property
    def live_count(self) -> int:
        """Visible atoms — the whole region is live by construction."""
        return len(self.atoms)

    @property
    def id_count(self) -> int:
        """Used identifiers — one per atom, no tombstones by construction."""
        return len(self.atoms)

    @property
    def implicit_depth(self) -> int:
        """Levels the exploded form of this region occupies."""
        return explode_depth(len(self.atoms))

    def explode(self) -> "PosNode":
        """Rebuild the region as tree structure; returns the new subtree
        root. Delegates to the owning tree (cache maintenance)."""
        if self.tree is None:
            raise TreeError("array leaf already exploded")
        return self.tree.explode_leaf(self)

    def posids(self) -> List[PosID]:
        """The region's atom PosIDs in document order, without exploding."""
        return canonical_posids(self.base_elements(), len(self.atoms))

    def base_elements(self) -> Tuple[PathElement, ...]:
        """Path elements of the region root (the attach point's child)."""
        if self.parent is None:
            raise TreeError("detached array leaf has no path")
        container, bit = self.parent
        if isinstance(container, MiniNode):
            raise TreeError("array leaf attached under a mini-node")
        return _node_posid(container).elements + (PathElement(bit),)

    def __repr__(self) -> str:
        return f"<array-leaf {len(self.atoms)} atoms>"


def iter_subtree_entries(root: "PosNode") -> Iterator[Entry]:
    """All storage entries of ``root``'s subtree in identifier order:
    atom slots as in :meth:`PosNode.iter_slots`, plus each
    :class:`ArrayLeaf` yielded whole at its region's infix position.

    Type dispatch mirrors :meth:`PosNode.iter_slots` — the PosNode
    branch first, so the common path costs exactly what the slot walk
    costs; leaves only pay on the rare mini/leaf branches.
    """
    stack: List[Tuple[object, int]] = [(root, 0)]
    while stack:
        item, phase = stack.pop()
        if isinstance(item, PosNode):
            if phase == 0:
                stack.append((item, 1))
                if item.left is not None:
                    stack.append((item.left, 0))
            else:
                yield item
                if item.right is not None:
                    stack.append((item.right, 0))
                for mini in reversed(item.minis):
                    stack.append((mini, 0))
        elif isinstance(item, MiniNode):
            mini = item
            if phase == 0:
                stack.append((mini, 1))
                if mini.left is not None:
                    stack.append((mini.left, 0))
            else:
                yield mini
                if mini.right is not None:
                    stack.append((mini.right, 0))
        else:  # ArrayLeaf: the whole region, in one entry
            yield item


def entry_atoms(entry: Entry) -> Iterator[object]:
    """The visible atoms an entry contributes (0, 1, or a whole region)."""
    if isinstance(entry, ArrayLeaf):
        yield from entry.atoms
    elif entry.state == LIVE:
        yield entry.atom
