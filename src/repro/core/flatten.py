"""Structural clean-up: explode and flatten (section 4.2, Algorithm 2).

``explode`` maps an atom array onto the canonical complete binary tree:
depth ``ceil(log2(n+1))``, atoms assigned to positions in infix order,
surplus positions removed. After explode every path is a plain bitstring
with no disambiguators — the zero-overhead representation.

``flatten`` replaces a subtree by the explode of its visible atom
sequence, discarding tombstones, mini-nodes and disambiguators in one
stroke. Replicas must apply the same flatten to the same state, which the
distributed commitment protocol of :mod:`repro.replication.commit`
guarantees; the functions here are the local state transformations.

``ColdRegionFinder`` implements the flatten heuristic evaluated in
section 5.1: position nodes are stamped with the revision that last
touched them, and the largest subtree untouched for ``min_age``
revisions (holding at least ``min_slots`` identifiers) is picked for
flattening.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.node import (  # noqa: F401  (re-exported: historical home)
    EMPTY,
    LIVE,
    ArrayLeaf,
    MiniNode,
    PosNode,
    build_exploded,
    entry_atoms,
    explode_depth,
    iter_subtree_entries,
)
from repro.core.path import LEFT, RIGHT, PosID
from repro.core.tree import TreedocTree
from repro.errors import TreeError


def explode(atoms: Sequence[object]) -> TreedocTree:
    """Algorithm 2: a fresh tree whose contents equal ``atoms``.

    The root position node carries the middle atom; all identifiers are
    plain bitstrings.
    """
    tree = TreedocTree()
    build_exploded(tree.root, atoms)
    tree.height = _subtree_height(tree.root)
    # The atoms were written directly into the nodes, bypassing
    # set_live: the fresh tree's (valid, empty) snapshot cache would be
    # stale — invalidate it.
    tree.invalidate_live_cache()
    return tree


def _subtree_height(node: PosNode) -> int:
    height = 0
    stack: List[Tuple[object, int]] = [(node, 0)]
    while stack:
        current, depth = stack.pop()
        if isinstance(current, ArrayLeaf):
            # The region's exploded form would occupy this many levels.
            depth += current.implicit_depth - 1
            if depth > height:
                height = depth
            continue
        if depth > height:
            height = depth
        for mini in current.minis:
            for child in (mini.left, mini.right):
                if child is not None:
                    stack.append((child, depth + 1))
        for child in (current.left, current.right):
            if child is not None:
                stack.append((child, depth + 1))
    return height


def subtree_atoms(node: PosNode) -> List[object]:
    """Visible atoms of ``node``'s subtree, in identifier order
    (collapsed regions contribute their arrays without exploding)."""
    atoms: List[object] = []
    append = atoms.append
    for entry in iter_subtree_entries(node):
        # Slots first (the common case): a leaf's pseudo-state never
        # equals LIVE, so it falls through to the extend branch.
        if entry.state == LIVE:
            append(entry.atom)
        elif type(entry) is ArrayLeaf:
            atoms.extend(entry.live_atoms())
    return atoms


def flatten_subtree(tree: TreedocTree, path: PosID,
                    atoms: Optional[List[object]] = None) -> List[object]:
    """Flatten the subtree rooted at the position node named by ``path``
    (plain bits only): rebuild it as the canonical exploded form of its
    visible atoms. Returns the atom array.

    ``atoms`` may carry the subtree's visible atoms when the caller
    already walked the region (the digest check does); passing them
    skips a redundant walk.

    Raises :class:`TreeError` when ``path`` has disambiguated elements or
    names no materialized node.
    """
    node = resolve_region(tree, path)
    old_counts = (node.live_count, node.id_count)
    if atoms is None:
        atoms = subtree_atoms(node)
    build_exploded(node, atoms)
    tree.recount_subtree(node, old_counts=old_counts)
    tree.height = _subtree_height(tree.root)
    return atoms


def resolve_region(tree: TreedocTree, path: PosID) -> PosNode:
    """The position node named by a plain-bit ``path``.

    A path landing on or inside a collapsed region explodes it —
    applying a path to an array (section 4.2.1)."""
    node = tree.root
    for element in path:
        if element.dis is not None:
            raise TreeError("flatten regions are addressed by plain paths")
        child = node.child(element.bit)
        if child is None:
            raise TreeError(f"no node at region path {path!r}")
        if isinstance(child, ArrayLeaf):
            child = child.explode()
        node = child
    return node


class ColdRegionFinder:
    """Pick "cold" subtrees for flattening (section 5.1 heuristic).

    The tree's owner stamps every position node on the path of each edit
    with a monotonically increasing revision number (see
    :meth:`repro.core.treedoc.Treedoc.note_revision`). A subtree is cold
    when its newest stamp is at least ``min_age`` revisions old.
    """

    def __init__(self, min_age: int = 1, min_slots: int = 4,
                 min_depth: int = 1) -> None:
        if min_age < 1:
            raise ValueError("min_age must be at least 1")
        if min_depth < 1:
            raise ValueError("min_depth must be at least 1")
        self.min_age = min_age
        self.min_slots = min_slots
        #: Never flatten above this depth. 1 forbids only the root
        #: (whole-document flattening stays an explicit operation);
        #: larger values emulate the paper's weaker heuristic, which
        #: flattened partial "cold areas" and left many tombstones
        #: behind (section 5.1 discusses the shortfall).
        self.min_depth = min_depth

    def find(self, tree: TreedocTree, stamps: dict,
             current_revision: int) -> Optional[PosID]:
        """Largest cold *proper* subtree's plain path, or None.

        ``stamps`` maps id(PosNode) -> last-touch revision; unstamped
        nodes count as never touched (revision 0). The root itself is
        never selected: the paper's heuristic flattens "some cold area"
        of the document, not the whole of it (and observes that its
        partial subtree choice limits the achievable clean-up —
        section 5.1); whole-document flattening remains available
        explicitly via ``flatten_local(ROOT)``.
        """
        # One bottom-up pass computes every subtree's newest stamp, so
        # the top-down selection below reads a dict entry per node
        # instead of re-walking each candidate subtree (which made the
        # heuristic quadratic on replay workloads).
        # Subtrees holding collapsed regions are never selected: a
        # flatten would swallow the zero-metadata array leaves back
        # into per-atom tree form for no tombstone gain (the leaves are
        # fully live and canonical by construction). The finder
        # descends past them and cleans the tree-form pockets around
        # them instead.
        newest, leafy = self._survey(tree.root, stamps)
        best: Optional[Tuple[Tuple[int, int], List[int]]] = None
        # Walk top-down; the first cold node on a branch dominates its
        # descendants, so do not descend past a cold subtree.
        stack: List[Tuple[PosNode, List[int]]] = [(tree.root, [])]
        while stack:
            node, bits = stack.pop()
            if len(bits) >= self.min_depth and id(node) not in leafy and (
                current_revision - newest[id(node)] >= self.min_age
            ):
                if node.id_count >= self.min_slots:
                    # Prefer the region with the most *dead* identifiers
                    # (tombstones to collect), then the largest. Scoring
                    # by size alone wastes flattens on big clean regions
                    # — plausibly the shortfall the paper reports for
                    # its own heuristic (section 5.1).
                    score = (node.id_count - node.live_count, node.id_count)
                    if best is None or score > best[0]:
                        best = (score, bits)
                continue
            for bit, child in ((LEFT, node.left), (RIGHT, node.right)):
                if child is not None and not isinstance(child, ArrayLeaf):
                    stack.append((child, bits + [bit]))
        if best is None:
            return None
        return PosID.from_bits(best[1])

    @staticmethod
    def _survey(node: PosNode, stamps: dict) -> Tuple[dict, set]:
        """One post-order pass over the subtree under ``node``:

        - ``newest``: id(PosNode) -> newest stamp in that node's
          subtree (collapsed regions are quiescent by construction and
          never stamped, so array leaves contribute nothing);
        - ``leafy``: ids of position nodes whose subtree holds an array
          leaf (excluded from flatten candidacy).
        """
        order: List[PosNode] = []
        stack: List[PosNode] = [node]
        while stack:
            current = stack.pop()
            order.append(current)
            for mini in current.minis:
                for child in (mini.left, mini.right):
                    if child is not None:
                        stack.append(child)
            for child in (current.left, current.right):
                if child is not None and type(child) is not ArrayLeaf:
                    stack.append(child)
        newest: dict = {}
        leafy: set = set()
        get_stamp = stamps.get
        for current in reversed(order):
            value = get_stamp(id(current), 0)
            is_leafy = False
            for mini in current.minis:
                for child in (mini.left, mini.right):
                    if child is not None:
                        child_value = newest[id(child)]
                        if child_value > value:
                            value = child_value
                        if id(child) in leafy:
                            is_leafy = True
            for child in (current.left, current.right):
                if child is None:
                    continue
                if type(child) is ArrayLeaf:
                    is_leafy = True
                    continue
                child_value = newest[id(child)]
                if child_value > value:
                    value = child_value
                if id(child) in leafy:
                    is_leafy = True
            newest[id(current)] = value
            if is_leafy:
                leafy.add(id(current))
        return newest, leafy

    @classmethod
    def _newest_stamps(cls, node: PosNode, stamps: dict) -> dict:
        """id(PosNode) -> newest stamp in that node's subtree (see
        :meth:`_survey`; kept for callers that need only the stamps)."""
        return cls._survey(node, stamps)[0]
