"""Atom runs: the shared RLE segment layout of wire and disk (section 5.2).

A *run* is a contiguous region of atoms whose identifier structure is a
deterministic function of three small facts — the path of the region
root, the atom count, and an optional disambiguator pattern — so the
region can cross a boundary (the wire, the disk) as ``base + count +
atoms`` instead of one framed identifier per atom. Two shapes exist in
this codebase, and both are runs:

- **canonical** (:data:`CANONICAL`): the canonical exploded form that
  flatten, explode-on-touch and :class:`repro.core.node.ArrayLeaf`
  regions all share (``build_exploded``'s split rule). Its member
  identifiers are plain paths implied by the count alone.
- **prefix** (:data:`PREFIX`): the shape ``Allocator.place_run`` mints
  for a local burst — the first *n* infix positions of one complete
  subtree of depth ``explode_depth(n)``, each atom a mini-node. A
  burst's UDIS disambiguators carry consecutive counters from one site,
  so the whole pattern compresses to ``(site, first counter)``; under
  SDIS it is just the site.

This module owns everything both sides need and must agree on:

- the :class:`AtomRun` model — member PosIDs, expansion to insert
  operations, both shape generators;
- run *detection* in operation sequences (:func:`find_runs` /
  :func:`run_from_ops`), used by the v2 batch frames of
  :mod:`repro.core.encoding`;
- the RLE **run record** codec (:func:`write_run_record` /
  :func:`read_run_record`) and the :class:`AtomTable` it references —
  the exact ``(count, first reference)`` pair the disk v2 leaf record
  invented, now shared so the wire and disk layouts cannot drift;
- document **state segments**: :func:`iter_state_segments` harvests a
  whole tree as runs plus singleton operations, and
  :func:`load_state_segments` rebuilds a tree from them, loading
  canonical runs directly into :class:`ArrayLeaf` children *without
  exploding* (the anti-entropy fast path).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.core.disambiguator import Disambiguator, Sdis, SiteId, Udis
from repro.core.node import (
    EMPTY,
    LIVE,
    TOMBSTONE,
    ArrayLeaf,
    MiniNode,
    PosNode,
    canonical_posids,
    collect_array_atoms,
    explode_depth,
)
from repro.core.ops import DeleteOp, InsertOp, Operation
from repro.core.path import LEFT, RIGHT, PathElement, PosID
from repro.errors import EncodingError, TreeError

#: Run shapes (see module docstring).
CANONICAL = "canonical"
PREFIX = "prefix"

#: Smallest burst worth a run segment on the wire: below this the base
#: path + pattern header costs more than the per-op framing it saves.
RUN_MIN_ATOMS = 4

#: A run's disambiguator pattern: None for plain canonical regions,
#: ``("udis", site, first_counter)`` for a UDIS burst (counters are
#: consecutive in document order), ``("sdis", site)`` for an SDIS burst.
DisPattern = Optional[Tuple]

#: What a segment stream may carry: whole runs and singleton operations.
Segment = Union["AtomRun", Operation]


# ---------------------------------------------------------------------------
# Shape generators.
# ---------------------------------------------------------------------------


def prefix_path_bits(count: int, index: int) -> Tuple[int, ...]:
    """Branch bits of atom ``index`` within a *prefix*-shaped run of
    ``count`` atoms: the ``index``-th infix position of the complete
    subtree of depth ``explode_depth(count)`` (``place_run``'s layout),
    relative to the region root."""
    if not 0 <= index < count:
        raise TreeError(f"atom index {index} out of run 0..{count}")
    bits: List[int] = []
    levels = explode_depth(count)
    while True:
        half = (1 << (levels - 1)) - 1  # positions in the left subtree
        if index == half:
            return tuple(bits)
        if index < half:
            bits.append(LEFT)
        else:
            bits.append(RIGHT)
            index -= half + 1
        levels -= 1


def prefix_posids(base: Tuple[PathElement, ...], count: int) -> List[PosID]:
    """Plain PosIDs of a prefix-shaped run's atoms, in document order
    (the prefix-shape analogue of :func:`canonical_posids`)."""
    out: List[Optional[PosID]] = [None] * count
    levels = explode_depth(count)
    stack: List[Tuple[Tuple[PathElement, ...], int, int]] = [(base, 0, levels)]
    while stack:
        elements, lo, level = stack.pop()
        half = (1 << (level - 1)) - 1
        mid = lo + half
        if mid < count:
            out[mid] = PosID(elements)
        if level > 1:
            if lo < count and half > 0:
                stack.append((elements + (PathElement(LEFT),), lo, level - 1))
            if mid + 1 < count:
                stack.append((elements + (PathElement(RIGHT),), mid + 1,
                              level - 1))
    return out  # type: ignore[return-value]


def _pattern_dis(dis: DisPattern, index: int) -> Optional[Disambiguator]:
    """The ``index``-th disambiguator of a run's pattern (doc order)."""
    if dis is None:
        return None
    if dis[0] == "udis":
        return Udis(dis[2] + index, dis[1])
    return Sdis(dis[1])


class AtomRun:
    """One contiguous run: base path + atoms + shape + dis pattern.

    ``base`` is the element path of the region root's atom (non-empty;
    its final element is plain — the region hangs at a plain child
    slot). Member identifiers extend it with shape-implied branch bits;
    with a dis pattern, each member's *final* element carries its
    pattern-implied disambiguator (the run's atoms are mini-nodes).
    """

    __slots__ = ("base", "atoms", "shape", "dis")

    def __init__(self, base: Tuple[PathElement, ...],
                 atoms: Tuple[object, ...],
                 shape: str = CANONICAL,
                 dis: DisPattern = None) -> None:
        if not base:
            raise TreeError("a run cannot be rooted at the tree root")
        if base[-1].dis is not None:
            raise TreeError("a run's base must end in a plain element")
        if not atoms:
            raise TreeError("a run must hold at least one atom")
        if shape not in (CANONICAL, PREFIX):
            raise TreeError(f"unknown run shape {shape!r}")
        self.base = tuple(base)
        self.atoms = tuple(atoms)
        self.shape = shape
        self.dis = dis

    def __len__(self) -> int:
        return len(self.atoms)

    @property
    def kind(self) -> str:
        return "run"

    def posids(self) -> List[PosID]:
        """Member PosIDs in document order."""
        count = len(self.atoms)
        if self.shape == CANONICAL:
            plain = canonical_posids(self.base, count)
        else:
            plain = prefix_posids(self.base, count)
        if self.dis is None:
            return plain
        out: List[PosID] = []
        for index, posid in enumerate(plain):
            elements = posid.elements
            out.append(PosID(
                elements[:-1]
                + (PathElement(elements[-1].bit,
                               _pattern_dis(self.dis, index)),)
            ))
        return out

    def insert_ops(self, origin: SiteId) -> List[InsertOp]:
        """The run expanded to per-atom insert operations."""
        return [InsertOp(posid, atom, origin)
                for posid, atom in zip(self.posids(), self.atoms)]

    @classmethod
    def from_leaf(cls, leaf: ArrayLeaf) -> "AtomRun":
        """The run standing for a collapsed region (always canonical,
        always plain — that is what makes a leaf a leaf). Leaves with a
        dead bitmap have no run form (a run's identifiers are all live)
        and are rejected."""
        if leaf.dead:
            raise TreeError("a tombstone-bearing leaf has no run form")
        return cls(leaf.base_elements(), tuple(leaf.atoms), CANONICAL, None)

    def __eq__(self, other: object) -> bool:
        """Value equality (a run is its four facts): decoded segment
        streams — batch frames, state frames, SyncDelta bodies — must
        compare equal to what the encoder was handed."""
        if not isinstance(other, AtomRun):
            return NotImplemented
        return (self.base == other.base and self.atoms == other.atoms
                and self.shape == other.shape and self.dis == other.dis)

    def __hash__(self) -> int:
        return hash((self.base, self.atoms, self.shape, self.dis))

    def __repr__(self) -> str:
        return (
            f"<run {self.shape} {len(self.atoms)} atoms "
            f"base={PosID(self.base)!r}>"
        )


# ---------------------------------------------------------------------------
# Run detection in operation sequences (the wire encoder's side).
# ---------------------------------------------------------------------------


def run_from_ops(ops: Sequence[object],
                 min_atoms: int = RUN_MIN_ATOMS) -> Optional[AtomRun]:
    """The run exactly covering ``ops``, or None.

    ``ops`` must be consecutive inserts from one origin whose
    identifiers realize one run shape under one dis pattern —
    ``place_run`` bursts (prefix shape, per-atom minis) and canonical
    regions (plain paths) both qualify. Detection is exact: the implied
    member identifiers are regenerated and compared, so a false
    positive is impossible.
    """
    count = len(ops)
    if count < min_atoms:
        return None
    first = ops[0]
    if type(first) is not InsertOp:
        return None
    origin = first.origin
    finals: List[Optional[Disambiguator]] = []
    for op in ops:
        if type(op) is not InsertOp or op.origin != origin:
            return None
        finals.append(op.posid.last.dis if op.posid.depth else None)
    dis = _infer_pattern(finals)
    if dis is _NO_PATTERN:
        return None
    # Atom 0 sits at the end of the all-LEFT spine in both shapes, so
    # its path length pins the base length.
    lead = explode_depth(count) - 1
    p0 = first.posid.elements
    if len(p0) <= lead:
        return None  # the region root would be the tree root
    base = tuple(
        element.plain() if index == len(p0) - lead - 1 else element
        for index, element in enumerate(p0[:len(p0) - lead])
    )
    if any(element.dis is not None for element in p0[len(p0) - lead:-1]):
        return None  # interior run elements must be plain
    posids = [op.posid for op in ops]
    for shape in (PREFIX, CANONICAL):
        try:
            candidate = AtomRun(base, tuple(op.atom for op in ops), shape, dis)
        except TreeError:
            return None
        if candidate.posids() == posids:
            return candidate
    return None


#: Sentinel distinguishing "no coherent pattern" from "plain (None)".
_NO_PATTERN = object()


def _infer_pattern(finals: List[Optional[Disambiguator]]):
    """The dis pattern matching the runs' final-element disambiguators,
    in document order, or :data:`_NO_PATTERN`."""
    head = finals[0]
    if head is None:
        if any(dis is not None for dis in finals):
            return _NO_PATTERN
        return None
    if type(head) is Udis:
        site, counter = head.site, head.counter
        for index, dis in enumerate(finals):
            if (type(dis) is not Udis or dis.site != site
                    or dis.counter != counter + index):
                return _NO_PATTERN
        return ("udis", site, counter)
    site = head.site
    for dis in finals:
        if type(dis) is not Sdis or dis.site != site:
            return _NO_PATTERN
    return ("sdis", site)


def find_runs(ops: Sequence[object], origin: SiteId,
              min_atoms: int = RUN_MIN_ATOMS) -> List[Segment]:
    """Segment an operation sequence into runs and singleton operations.

    A maximal window of consecutive inserts from ``origin`` becomes one
    run when it exactly realizes a run shape (the common case: one
    ``insert_text`` burst); otherwise its operations pass through
    unchanged. Deletes, flattens and foreign-origin inserts always pass
    through singly.
    """
    segments: List[Segment] = []
    index, total = 0, len(ops)
    while index < total:
        op = ops[index]
        if type(op) is InsertOp and op.origin == origin:
            end = index
            while (end < total and type(ops[end]) is InsertOp
                   and ops[end].origin == origin):
                end += 1
            run = run_from_ops(ops[index:end], min_atoms)
            if run is not None:
                segments.append(run)
                index = end
                continue
        segments.append(op)
        index += 1
    return segments


# ---------------------------------------------------------------------------
# The shared RLE run record and atom table (wire frame and disk file).
# ---------------------------------------------------------------------------


class AtomTable:
    """Atom payloads referenced by index — the disk format's "separate
    atom file" and the v2 wire frame's atom table are both one of these.

    A run's atoms are appended contiguously, so one ``(count, first)``
    record (:func:`write_run_record`) names them all.
    """

    def __init__(self, payloads: Optional[List[bytes]] = None) -> None:
        self.payloads: List[bytes] = payloads if payloads is not None else []

    def add(self, atom: object) -> int:
        """Append one atom; returns its reference index."""
        text = atom if isinstance(atom, str) else repr(atom)
        self.payloads.append(text.encode("utf-8"))
        return len(self.payloads) - 1

    def add_run(self, atoms: Sequence[object]) -> int:
        """Append a run's atoms contiguously; returns the first index."""
        first = self.add(atoms[0])
        for atom in atoms[1:]:
            self.add(atom)
        return first

    def get(self, index: int) -> str:
        try:
            payload = self.payloads[index]
        except IndexError:
            raise EncodingError(f"atom reference {index} out of bounds")
        return payload.decode("utf-8")

    def get_run(self, first: int, count: int) -> List[str]:
        """Resolve a run record's contiguous references."""
        if first < 0 or first + count > len(self.payloads):
            raise EncodingError("atom run out of bounds")
        return [payload.decode("utf-8")
                for payload in self.payloads[first:first + count]]


def write_run_record(writer, count: int, first: int) -> None:
    """Append the RLE run record: gamma-coded atom count, then the
    gamma-coded first atom reference. This exact pair is the v2 disk
    leaf record and the v2 wire run record — one definition, no drift.
    """
    writer.write_elias_gamma(count)
    writer.write_elias_gamma(first + 1)


def read_run_record(reader) -> Tuple[int, int]:
    """Read a record written by :func:`write_run_record`."""
    count = reader.read_elias_gamma()
    first = reader.read_elias_gamma() - 1
    return count, first


# ---------------------------------------------------------------------------
# Document state segments (anti-entropy / state transfer).
# ---------------------------------------------------------------------------

#: Smallest canonical region shipped as a state run. State runs carry
#: no dis pattern, so even short ones win; the floor only avoids paying
#: a base path for trivial fragments.
STATE_RUN_MIN_ATOMS = 4


class RegionFilter:
    """A prefix cover over tree regions, for frontier-diff harvesting.

    A region is a subtree named by its root path *bits* (disambiguators
    excluded: mini-node siblings share a region, which only widens the
    cover). The filter answers one question — may this subtree hold
    state the cover names? — with the mutual-prefix test: region ``X``
    and subtree ``S`` intersect iff one's bits prefix the other's
    (``X`` inside ``S``, or ``S`` inside ``X``). Ancestor spines of a
    covered region therefore pass too; the extra slots they admit are
    idempotent duplicates for a merging receiver, never a correctness
    cost. The region list is minimised on construction: a region whose
    prefix is already covered adds nothing.
    """

    def __init__(self, regions: Sequence[Tuple[int, ...]]) -> None:
        kept: List[Tuple[int, ...]] = []
        for bits in sorted(set(regions), key=len):
            if not any(bits[: len(prior)] == prior for prior in kept):
                kept.append(bits)
        self._regions = tuple(kept)

    def __len__(self) -> int:
        return len(self._regions)

    @property
    def regions(self) -> Tuple[Tuple[int, ...], ...]:
        return self._regions

    @property
    def whole_document(self) -> bool:
        """True when the cover names the root (everything admitted)."""
        return () in self._regions

    def admits(self, bits: Tuple[int, ...]) -> bool:
        """Whether a subtree rooted at ``bits`` intersects the cover."""
        for region in self._regions:
            shorter = min(len(region), len(bits))
            if region[:shorter] == bits[:shorter]:
                return True
        return False

    def __repr__(self) -> str:
        return f"<RegionFilter {len(self._regions)} regions>"


def iter_state_segments(tree, origin: SiteId,
                        min_run_atoms: int = STATE_RUN_MIN_ATOMS,
                        regions: Optional[RegionFilter] = None
                        ) -> List[Segment]:
    """The document state as segments in identifier order.

    Collapsed regions (:class:`ArrayLeaf`) and quiescent subtrees in
    canonical exploded form become :class:`AtomRun` segments *without
    exploding or walking per atom*; every other live slot becomes an
    :class:`InsertOp`; SDIS tombstones become :class:`DeleteOp` records
    (identifier used, no atom). Run eligibility: the subtree hangs at a
    plain child of a position node (never under a mini-node — a leaf
    cannot attach there), is not the root, passes
    :func:`collect_array_atoms`, and holds ``min_run_atoms`` atoms.

    With a :class:`RegionFilter` the walk prunes every subtree disjoint
    from the cover and emits only intersecting slots and runs — the
    frontier-diff harvest behind ``SyncDelta``: the emitted segments
    are a faithful snapshot of the covered regions (possibly plus
    ancestor-spine slots), and nothing outside them.
    """
    segments: List[Segment] = []
    # Explicit in-order stack (deep trees exceed the recursion limit).
    # Frames: ("sub", child, elements, plain_child) descends into a
    # subtree; ("node", node, elements) emits a node's slot, minis and
    # right side after its left subtree; ("slot", slot, posid_elements)
    # emits one atom slot.
    stack: List[Tuple] = [("node", tree.root, ())]
    while stack:
        frame = stack.pop()
        kind = frame[0]
        if kind == "sub":
            _, child, elements, plain_child = frame
            if regions is not None and not regions.admits(
                    tuple(e.bit for e in elements)):
                continue  # subtree disjoint from the cover: prune
            if isinstance(child, ArrayLeaf):
                if child.dead == 0:
                    segments.append(AtomRun(elements, tuple(child.atoms)))
                else:
                    # A tombstone-bearing leaf cannot travel as one run
                    # (a run's identifiers are all live): emit per-slot
                    # records, dead slots as tombstones.
                    dead = child.dead
                    for offset, (posid, atom) in enumerate(
                            zip(child.id_posids(), child.atoms)):
                        if (dead >> offset) & 1:
                            segments.append(DeleteOp(posid, origin))
                        else:
                            segments.append(InsertOp(posid, atom, origin))
                continue
            if plain_child:
                atoms = collect_array_atoms(child, min_run_atoms)
                if atoms is not None:
                    segments.append(AtomRun(elements, tuple(atoms)))
                    continue
            stack.append(("node", child, elements))
        elif kind == "node":
            _, node, elements = frame
            # Push in reverse of emission order: right child, minis
            # (reversed), the plain slot, left child.
            if node.right is not None:
                stack.append(("sub", node.right,
                              elements + (PathElement(RIGHT),), True))
            for mini in reversed(node.minis):
                if not elements:
                    raise TreeError(
                        "mini-node attached to the root position node"
                    )  # pragma: no cover - the tree never builds one
                mini_elements = elements[:-1] + (
                    PathElement(elements[-1].bit, mini.dis),
                )
                if mini.right is not None:
                    stack.append(("sub", mini.right,
                                  mini_elements + (PathElement(RIGHT),),
                                  False))
                stack.append(("slot", mini, mini_elements))
                if mini.left is not None:
                    stack.append(("sub", mini.left,
                                  mini_elements + (PathElement(LEFT),),
                                  False))
            stack.append(("slot", node, elements))
            if node.left is not None:
                stack.append(("sub", node.left,
                              elements + (PathElement(LEFT),), True))
        else:  # "slot"
            _, slot, elements = frame
            if regions is not None and not regions.admits(
                    tuple(e.bit for e in elements)):
                continue
            if slot.state == LIVE:
                segments.append(InsertOp(PosID(elements), slot.atom, origin))
            elif slot.state == TOMBSTONE:
                segments.append(DeleteOp(PosID(elements), origin))
    return segments


def load_state_segments(tree, segments: Sequence[Segment],
                        keep_tombstones: bool) -> None:
    """Rebuild an **empty** tree from state segments.

    Canonical plain runs attach directly as :class:`ArrayLeaf` children
    — the receiving replica holds the quiescent region in collapsed
    form from the first moment, paying zero per-atom structure. Other
    segments materialize normally. Counts are recomputed once at the
    end (one bottom-up pass; leaves are their own ground truth).
    """
    root = tree.root
    if root.id_count or root.minis or root.left or root.right:
        raise TreeError("state segments must load into an empty tree")
    height = 0
    for segment in segments:
        if isinstance(segment, AtomRun):
            leaf = _attach_run_leaf(tree, segment)
            if leaf is not None:
                depth = len(segment.base) - 1 + leaf.implicit_depth
                if depth > height:
                    height = depth
                continue
            for op in segment.insert_ops(0):
                _load_live(tree, op.posid, op.atom)
        elif isinstance(segment, InsertOp):
            _load_live(tree, segment.posid, segment.atom)
        elif isinstance(segment, DeleteOp):
            if not keep_tombstones:
                raise TreeError(
                    "tombstone segment in a discard-mode (UDIS) document"
                )
            slot = tree.materialize(segment.posid)
            if slot.state != EMPTY:
                raise TreeError(
                    f"state segments collide at {segment.posid!r}"
                )
            slot.state = TOMBSTONE
        else:
            raise TreeError(f"unknown state segment {segment!r}")
    tree.recount_subtree(tree.root)
    if height > tree.height:
        tree.height = height


def merge_state_segments(tree, segments: Sequence[Segment],
                         keep_tombstones: bool,
                         skip: frozenset = frozenset(),
                         ) -> Tuple[int, List]:
    """Join state segments into a possibly **non-empty** tree.

    The delta-anti-entropy receiver half: unlike
    :func:`load_state_segments` (wholesale replacement of an empty
    tree), this merges — atoms the tree already holds are idempotent
    duplicates, tombstone records apply like replayed deletes, and
    atoms the *sender* never saw are left untouched, so concurrent
    local progress survives. ``skip`` names identifiers the caller has
    deleted but the sender may not have seen yet (the receiver's recent
    deletes): inserting them would resurrect a UDIS-discarded atom, so
    they are dropped. Two live atoms disagreeing at one identifier is
    a protocol violation and raises :class:`TreeError`.

    Returns ``(applied, touched)``: atoms newly placed live, and the
    slots changed (for the owner's cold-region touch stamps). Call
    inside a bulk section — per-slot count deltas buffer there.
    """
    applied = 0
    touched: List = []
    for segment in segments:
        if isinstance(segment, AtomRun):
            for op in segment.insert_ops(0):
                applied += _merge_live(tree, op.posid, op.atom,
                                       skip, touched)
        elif isinstance(segment, InsertOp):
            applied += _merge_live(tree, segment.posid, segment.atom,
                                   skip, touched)
        elif isinstance(segment, DeleteOp):
            if not keep_tombstones:
                raise TreeError(
                    "tombstone segment in a discard-mode (UDIS) document"
                )
            slot = tree.lookup(segment.posid)
            if slot is None or slot.state == EMPTY:
                # The shadowed insert was never applied here (both ops
                # sit inside the delta's window): materialize the used
                # identifier directly, as the state loader does.
                slot = tree.materialize(segment.posid)
                slot.state = TOMBSTONE
                tree._adjust_counts(slot, 0, 1)
                touched.append(slot)
            elif slot.state == LIVE:
                tree.make_tombstone(slot)
                touched.append(slot)
            # an existing tombstone is an idempotent duplicate
        else:
            raise TreeError(f"unknown state segment {segment!r}")
    return applied, touched


def _merge_live(tree, posid: PosID, atom: object, skip: frozenset,
                touched: List) -> int:
    if posid in skip:
        return 0  # deleted here, delete not yet seen by the sender
    slot = tree.materialize(posid)
    if slot.state == LIVE:
        if slot.atom != atom:
            raise TreeError(f"segment merge conflict at {posid!r}")
        return 0  # idempotent duplicate
    if slot.state == TOMBSTONE:
        return 0  # deleted here (SDIS keeps the evidence in-tree)
    tree.set_live(slot, atom)
    touched.append(slot)
    return 1


def _attach_run_leaf(tree, run: AtomRun) -> Optional[ArrayLeaf]:
    """Attach a canonical plain run as an ArrayLeaf; None when the run
    cannot live in a leaf (non-canonical shape, dis pattern, or a
    mini-node container) and must materialize instead."""
    if run.shape != CANONICAL or run.dis is not None:
        return None
    if len(run.base) >= 2 and run.base[-2].dis is not None:
        return None  # container is a mini-node: leaves cannot hang there
    container = tree.materialize(PosID(run.base[:-1]))
    if isinstance(container, MiniNode):  # pragma: no cover - guarded above
        return None
    bit = run.base[-1].bit
    if container.child(bit) is not None:
        raise TreeError("state run overlaps earlier segments")
    leaf = ArrayLeaf((container, bit), list(run.atoms), tree)
    container.set_child(bit, leaf)
    return leaf


def _load_live(tree, posid: PosID, atom: object) -> None:
    slot = tree.materialize(posid)
    if slot.state != EMPTY:
        raise TreeError(f"state segments collide at {posid!r}")
    slot.state = LIVE
    slot.atom = atom
