"""Bit-packed wire encoding for identifiers and operations.

The evaluation reports identifier sizes in bits (Table 1) and estimates
network cost as the sum of PosID sizes (section 5.2), so the encoding
here is an actual bit format, not an approximation:

- a path element costs 2 bits (branch bit + disambiguator-presence flag)
  plus its disambiguator payload;
- an SDIS disambiguator is the 6-byte site id (48 bits);
- a UDIS disambiguator adds the 4-byte counter (32 + 48 = 80 bits);
- path lengths and atom sizes use Elias gamma codes.

``PosID.size_bits`` agrees with the encoded size by construction (both
are derived from ``PathElement.size_bits``).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.disambiguator import (
    COUNTER_BITS,
    SITE_ID_BITS,
    Disambiguator,
    Sdis,
    Udis,
)
from repro.core.ops import DeleteOp, FlattenOp, InsertOp, Operation
from repro.core.path import PathElement, PosID
from repro.errors import EncodingError
from repro.util.bits import BitReader, BitWriter

# Operation tags.
_TAG_INSERT = 0
_TAG_DELETE = 1
_TAG_FLATTEN = 2

# Disambiguator tags.
_DIS_SDIS = 0
_DIS_UDIS = 1


def write_disambiguator(writer: BitWriter, dis: Disambiguator) -> None:
    """Append a disambiguator (1 tag bit + payload)."""
    if isinstance(dis, Udis):
        writer.write_bit(_DIS_UDIS)
        writer.write_bits(dis.counter, COUNTER_BITS)
        writer.write_bits(dis.site, SITE_ID_BITS)
    elif isinstance(dis, Sdis):
        writer.write_bit(_DIS_SDIS)
        writer.write_bits(dis.site, SITE_ID_BITS)
    else:
        raise EncodingError(f"unknown disambiguator type {dis!r}")


def read_disambiguator(reader: BitReader) -> Disambiguator:
    """Read a disambiguator written by :func:`write_disambiguator`."""
    if reader.read_bit() == _DIS_UDIS:
        counter = reader.read_bits(COUNTER_BITS)
        site = reader.read_bits(SITE_ID_BITS)
        return Udis(counter, site)
    return Sdis(reader.read_bits(SITE_ID_BITS))


def write_posid(writer: BitWriter, posid: PosID) -> None:
    """Append a PosID: gamma-coded length, then the elements."""
    writer.write_elias_gamma(posid.depth + 1)
    for element in posid:
        writer.write_bit(element.bit)
        if element.dis is None:
            writer.write_bit(0)
        else:
            writer.write_bit(1)
            write_disambiguator(writer, element.dis)


def read_posid(reader: BitReader) -> PosID:
    """Read a PosID written by :func:`write_posid`."""
    depth = reader.read_elias_gamma() - 1
    elements = []
    for _ in range(depth):
        bit = reader.read_bit()
        if reader.read_bit():
            elements.append(PathElement(bit, read_disambiguator(reader)))
        else:
            elements.append(PathElement(bit))
    return PosID(elements)


def encode_posid(posid: PosID) -> Tuple[bytes, int]:
    """Encode a lone PosID; returns ``(bytes, bit_length)``."""
    writer = BitWriter()
    write_posid(writer, posid)
    return writer.getvalue(), writer.bit_length


def decode_posid(data: bytes, bit_length: Optional[int] = None) -> PosID:
    """Decode a lone PosID."""
    return read_posid(BitReader(data, bit_length))


def _write_atom(writer: BitWriter, atom: object) -> None:
    """Append an atom as a length-prefixed UTF-8 payload."""
    text = atom if isinstance(atom, str) else repr(atom)
    payload = text.encode("utf-8")
    writer.write_elias_gamma(len(payload) + 1)
    writer.write_bytes(payload)


def _read_atom(reader: BitReader) -> str:
    length = reader.read_elias_gamma() - 1
    return reader.read_bytes(length).decode("utf-8")


def write_operation(writer: BitWriter, op: Operation) -> None:
    """Append an operation (2-bit tag + payload)."""
    if isinstance(op, InsertOp):
        writer.write_bits(_TAG_INSERT, 2)
        writer.write_bits(op.origin, SITE_ID_BITS)
        write_posid(writer, op.posid)
        _write_atom(writer, op.atom)
    elif isinstance(op, DeleteOp):
        writer.write_bits(_TAG_DELETE, 2)
        writer.write_bits(op.origin, SITE_ID_BITS)
        write_posid(writer, op.posid)
    elif isinstance(op, FlattenOp):
        writer.write_bits(_TAG_FLATTEN, 2)
        writer.write_bits(op.origin, SITE_ID_BITS)
        write_posid(writer, op.path)
        _write_atom(writer, op.digest)
    else:
        raise EncodingError(f"unknown operation {op!r}")


def read_operation(reader: BitReader) -> Operation:
    """Read an operation written by :func:`write_operation`.

    Atoms decode as strings (the only atom type the traces use); flatten
    operations decode without ``expected_atoms``.
    """
    tag = reader.read_bits(2)
    origin = reader.read_bits(SITE_ID_BITS)
    if tag == _TAG_INSERT:
        posid = read_posid(reader)
        atom = _read_atom(reader)
        return InsertOp(posid, atom, origin)
    if tag == _TAG_DELETE:
        return DeleteOp(read_posid(reader), origin)
    if tag == _TAG_FLATTEN:
        path = read_posid(reader)
        digest = _read_atom(reader)
        return FlattenOp(path, digest, origin)
    raise EncodingError(f"unknown operation tag {tag}")


def encode_operation(op: Operation) -> Tuple[bytes, int]:
    """Encode a lone operation; returns ``(bytes, bit_length)``."""
    writer = BitWriter()
    write_operation(writer, op)
    return writer.getvalue(), writer.bit_length


def decode_operation(data: bytes, bit_length: Optional[int] = None) -> Operation:
    """Decode a lone operation."""
    return read_operation(BitReader(data, bit_length))


def operation_cost_bits(op: Operation) -> int:
    """Network cost of an operation in bits (section 5.2: a PosID plus,
    for inserts, the atom)."""
    return encode_operation(op)[1]
